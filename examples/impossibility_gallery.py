"""The whole gallery: every candidate, every construction, one table.

Run:  python examples/impossibility_gallery.py

Regenerates the paper's message in one screen: the impossibility side
(each doomed candidate with its refutation mechanism and witness) and
the possibility side (each construction with the failure budget it
survives).
"""

from repro.analysis import (
    TerminationViolation,
    liveness_attack,
    refute_candidate,
    run_consensus_round,
)
from repro.protocols import (
    arbiter_consensus_system,
    classic_parameters,
    consensus_via_pairwise_fds_system,
    consensus_with_shared_fd_system,
    delegation_consensus_system,
    exchange_consensus_system,
    kset_boost_system,
    kset_from_tas_system,
    last_writer_register_system,
    min_register_consensus_system,
    mixed_service_system,
    shared_paxos_system,
    tob_delegation_system,
)
from repro.system import upfront_failures
from repro.engine import Budget

WIDTH = 78


def banner(title: str) -> None:
    print("=" * WIDTH)
    print(title)
    print("=" * WIDTH)


def impossibility_row(name, verdict) -> None:
    witness = ""
    if isinstance(verdict.refutation, TerminationViolation):
        witness = (
            f"J={sorted(verdict.refutation.victims, key=str)}, "
            f"{'exact cycle' if verdict.refutation.exact else 'horizon'}"
        )
    claim = verdict.lemma8.claim if verdict.lemma8 else "-"
    print(f"  {name:34} {claim:36}")
    print(f"  {'':34} -> {witness}")


def attack_row(name, violation) -> None:
    print(
        f"  {name:34} blocked: J={sorted(violation.victims, key=str)}, "
        f"survivors={sorted(violation.survivors, key=str)}"
    )


def main() -> None:
    banner("IMPOSSIBILITY — Theorems 2, 9, 10: boosting refuted")
    print("via the full pipeline (Lemma 4 -> hook -> Lemma 8 -> Lemmas 6/7):")
    for name, system in (
        ("delegation (atomic object, f=1)", delegation_consensus_system(3, 1)),
        ("TO broadcast (oblivious, f=0)", tob_delegation_system(2, 0)),
        ("last-writer (registers, f=0)", last_writer_register_system()),
        ("arbiter (message passing, f=0)", arbiter_consensus_system(3, 0)),
    ):
        impossibility_row(name, refute_candidate(system, budget=Budget(max_states=900_000)))
    print("\nvia the direct liveness attack:")
    for name, system, victims, aware in (
        ("min-register (FLP, f=0)", min_register_consensus_system(), [1], []),
        ("exchange (message passing, f=0)", exchange_consensus_system(0), [1], []),
        (
            "rotating coord. (shared FD, f=1)",
            consensus_with_shared_fd_system(3, 1),
            [0, 1],
            ["P"],
        ),
        (
            "mixed TOB+FD (Theorem 10, f=1)",
            mixed_service_system(3, 1),
            [0, 1],
            ["P"],
        ),
    ):
        root = system.initialization(
            {i: i % 2 for i in system.process_ids}
        ).final_state
        violation = liveness_attack(
            system, root, victims=victims, horizon=200_000,
            failure_aware_services=aware,
        )
        attack_row(name, violation)

    print()
    banner("POSSIBILITY — Sections 4 and 6.3 (and friends): boosting works")
    constructions = (
        (
            "2-set consensus from n/2-consensus",
            lambda: kset_boost_system(classic_parameters(4)),
            3,
            2,
        ),
        (
            "2-set consensus from test&set",
            lambda: kset_from_tas_system(4),
            3,
            2,
        ),
        (
            "consensus from pairwise FDs",
            lambda: consensus_via_pairwise_fds_system(3),
            2,
            1,
        ),
        (
            "shared-memory Paxos + Omega",
            lambda: shared_paxos_system(3),
            2,
            1,
        ),
    )
    for name, factory, max_failures, k in constructions:
        outcomes = []
        for failures in range(max_failures + 1):
            system = factory()
            proposals = {i: i % 2 if k == 1 else i for i in system.process_ids}
            check = run_consensus_round(
                system,
                proposals,
                failure_schedule=upfront_failures(list(range(failures))),
                k=k,
                max_steps=300_000,
            )
            outcomes.append("ok" if check.ok else "FAIL")
        print(f"  {name:36} failures 0..{max_failures}: {' '.join(outcomes)}")


if __name__ == "__main__":
    main()
