"""Herlihy universality demo: build any object out of consensus.

Run:  python examples/universal_objects.py

The paper centers on consensus because consensus is *universal*: any
sequential type has a wait-free implementation from wait-free consensus
objects.  This demo implements a FIFO queue and a counter that way,
prints the linearization order the consensus objects decided, and shows
wait-freedom by crashing all but one client mid-run.
"""

from repro.analysis import trace_is_linearizable
from repro.ioa import RoundRobinScheduler, run
from repro.protocols.universal import (
    UNIVERSAL_ID,
    implemented_trace,
    universal_object_system,
)
from repro.system import FailureSchedule
from repro.types import counter_type, queue_type


def show_trace(trace) -> None:
    for action in trace:
        _, endpoint, payload = action.args
        if action.kind == "invoke":
            print(f"  process {endpoint} -> {payload}")
        else:
            print(f"  process {endpoint} <- {payload}")


def demo_queue() -> None:
    print("=== A wait-free queue from consensus objects ===")
    queue = queue_type(items=("a", "b", "c"))
    system = universal_object_system(
        queue,
        {
            0: [("enq", "a"), ("deq",)],
            1: [("enq", "b"), ("deq",)],
            2: [("enq", "c")],
        },
    )
    execution = run(system, RoundRobinScheduler(), max_steps=8000)
    trace = implemented_trace(execution)
    show_trace(trace)
    ok = trace_is_linearizable(trace, UNIVERSAL_ID, queue)
    print(f"  linearizable w.r.t. the queue type: {ok}\n")


def demo_wait_freedom() -> None:
    print("=== Wait-freedom: everyone else crashes, the survivor finishes ===")
    counter = counter_type(modulus=16)
    system = universal_object_system(
        counter,
        {0: [("inc",), ("get",)], 1: [("inc",)], 2: [("inc",)]},
    )
    execution = run(
        system,
        RoundRobinScheduler(),
        max_steps=8000,
        inputs=FailureSchedule(((5, 1), (5, 2))).as_inputs(),
    )
    trace = implemented_trace(execution)
    show_trace(trace)
    survivor_ops = sum(
        1 for a in trace if a.kind == "respond" and a.args[1] == 0
    )
    print(f"  survivor completed {survivor_ops}/2 operations despite 2 crashes")


def main() -> None:
    demo_queue()
    demo_wait_freedom()


if __name__ == "__main__":
    main()
