"""Shared-memory Paxos with an Omega leader oracle.

Run:  python examples/shared_paxos_demo.py

A beyond-the-paper workload built entirely from the library's canonical
parts: Disk-Paxos over per-process wait-free registers, with leadership
from the Omega general service.  Demonstrates decision under crashes of
the leader itself and that safety survives Omega's initial lies.
"""

from repro.analysis import run_consensus_round
from repro.protocols.shared_paxos import shared_paxos_system
from repro.system import FailureSchedule, upfront_failures


def main() -> None:
    n = 3
    print(f"Shared-memory Paxos, {n} processes, proposals 0/1/1\n")

    print("--- failure-free ---")
    check = run_consensus_round(
        shared_paxos_system(n), {0: 0, 1: 1, 2: 1}, max_steps=100_000
    )
    print(f"  decisions: {check.decisions}  ok={check.ok}\n")

    print("--- the stable leader (process 0) crashes mid-run ---")
    check = run_consensus_round(
        shared_paxos_system(n),
        {0: 0, 1: 1, 2: 1},
        failure_schedule=FailureSchedule(((30, 0),)),
        max_steps=150_000,
    )
    print(f"  decisions: {check.decisions}  ok={check.ok}")
    print("  (process 1 took over at a higher ballot and finished)\n")

    print("--- n - 1 = 2 upfront crashes ---")
    check = run_consensus_round(
        shared_paxos_system(n),
        {0: 0, 1: 1, 2: 1},
        failure_schedule=upfront_failures([0, 1]),
        max_steps=150_000,
    )
    print(f"  decisions: {check.decisions}  ok={check.ok}")
    print("  (no process quorum needed: the registers are the reliable disk)")


if __name__ == "__main__":
    main()
