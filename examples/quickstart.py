"""Quickstart: canonical services, one consensus round, one refutation.

Run:  python examples/quickstart.py

This walks the library's three floors in ~40 lines of user code:

1. build a distributed system out of canonical services (here: three
   processes delegating to one 1-resilient consensus atomic object);
2. run it — within its resilience budget it genuinely solves consensus;
3. ask the paper's question: can it tolerate one MORE failure?  The
   adversary pipeline (Theorem 2, executable) answers with a concrete
   witness.
"""

from repro.analysis import refute_candidate, run_consensus_round
from repro.protocols import delegation_consensus_system
from repro.system import upfront_failures


def main() -> None:
    # A system of 3 processes sharing one 1-resilient consensus object.
    system = delegation_consensus_system(n=3, resilience=1)

    print("=== The candidate works within its resilience (f = 1) ===")
    check = run_consensus_round(system, proposals={0: 0, 1: 1, 2: 1})
    print(f"failure-free run    decisions: {check.decisions}  ok={check.ok}")

    check = run_consensus_round(
        delegation_consensus_system(n=3, resilience=1),
        proposals={0: 0, 1: 1, 2: 1},
        failure_schedule=upfront_failures([2]),
    )
    print(f"one failure         decisions: {check.decisions}  ok={check.ok}")

    print()
    print("=== Can it be boosted to tolerate f + 1 = 2 failures?  (Theorem 2) ===")
    verdict = refute_candidate(delegation_consensus_system(n=3, resilience=1))
    print(f"refuted:    {verdict.refuted}")
    print(f"mechanism:  {verdict.mechanism}")
    print(f"detail:     {verdict.detail}")
    print()
    print("Pipeline stages, matching the paper's proof:")
    bivalent = verdict.lemma4.bivalent
    print(f"  Lemma 4   bivalent initialization: {dict(bivalent.assignment)}")
    print(f"  Lemma 5   hook tasks: e={verdict.hook.e.name}, "
          f"e'={verdict.hook.e_prime.name}")
    print(f"  Lemma 8   case: {verdict.lemma8.claim}")
    refutation = verdict.refutation
    print(f"  Lemmas 6/7  victims J = {sorted(refutation.victims)}, "
          f"exact infinite fair execution: {refutation.exact}")


if __name__ == "__main__":
    main()
