"""The full impossibility pipeline, stage by stage, with commentary.

Run:  python examples/adversary_vs_candidate.py

Replays the proof of Theorem 2 against a concrete candidate — n
processes delegating to one f-resilient consensus object — showing the
artifacts each lemma produces: the Lemma 4 initialization chain, the
valence landscape, the Fig. 3 hook, Lemma 8's case analysis, and the
Lemma 6/7 failing extension that seals the refutation.
"""

from repro.analysis import (
    analyze_valence,
    find_hook,
    lemma4_bivalent_initialization,
    lemma8_case_analysis,
    refute_from_similarity,
    TerminationViolation,
    Valence,
)
from repro.protocols import delegation_consensus_system


def main() -> None:
    n, f = 3, 1
    system = delegation_consensus_system(n, resilience=f)
    print(f"Candidate: {n} processes + one {f}-resilient consensus object,")
    print(f"claiming to solve ({f + 1})-resilient consensus.\n")

    print("--- Lemma 4: the initialization chain ---")
    lemma4 = lemma4_bivalent_initialization(system)
    for entry in lemma4.chain:
        print(f"  inputs {dict(entry.assignment)} -> {entry.valence.value}")
    bivalent = lemma4.bivalent
    print(f"bivalent initialization found: {dict(bivalent.assignment)}\n")

    print("--- Valence landscape of the reachable failure-free graph ---")
    root = bivalent.execution.final_state
    analysis = analyze_valence(system, root)
    for valence, count in analysis.counts().items():
        if count:
            print(f"  {valence.value:>10}: {count} states")
    print()

    print("--- Lemma 5 / Fig. 3: hook search ---")
    hook, stats = find_hook(analysis, root)
    print(f"  outer iterations: {stats.outer_iterations}, "
          f"inner BFS expansions: {stats.inner_bfs_expansions}")
    print(f"  hook: e = {hook.e.name} ({hook.valence0.value} branch)")
    print(f"        e' = {hook.e_prime.name} (then e gives "
          f"{hook.valence1.value})\n")

    print("--- Lemma 8: case analysis on the hook ---")
    report = lemma8_case_analysis(system, analysis, hook)
    print(f"  applicable claim: {report.claim}")
    print(f"  shared participants: {report.shared_participants}")
    violation = report.violation
    print(f"  verdict: states {violation.kind}-similar for "
          f"index {violation.index!r}, with opposite valences\n")

    print("--- Lemmas 6/7: the failing extension ---")
    outcome = refute_from_similarity(system, violation, resilience=f)
    assert isinstance(outcome, TerminationViolation)
    print(f"  fail J = {sorted(outcome.victims)} (|J| = f + 1 = {f + 1})")
    print(f"  survivors: {sorted(outcome.survivors)}")
    print(f"  result: no survivor ever decides — "
          f"{'exact infinite fair execution (cycle found)' if outcome.exact else 'horizon exhausted'}")
    print(f"  steps to cycle: {outcome.steps_run}, "
          f"cycle length: {outcome.cycle_length}")
    print("\nTheorem 2, witnessed: the candidate cannot be ({}+1)-resilient.".format(f))


if __name__ == "__main__":
    main()
