"""Totally ordered broadcast as a chat room (Section 5.2 demo).

Run:  python examples/to_broadcast_chat.py

Three participants post messages concurrently through a 1-resilient
totally ordered broadcast service; everyone observes the SAME global
message order regardless of the (randomized) schedule — including a
participant that crashes mid-chat, whose messages already ordered still
reach the others.
"""

from repro.ioa import RandomScheduler, invoke, run
from repro.services import TotallyOrderedBroadcast, bcast, delivered_sequence
from repro.system import DistributedSystem, FailureSchedule, ScriptProcess

PARTICIPANTS = {0: "alice", 1: "bob", 2: "carol"}
LINES = {
    0: ["hello", "anyone here?"],
    1: ["hey alice", "all good"],
    2: ["hi both"],
}


def build_system() -> DistributedSystem:
    messages = tuple(sorted({line for lines in LINES.values() for line in lines}))
    service = TotallyOrderedBroadcast(
        service_id="chat",
        endpoints=tuple(PARTICIPANTS),
        messages=messages,
        resilience=1,
    )
    processes = [
        ScriptProcess(
            endpoint,
            [invoke("chat", endpoint, bcast(line)) for line in LINES[endpoint]],
            connections=["chat"],
        )
        for endpoint in PARTICIPANTS
    ]
    return DistributedSystem(processes, services=[service])


def main() -> None:
    for seed in (1, 7, 42):
        system = build_system()
        execution = run(
            system,
            RandomScheduler(seed),
            max_steps=400,
            # carol crashes partway through this chat.
            inputs=FailureSchedule(((25, 2),)).as_inputs() if seed == 42 else (),
        )
        print(f"=== schedule seed {seed}"
              + (" (carol crashes mid-chat)" if seed == 42 else "")
              + " ===")
        views = {}
        for endpoint, name in PARTICIPANTS.items():
            sequence = delivered_sequence(execution.actions, endpoint, "chat")
            views[name] = sequence
        # Print the longest view as the transcript.
        transcript = max(views.values(), key=len)
        for message, sender in transcript:
            print(f"  {PARTICIPANTS[sender]:>6}: {message}")
        # All views are prefixes of the transcript: total order.
        for name, view in views.items():
            assert transcript[: len(view)] == view
            print(f"  [{name} saw {len(view)}/{len(transcript)} messages, "
                  "in the same order]")
        print()


if __name__ == "__main__":
    main()
