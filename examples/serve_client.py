"""Submit an analysis job to a running ``repro serve`` and await the verdict.

Usage (server first: ``python -m repro serve --port 8765``)::

    python examples/serve_client.py tob -n 3 -f 1 --max-states 600000
    python examples/serve_client.py delegation -n 2 -f 0 --tenant alice

The client is deliberately dependency-free (urllib only): submit via
``POST /jobs``, poll ``GET /jobs/{id}`` until terminal, print the
verdict.  ``--expect-cached`` turns it into an assertion that the server
answered from its verdict cache without running anything — CI's
serve-smoke job uses exactly that to prove the second submission of an
identical job is a cache hit.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

TERMINAL = ("completed", "exhausted", "failed", "cancelled")


def request(url, method="GET", body=None, headers=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(url, data=data, method=method, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("candidate", help="delegation | tob | last-writer")
    parser.add_argument("-n", type=int, default=3)
    parser.add_argument("-f", "--resilience", type=int, default=1)
    parser.add_argument("--max-states", type=int, default=None)
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--reduction", default="none")
    parser.add_argument("--tenant", default=None)
    parser.add_argument("--url", default="http://127.0.0.1:8765")
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument(
        "--expect-cached",
        action="store_true",
        help="fail unless the server answers immediately from its cache",
    )
    args = parser.parse_args(argv)

    spec = {
        "candidate": args.candidate,
        "n": args.n,
        "f": args.resilience,
        "workers": args.workers,
        "reduction": args.reduction,
    }
    budget = {}
    if args.max_states is not None:
        budget["max_states"] = args.max_states
    if args.deadline is not None:
        budget["deadline_seconds"] = args.deadline
    if budget:
        spec["budget"] = budget
    headers = {} if args.tenant is None else {"X-Repro-Tenant": args.tenant}

    status, reply_headers, document = request(
        args.url + "/jobs", "POST", spec, headers
    )
    if status == 200 and document.get("cached"):
        print(f"cache hit (entry from {document['id']}):")
        print(json.dumps(document["verdict"], indent=2, sort_keys=True))
        return 0
    if args.expect_cached:
        print(f"expected a cache hit, got HTTP {status}: {document}", file=sys.stderr)
        return 1
    if status == 429:
        print(
            f"server overloaded ({document.get('detail')}); "
            f"retry after {reply_headers.get('Retry-After')}s",
            file=sys.stderr,
        )
        return 2
    if status != 202:
        print(f"submission failed with HTTP {status}: {document}", file=sys.stderr)
        return 1

    job_id = document["id"]
    print(f"job {job_id} {document['state']}")
    started = time.monotonic()
    while time.monotonic() - started < args.timeout:
        status, _, document = request(f"{args.url}/jobs/{job_id}")
        if status != 200:
            print(f"poll failed with HTTP {status}: {document}", file=sys.stderr)
            return 1
        if document["state"] in TERMINAL:
            break
        time.sleep(0.5)
    else:
        print(f"job {job_id} still {document['state']} after {args.timeout}s",
              file=sys.stderr)
        return 1

    state = document["state"]
    print(f"{state} in {document.get('wall_seconds') or 0:.1f}s")
    if state == "completed":
        print(json.dumps(document["verdict"], indent=2, sort_keys=True))
        return 0
    print(json.dumps(document.get("error"), indent=2, sort_keys=True))
    return 1


if __name__ == "__main__":
    sys.exit(main())
