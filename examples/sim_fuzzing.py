"""Deterministic fault simulation and fuzzing, end to end.

Run:  python examples/sim_fuzzing.py

Four acts:

1. one seeded faulty schedule on the lossy exchange candidate — the
   drop adversary eats a message and the victim's peer never decides;
2. conservativity — a zero fault budget explores to the *identical*
   state graph as the benign network (the faulty wrapper is free);
3. a fuzz campaign that finds the violation, shrinks the failing
   schedule with delta debugging, and strict-replays the shrunk script
   to a bit-for-bit equal execution;
4. the saved replay script round-tripped through disk and re-verified
   (the artifact every failing randomized test points you at).
"""

import tempfile
from pathlib import Path

from repro.analysis.view import DeterministicSystemView
from repro.core import explore
from repro.protocols.message_passing import (
    arbiter_consensus_system,
    exchange_consensus_system,
)
from repro.sim import (
    CandidateSpec,
    FaultBudget,
    SimConfig,
    build_candidate,
    fuzz,
    load_script,
    replay,
    save_script,
    simulate,
    verify_replay,
)

WIDTH = 78
LOSSY = CandidateSpec(family="exchange", n=2, resilience=0, faults=(("drop", 1),))


def banner(title: str) -> None:
    print("=" * WIDTH)
    print(title)
    print("=" * WIDTH)


def graph_of(system) -> tuple:
    roots = system.initialization({pid: pid % 2 for pid in system.process_ids})
    graph = explore(DeterministicSystemView(system), roots.final_state)
    return len(graph.states), graph.edge_count()


def main() -> None:
    banner("1. One seeded schedule against exchange + drop-budget network")
    system = build_candidate(LOSSY)
    result = simulate(system, SimConfig(seed=18, fault_rate=0.4))
    print(f"  {result.summary()}")
    print(f"  faults fired: {result.fault_count}, script: {result.steps} tasks")
    assert not result.ok

    banner("2. Conservativity: zero budget == benign network, exactly")
    benign = graph_of(arbiter_consensus_system(3, 0))
    zeroed = graph_of(arbiter_consensus_system(3, 0, faults=FaultBudget()))
    print(f"  benign arbiter(3,0) graph: {benign[0]} states, {benign[1]} edges")
    print(f"  zero-budget faulty graph:  {zeroed[0]} states, {zeroed[1]} edges")
    assert benign == zeroed

    banner("3. Fuzz, shrink, replay bit-for-bit")
    report = fuzz(specs=[LOSSY], runs=8, seed=19)
    print("  " + report.summary().replace("\n", "\n  "))
    counterexample = report.found[0]
    shrunk = counterexample.result
    again = replay(
        build_candidate(LOSSY),
        shrunk.script,
        inputs=shrunk.inputs,
        proposals=shrunk.proposals,
        config=shrunk.config,
    )
    assert again.execution == shrunk.execution
    print(
        f"  shrunk {counterexample.original_steps} -> "
        f"{counterexample.shrunk_steps} steps "
        f"({counterexample.shrink_ratio:.0%}); replay identical"
    )

    banner("4. The replay script as an artifact")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cex.json"
        save_script(path, counterexample.to_document())
        document = load_script(path)
        verified = verify_replay(
            build_candidate(CandidateSpec.from_json(document["candidate"])),
            document,
        )
        print(f"  saved, reloaded, re-verified: {verified.summary()}")
        print(f"  one-liner: {counterexample.replay_command('cex.json')}")


if __name__ == "__main__":
    main()
