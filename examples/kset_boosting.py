"""Section 4 demo: boosting IS possible for 2-set-consensus.

Run:  python examples/kset_boosting.py

Builds the paper's construction — wait-free 2n-process 2-set-consensus
from wait-free n-process consensus services — and exercises it under
increasingly brutal failure patterns, up to n - 1 crashed processes
(wait-freedom).  Contrast with examples/adversary_vs_candidate.py, where
the same delegation idea for plain consensus is impossible to boost.
"""

from repro.analysis import run_consensus_round
from repro.protocols import classic_parameters, group_of, kset_boost_system
from repro.system import upfront_failures


def demo_instance(n: int) -> None:
    params = classic_parameters(n)
    print(
        f"n={params.n} processes, k={params.k}-set consensus from "
        f"{params.groups} x {params.n_prime}-process consensus services "
        f"(inner f'={params.inner_resilience}, boosted f={params.boosted_resilience})"
    )
    proposals = {endpoint: endpoint for endpoint in range(params.n)}

    for failures in range(params.n):
        victims = list(range(failures))  # fail the first `failures` processes
        check = run_consensus_round(
            kset_boost_system(params),
            proposals,
            failure_schedule=upfront_failures(victims),
            k=params.k,
            max_steps=100_000,
        )
        distinct = sorted(set(check.decisions.values()))
        print(
            f"  {failures} failure(s): ok={check.ok}  "
            f"decisions={check.decisions}  distinct={distinct} (<= {params.k})"
        )
        assert check.ok, check.violations


def main() -> None:
    print("=== Section 4: wait-free 2-set consensus from wait-free ===")
    print("===            half-size consensus services            ===\n")
    for n in (4, 6):
        demo_instance(n)
        print()
    params = classic_parameters(4)
    print("Group structure for n=4:")
    for endpoint in range(4):
        print(f"  process {endpoint} -> group {group_of(params, endpoint)}")


if __name__ == "__main__":
    main()
