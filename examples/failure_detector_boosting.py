"""Section 6.3 demo: boosting failure-aware services via connectivity.

Run:  python examples/failure_detector_boosting.py

Two sides of Theorem 10's connectivity hypothesis:

* the boosted failure detector — 1-resilient 2-process perfect detectors
  (one per pair) plus suspicion registers implement a wait-free
  n-process perfect detector, and consensus on top tolerates ANY number
  of failures;
* one f-resilient detector connected to ALL processes — the shape
  Theorem 10 mandates — is silenced by f + 1 failures, and the liveness
  attack blocks the survivors forever.
"""

from repro.analysis import liveness_attack, run_consensus_round
from repro.ioa import RoundRobinScheduler, run
from repro.protocols import (
    boosted_fd_system,
    boosted_reports,
    consensus_via_pairwise_fds_system,
    consensus_with_shared_fd_system,
)
from repro.system import FailureSchedule, upfront_failures


def demo_boosted_detector() -> None:
    print("=== Boosted wait-free detector from 1-resilient pair detectors ===")
    system = boosted_fd_system(3)
    execution = run(
        system,
        RoundRobinScheduler(),
        max_steps=6000,
        inputs=FailureSchedule(((150, 1), (600, 2))).as_inputs(),
    )
    reports = boosted_reports(execution, 0)
    print(f"process 0 emitted {len(reports)} suspicion reports; trajectory:")
    seen = []
    for report in reports:
        if not seen or report != seen[-1]:
            seen.append(report)
    for report in seen:
        print(f"  suspects: {sorted(report)}")
    print("accuracy: every set above only ever contains crashed processes")
    print()


def demo_consensus_any_f() -> None:
    print("=== Consensus for ANY number of failures (pairwise detectors) ===")
    n = 3
    for failures in range(n):
        victims = list(range(failures))
        check = run_consensus_round(
            consensus_via_pairwise_fds_system(n),
            {0: 0, 1: 1, 2: 1},
            failure_schedule=upfront_failures(victims),
            max_steps=100_000,
        )
        print(
            f"  {failures} failure(s): ok={check.ok}  decisions={check.decisions}"
        )
        assert check.ok, check.violations
    print()


def demo_theorem10_shape_fails() -> None:
    print("=== The all-connected shape cannot be boosted (Theorem 10) ===")
    f = 1
    system = consensus_with_shared_fd_system(3, fd_resilience=f)
    root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
    violation = liveness_attack(
        system,
        root,
        victims=[0, 1],  # f + 1 failures silence the all-connected detector
        horizon=200_000,
        failure_aware_services=["P"],
    )
    print(f"  one {f}-resilient n-process detector, {f + 1} failures:")
    print(f"  survivors {sorted(violation.survivors)} blocked forever "
          f"(exact cycle: {violation.exact})")


def main() -> None:
    demo_boosted_detector()
    demo_consensus_any_f()
    demo_theorem10_shape_fails()


if __name__ == "__main__":
    main()
