"""E8 (Lemma 4): every doomed candidate has a bivalent initialization.

Reproduces: the constructive chain argument — the all-0 initialization
is 0-valent, the all-1 one is 1-valent, and a bivalent one sits in
between.  Measures the cost of classifying the full chain (which
requires one exhaustive valence analysis per initialization).
"""

import pytest

from repro.analysis import Valence, lemma4_bivalent_initialization
from repro.protocols import delegation_consensus_system, tob_delegation_system


@pytest.mark.parametrize("n,f", [(2, 0), (3, 0), (3, 1)])
def test_lemma4_chain_on_delegation(benchmark, n, f):
    result = benchmark(
        lemma4_bivalent_initialization,
        delegation_consensus_system(n, resilience=f),
        600_000,
    )
    assert result.chain[0].valence is Valence.ZERO
    assert result.chain[-1].valence is Valence.ONE
    assert result.bivalent is not None
    assert len(result.chain) == n + 1


def test_lemma4_chain_on_tob(benchmark):
    result = benchmark(
        lemma4_bivalent_initialization, tob_delegation_system(2, 0), 600_000
    )
    assert result.bivalent is not None


def test_critical_pair_is_adjacent(benchmark):
    result = benchmark(
        lemma4_bivalent_initialization,
        delegation_consensus_system(3, resilience=1),
        600_000,
    )
    assert result.critical_pair is not None
    low, high = result.critical_pair
    assert high == low + 1
    assert result.chain[low].valence is Valence.ZERO
    assert result.chain[high].valence in (Valence.ONE, Valence.BIVALENT)
