"""E-obs: the disabled tracer's overhead on `explore` stays under 5 %.

The observability contract of `repro.obs`: instrumented hot paths guard
every emission behind one hoisted ``tracer.enabled`` test, so running
with the default disabled singletons must cost (almost) nothing.  This
benchmark pits the instrumented :func:`repro.analysis.explore` — called
with its defaults, i.e. ``NULL_TRACER``/``NULL_METRICS`` — against a
verbatim un-instrumented copy of the same BFS loop, on an identical
warmed view, and asserts the overhead bound.

Methodology notes (for stability on shared CI machines):

* the `DeterministicSystemView` step cache is warmed by one untimed
  exploration first, so both contenders measure pure graph traversal,
  not first-touch transition computation;
* each contender is timed as the *minimum* over several repetitions
  (minimum, not mean — noise is strictly additive);
* the assertion allows a small absolute epsilon on top of the 5 %
  relative bound so sub-millisecond baselines cannot fail on timer
  granularity alone.
"""

from collections import deque
from time import perf_counter

from conftest import report

from repro.analysis import DeterministicSystemView, StateGraph, explore
from repro.protocols import delegation_consensus_system

REPETITIONS = 7
RELATIVE_BOUND = 0.05
ABSOLUTE_EPSILON_S = 0.002


def uninstrumented_explore(view, root, max_states=200_000):
    """The explore BFS exactly as it was before instrumentation."""
    graph = StateGraph(root=root)
    graph.states.add(root)
    frontier = deque([root])
    while frontier:
        state = frontier.popleft()
        out = view.successors(state)
        graph.edges[state] = out
        for _, _, successor in out:
            if successor not in graph.states:
                if len(graph.states) >= max_states:
                    raise RuntimeError("budget")
                graph.states.add(successor)
                frontier.append(successor)
    return graph


def best_of(function, *args) -> float:
    best = float("inf")
    for _ in range(REPETITIONS):
        started = perf_counter()
        function(*args)
        elapsed = perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def test_disabled_tracer_overhead_under_5_percent():
    system = delegation_consensus_system(3, resilience=1)
    root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
    view = DeterministicSystemView(system)

    # Warm the view's step cache and sanity-check both walk the same graph.
    warm = explore(view, root)
    baseline_graph = uninstrumented_explore(view, root)
    assert baseline_graph.states == warm.states

    baseline = best_of(uninstrumented_explore, view, root)
    instrumented = best_of(explore, view, root)

    overhead = (instrumented - baseline) / baseline if baseline else 0.0
    report(
        "trace overhead (tracer disabled)",
        [
            {
                "states": len(warm.states),
                "baseline_s": round(baseline, 6),
                "instrumented_s": round(instrumented, 6),
                "overhead": round(overhead, 4),
            }
        ],
    )
    assert instrumented <= baseline * (1 + RELATIVE_BOUND) + ABSOLUTE_EPSILON_S, (
        f"disabled-tracer overhead {overhead:.1%} exceeds {RELATIVE_BOUND:.0%} "
        f"(baseline {baseline:.6f}s, instrumented {instrumented:.6f}s)"
    )
