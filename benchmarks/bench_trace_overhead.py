"""E-obs: the disabled tracer's overhead on `explore` stays under 5 %.

The observability contract of `repro.obs`: instrumented hot paths guard
every emission behind one hoisted ``tracer.enabled``/``metrics.enabled``
test, so running with the default disabled singletons must cost (almost)
nothing.  This benchmark pits the instrumented
:func:`repro.analysis.explore` — called with its defaults, i.e.
``NULL_TRACER``/``NULL_METRICS`` — against a verbatim copy of the same
engine loop with every observability guard deleted, on an identical
warmed view, and asserts the overhead bound.

The baseline is the *engine's* sequential loop (state-keyed index,
intern tables, budget check, graph build), not a bare BFS: `explore`
delegates to :class:`repro.engine.ExplorationEngine`, so comparing
against a minimal BFS would measure the engine's bookkeeping, not the
instrumentation.  The only differences between the two contenders are
the obs guards themselves.

Methodology notes (for stability on shared CI machines):

* the workload is ``tob_delegation_system(3, 1)`` — a few thousand
  states, so each timed run is tens of milliseconds and timer/scheduler
  granularity cannot manufacture multi-percent "overhead" (the earlier
  188-state workload did exactly that);
* the `DeterministicSystemView` step cache is warmed by one untimed
  exploration first, so both contenders measure pure graph traversal,
  not first-touch transition computation;
* within one measurement attempt the contenders are timed in
  alternation and compared by their per-contender *minimums*: timing
  noise on a shared machine is strictly additive, so the minimum
  converges on the true cost while medians of ~0.14 s samples wobble
  by several percent;
* a shared machine can also slow down for seconds at a time — long
  enough to bias a whole attempt — so the bound is asserted over up to
  ``ATTEMPTS`` independent attempts with early exit on the first pass:
  sustained-drift false alarms don't survive five attempts, while a
  real guard-cost regression shifts every attempt and still fails;
* states/sec for both contenders is recorded to ``BENCH_obs.json`` so
  the artifact accumulates a real performance trajectory rather than a
  bare pass/fail bit;
* the assertion allows a small absolute epsilon on top of the 5 %
  relative bound so timer granularity alone cannot fail it.
"""

from collections import deque
from statistics import median
from time import perf_counter

from conftest import report

from repro.analysis import DeterministicSystemView, StateGraph, StateSet, explore
from repro.engine import DIGEST_SIZE, fingerprint
from repro.engine.fingerprint import StateIndex
from repro.protocols import tob_delegation_system

REPETITIONS = 9
ATTEMPTS = 5
RELATIVE_BOUND = 0.05
ABSOLUTE_EPSILON_S = 0.002
MAX_STATES = 200_000


class _BaselineRun:
    """Attribute-for-attribute stand-in for the engine's ``_Run``."""

    __slots__ = (
        "view",
        "index",
        "order",
        "edges",
        "frontier",
        "action_intern",
        "transitions",
        "expanded",
        "since_checkpoint",
    )


class _UninstrumentedEngine:
    """The engine's sequential path verbatim, minus every obs guard.

    A *structural* copy of ``ExplorationEngine._drive_sequential`` +
    ``_commit`` for the default single-worker configuration (state-keyed
    index, no prune, no checkpoints, no deadline): same per-state method
    calls, same attribute access through a slotted run object, same
    budget checks — only the tracer/metrics/progress branches are
    deleted.  The delta against :func:`repro.analysis.explore` is then
    the cost of the disabled-instrumentation guards, not an artifact of
    locals-versus-attributes code shape.
    """

    __slots__ = ("checkpoint_dir", "max_states", "max_transitions")

    def __init__(self):
        self.checkpoint_dir = None
        self.max_states = MAX_STATES
        self.max_transitions = None

    def explore(self, view, root):
        run = _BaselineRun()
        run.view = view
        run.index = StateIndex(DIGEST_SIZE)
        run.order = [root]
        run.edges = {}
        run.frontier = deque(
            [(root, run.index.add(root, fingerprint(root, DIGEST_SIZE)))]
        )
        run.action_intern = {}
        run.transitions = 0
        run.expanded = 0
        run.since_checkpoint = 0
        self._drive_sequential(run)
        return StateGraph(
            root=root, states=StateSet(run.order), edges=run.edges
        )

    def _drive_sequential(self, run):
        while run.frontier:
            state, digest = run.frontier.popleft()
            self._commit(run, state, digest, run.view.successors(state), None)
            self._maybe_checkpoint(run)

    def _commit(self, run, state, digest, out, succ_digests):
        if (
            self.max_transitions is not None
            and run.transitions + len(out) > self.max_transitions
        ):
            raise RuntimeError("budget")
        resolve = getattr(run.index, "resolve", None)
        intern_action = run.action_intern
        rebuilt = [] if resolve is not None else None
        added = []
        for position, (task, action, successor) in enumerate(out):
            known, succ_digest = run.index.check(
                successor, succ_digests[position] if succ_digests else None
            )
            if known:
                if rebuilt is not None:
                    rebuilt.append(
                        (
                            task,
                            intern_action.setdefault(action, action),
                            resolve(successor),
                        )
                    )
                continue
            if self.max_states is not None and len(run.index) >= self.max_states:
                raise RuntimeError("budget")
            succ_digest = run.index.add(successor, succ_digest)
            run.order.append(successor)
            added.append((successor, succ_digest))
            if rebuilt is not None:
                rebuilt.append(
                    (task, intern_action.setdefault(action, action), successor)
                )
        run.frontier.extend(added)
        run.edges[state] = out if rebuilt is None else rebuilt
        run.transitions += len(out)
        run.expanded += 1
        run.since_checkpoint += 1

    def _maybe_checkpoint(self, run):
        if self.checkpoint_dir is not None and run.since_checkpoint >= 1000:
            raise AssertionError("unreachable: no checkpoint_dir")


def uninstrumented_explore(view, root):
    return _UninstrumentedEngine().explore(view, root)


def timed(function, *args) -> float:
    started = perf_counter()
    function(*args)
    return perf_counter() - started


def paired_timings(baseline_fn, instrumented_fn, *args):
    """Alternate the contenders; return each one's sample list.

    Alternation spreads any slow drift (CPU frequency, heap growth)
    evenly across both sample sets instead of biasing whichever ran
    later.
    """
    baselines, instrumenteds = [], []
    for repetition in range(REPETITIONS):
        if repetition % 2 == 0:
            baselines.append(timed(baseline_fn, *args))
            instrumenteds.append(timed(instrumented_fn, *args))
        else:
            instrumenteds.append(timed(instrumented_fn, *args))
            baselines.append(timed(baseline_fn, *args))
    return baselines, instrumenteds


def test_disabled_tracer_overhead_under_5_percent():
    system = tob_delegation_system(3, resilience=1)
    root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
    view = DeterministicSystemView(system)

    # Warm the view's step cache and sanity-check both walk the same graph.
    warm = explore(view, root)
    baseline_graph = uninstrumented_explore(view, root)
    assert set(baseline_graph.states) == set(warm.states)
    states = len(warm.states)
    assert states >= 2_000, (
        f"workload too small to measure ({states} states); overhead numbers "
        "on sub-millisecond runs are timer noise"
    )

    rows = []
    passed = False
    for attempt in range(1, ATTEMPTS + 1):
        baselines, instrumenteds = paired_timings(
            uninstrumented_explore, explore, view, root
        )
        baseline, instrumented = min(baselines), min(instrumenteds)
        overhead = (instrumented - baseline) / baseline if baseline else 0.0
        rows.append(
            {
                "attempt": attempt,
                "states": states,
                "baseline_s": round(baseline, 6),
                "instrumented_s": round(instrumented, 6),
                "baseline_states_per_s": round(states / median(baselines)),
                "instrumented_states_per_s": round(
                    states / median(instrumenteds)
                ),
                "overhead": round(overhead, 4),
            }
        )
        passed = (
            instrumented
            <= baseline * (1 + RELATIVE_BOUND) + ABSOLUTE_EPSILON_S
        )
        if passed:
            break
    report("trace overhead (tracer disabled)", rows)
    assert passed, (
        f"disabled-tracer overhead exceeded {RELATIVE_BOUND:.0%} on all "
        f"{ATTEMPTS} attempts: "
        + ", ".join(f"{row['overhead']:.1%}" for row in rows)
    )
