"""Shared helpers for the benchmark harness.

Every benchmark file corresponds to one row of the experiment index in
DESIGN.md (E1-E15) and regenerates the executable evidence for one
figure, lemma, theorem, or construction of the paper.  Results are
recorded in EXPERIMENTS.md.

Benchmarks both *time* the operation (pytest-benchmark) and *assert* the
reproduced claim, so `pytest benchmarks/ --benchmark-only` doubles as a
verification pass.

``report()`` additionally appends each evidence table to the
machine-readable ``BENCH_obs.json`` artifact at the repo root, so bench
output accumulates as data (one ``{"title", "rows", "time"}`` record per
call) rather than only as captured stdout.
"""

import json
import time
from pathlib import Path

import pytest

BENCH_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _append_record(record: dict) -> None:
    try:
        records = json.loads(BENCH_ARTIFACT.read_text(encoding="utf-8"))
        if not isinstance(records, list):
            records = []
    except (FileNotFoundError, json.JSONDecodeError):
        records = []
    records.append(record)
    BENCH_ARTIFACT.write_text(
        json.dumps(records, indent=2, default=str) + "\n", encoding="utf-8"
    )


def report(title: str, rows) -> None:
    """Print a small evidence table under the benchmark output.

    Also appends the table to ``BENCH_obs.json`` for machine consumption.
    """
    print(f"\n[{title}]")
    rows = list(rows)
    for row in rows:
        print(f"  {row}")
    _append_record(
        {
            "title": title,
            "rows": [row if isinstance(row, (dict, list)) else str(row) for row in rows],
            "time": time.time(),
        }
    )
