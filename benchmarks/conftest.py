"""Shared helpers for the benchmark harness.

Every benchmark file corresponds to one row of the experiment index in
DESIGN.md (E1-E15) and regenerates the executable evidence for one
figure, lemma, theorem, or construction of the paper.  Results are
recorded in EXPERIMENTS.md.

Benchmarks both *time* the operation (pytest-benchmark) and *assert* the
reproduced claim, so `pytest benchmarks/ --benchmark-only` doubles as a
verification pass.
"""

import pytest


def report(title: str, rows) -> None:
    """Print a small evidence table under the benchmark output."""
    print(f"\n[{title}]")
    for row in rows:
        print(f"  {row}")
