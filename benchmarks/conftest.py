"""Shared helpers for the benchmark harness.

Every benchmark file corresponds to one row of the experiment index in
DESIGN.md (E1-E15) and regenerates the executable evidence for one
figure, lemma, theorem, or construction of the paper.  Results are
recorded in EXPERIMENTS.md.

Benchmarks both *time* the operation (pytest-benchmark) and *assert* the
reproduced claim, so `pytest benchmarks/ --benchmark-only` doubles as a
verification pass.

``report()`` additionally appends each evidence table to a
machine-readable ``BENCH_*.json`` artifact at the repo root (default
``BENCH_obs.json``; pass ``artifact=`` for a dedicated file), so bench
output accumulates as data (one ``{"title", "rows", "time"}`` record per
call) rather than only as captured stdout.  The artifacts are committed
evidence: a corrupt or shrinking artifact is refused loudly instead of
silently rewritten, so a bad run can never destroy previously recorded
entries.

Each ``report()`` call also registers one ``kind="bench"`` record in the
run ledger (``$REPRO_RUNS_DIR``, default ``.repro/runs``), with the
table's numeric columns as counters — so ``repro runs diff`` compares
bench rows across time exactly like engine runs, covering the perf
trajectory.  Ledger failures never fail a benchmark.
"""

import json
import os
import time
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_ARTIFACT = _REPO_ROOT / "BENCH_obs.json"


def _load_records(path: Path) -> list:
    """Existing artifact records; refuses to treat corrupt data as empty."""
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    try:
        records = json.loads(text)
    except json.JSONDecodeError as error:
        raise RuntimeError(
            f"{path.name} exists but is not valid JSON ({error}); refusing to "
            "overwrite recorded benchmark evidence — fix or remove the file"
        ) from error
    if not isinstance(records, list):
        raise RuntimeError(
            f"{path.name} does not hold a JSON list; refusing to overwrite it"
        )
    return records


def _write_records(path: Path, records: list) -> None:
    """Write the artifact, refusing any write that would drop entries."""
    existing = _load_records(path)
    if len(records) < len(existing):
        raise RuntimeError(
            f"refusing to shrink {path.name} from {len(existing)} to "
            f"{len(records)} records; benchmark evidence only accumulates"
        )
    path.write_text(
        json.dumps(records, indent=2, default=str) + "\n", encoding="utf-8"
    )


def _append_record(record: dict, artifact: Path = BENCH_ARTIFACT) -> None:
    records = _load_records(artifact)
    records.append(record)
    _write_records(artifact, records)


def _ledger_bench_record(title: str, rows, artifact: Path) -> None:
    """Register one ``kind="bench"`` run per reported table, best-effort.

    Dict rows contribute their numeric columns as counters (later rows
    win on a name collision, prefixed ``row<i>.`` when there are several
    dict rows); the artifact path rides along so ``repro runs show``
    points back at the evidence table.
    """
    try:
        from repro.obs.ledger import RunLedger, resolve_runs_dir
    except ImportError:  # pragma: no cover - bench run without src on path
        return
    directory = resolve_runs_dir(environ=os.environ)
    if directory is None:
        return
    if not directory.is_absolute():
        directory = _REPO_ROOT / directory
    dict_rows = [row for row in rows if isinstance(row, dict)]
    counters = {}
    for index, row in enumerate(dict_rows):
        prefix = f"row{index}." if len(dict_rows) > 1 else ""
        for name, value in row.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            counters[f"{prefix}{name}"] = value
    try:
        RunLedger(directory).record(
            "bench",
            title,
            counters=counters,
            artifacts={"artifact": str(artifact)},
        )
    except OSError:  # pragma: no cover - read-only checkout
        pass


def report(title: str, rows, artifact: str | None = None) -> None:
    """Print a small evidence table under the benchmark output.

    Also appends the table to the machine-readable artifact —
    ``BENCH_obs.json`` by default, or the repo-root ``BENCH_*.json``
    named by ``artifact`` — and registers a ``kind="bench"`` run in the
    run ledger so ``repro runs diff`` covers the perf trajectory.
    """
    print(f"\n[{title}]")
    rows = list(rows)
    for row in rows:
        print(f"  {row}")
    path = BENCH_ARTIFACT if artifact is None else _REPO_ROOT / artifact
    _append_record(
        {
            "title": title,
            "rows": [row if isinstance(row, (dict, list)) else str(row) for row in rows],
            "time": time.time(),
        },
        artifact=path,
    )
    _ledger_bench_record(title, rows, path)
