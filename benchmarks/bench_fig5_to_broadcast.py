"""E4 (Figs. 5-7): totally ordered broadcast.

Reproduces: the worked failure-oblivious example — total order (all
delivery sequences prefix-related), one-invocation-many-responses, and
f-resilience; measures broadcast+delivery throughput as endpoints scale.
"""

import pytest

from repro.ioa import RoundRobinScheduler, invoke, run
from repro.services import TotallyOrderedBroadcast, bcast, delivered_sequence, is_prefix
from repro.system import DistributedSystem, ScriptProcess


def build_chat(endpoints, messages_per_process):
    service = TotallyOrderedBroadcast(
        service_id="tob",
        endpoints=tuple(range(endpoints)),
        messages=tuple(range(messages_per_process)),
        resilience=endpoints // 2,
    )
    processes = [
        ScriptProcess(
            e,
            [invoke("tob", e, bcast(m)) for m in range(messages_per_process)],
            connections=["tob"],
        )
        for e in range(endpoints)
    ]
    return DistributedSystem(processes, services=[service])


def run_chat(system, steps):
    return run(system, RoundRobinScheduler(), max_steps=steps)


@pytest.mark.parametrize("endpoints", [2, 4, 8])
def test_broadcast_throughput(benchmark, endpoints):
    messages_per_process = 3
    # Each message costs invoke + perform + compute + one output per
    # endpoint; budget generously so every delivery completes.
    total_messages = endpoints * messages_per_process
    steps = total_messages * (endpoints + 6) + 100
    execution = benchmark(run_chat, build_chat(endpoints, messages_per_process), steps)
    sequences = sorted(
        (
            delivered_sequence(execution.actions, e, "tob")
            for e in range(endpoints)
        ),
        key=len,
    )
    # Total order: prefix-related sequences at all endpoints.
    for shorter, longer in zip(sequences, sequences[1:]):
        assert is_prefix(shorter, longer)
    # Every broadcast was eventually delivered somewhere.
    assert len(sequences[-1]) == endpoints * messages_per_process


def test_delivery_fanout_cost(benchmark):
    """Cost of one delivery step (one queued message to n endpoints)."""
    from repro.ioa import Task

    endpoints = 16
    service = TotallyOrderedBroadcast(
        service_id="tob",
        endpoints=tuple(range(endpoints)),
        messages=("m",),
        resilience=1,
    )
    state = service.apply_input(
        service.some_start_state(), invoke("tob", 0, bcast("m"))
    )
    state = service.enabled(state, Task(service.name, ("perform", 0)))[0].post

    def deliver():
        return service.enabled(state, Task(service.name, ("compute", "g")))[0].post

    post = benchmark(deliver)
    assert all(len(service.resp_buffer(post, e)) == 1 for e in range(endpoints))
