"""E16 (Section 1 / Herlihy universality): consensus implements anything.

Reproduces the universality claim the paper's framing rests on: any
deterministic sequential type is implemented wait-free from wait-free
consensus objects.  Measures construction throughput per implemented
type and verifies linearizability with the independent checker.  Also
benches the consensus-number-2 companion: 2-process consensus from one
test&set object, checked against the canonical object via the paper's
implementation relation.
"""

import pytest

from repro.analysis import canonical_accepts_trace, trace_is_linearizable
from repro.ioa import RoundRobinScheduler, run
from repro.protocols import tas_consensus_system
from repro.protocols.tas_consensus import (
    IMPLEMENTED_ID,
    implemented_consensus_trace,
)
from repro.protocols.universal import (
    UNIVERSAL_ID,
    implemented_trace,
    universal_object_system,
)
from repro.services import CanonicalAtomicObject
from repro.system import FailureSchedule
from repro.types import binary_consensus_type, counter_type, queue_type


def run_universal(implemented_type, scripts, steps=8000, failures=()):
    system = universal_object_system(implemented_type, scripts)
    execution = run(
        system,
        RoundRobinScheduler(),
        max_steps=steps,
        inputs=FailureSchedule(tuple(failures)).as_inputs(),
    )
    return implemented_trace(execution)


def test_universal_counter(benchmark):
    counter = counter_type(modulus=16)
    trace = benchmark(
        run_universal,
        counter,
        {0: [("inc",), ("get",)], 1: [("inc",), ("get",)]},
    )
    assert sum(1 for a in trace if a.kind == "respond") == 4
    assert trace_is_linearizable(trace, UNIVERSAL_ID, counter)


def test_universal_queue(benchmark):
    queue = queue_type(items=("a", "b"))
    trace = benchmark(
        run_universal,
        queue,
        {0: [("enq", "a"), ("deq",)], 1: [("enq", "b"), ("deq",)]},
    )
    assert trace_is_linearizable(trace, UNIVERSAL_ID, queue)


def test_universal_wait_freedom(benchmark):
    counter = counter_type(modulus=16)
    trace = benchmark(
        run_universal,
        counter,
        {0: [("inc",), ("get",)], 1: [("inc",)], 2: [("inc",)]},
        8000,
        [(5, 1), (5, 2)],
    )
    survivor_responses = [
        a for a in trace if a.kind == "respond" and a.args[1] == 0
    ]
    assert len(survivor_responses) == 2


def test_consensus_from_test_and_set(benchmark):
    def round_trip():
        system = tas_consensus_system()
        initialization = system.initialization({0: 0, 1: 1})
        execution = run(
            system,
            RoundRobinScheduler(),
            max_steps=300,
            start=initialization.final_state,
        )
        return implemented_consensus_trace(execution)

    trace = benchmark(round_trip)
    canonical = CanonicalAtomicObject(
        binary_consensus_type(),
        endpoints=(0, 1),
        resilience=1,
        service_id=IMPLEMENTED_ID,
    )
    assert canonical_accepts_trace(canonical, trace)


def test_two_set_consensus_from_test_and_set(benchmark):
    """The stacked construction (S41): 2-set consensus for 4 processes
    from consensus-number-2 objects, wait-free."""
    from repro.analysis import run_consensus_round
    from repro.protocols import kset_from_tas_system
    from repro.system import upfront_failures

    def stacked_round():
        return run_consensus_round(
            kset_from_tas_system(4),
            {0: 0, 1: 1, 2: 2, 3: 3},
            failure_schedule=upfront_failures([0, 2]),
            k=2,
            max_steps=60_000,
        )

    check = benchmark(stacked_round)
    assert check.ok, check.violations


def test_consensus_from_queue(benchmark):
    """The second consensus-number-2 rung: a preloaded FIFO queue."""
    from repro.protocols import queue_consensus_system
    from repro.protocols.queue_consensus import IMPLEMENTED_ID as QUEUE_ID

    def round_trip():
        system = queue_consensus_system()
        initialization = system.initialization({0: 1, 1: 0})
        execution = run(
            system,
            RoundRobinScheduler(),
            max_steps=300,
            start=initialization.final_state,
        )
        return [
            step.action
            for step in execution.steps
            if step.action.kind in ("invoke", "respond")
            and step.action.args[0] == QUEUE_ID
        ]

    trace = benchmark(round_trip)
    canonical = CanonicalAtomicObject(
        binary_consensus_type(), endpoints=(0, 1), resilience=1,
        service_id=QUEUE_ID,
    )
    assert canonical_accepts_trace(canonical, trace)
