"""E-execution: persistent ``Execution.extend`` stays linear.

``Execution`` used to store its steps as a plain tuple, so every
``extend`` copied the whole history — building an ``n``-step execution
was O(n^2), which the long silencing runs of the refutation engine
(100k-step horizons) and the bounded adversary both hit.  The persistent
chain representation makes ``extend`` O(1) with structural sharing.

This benchmark is the regression guard: it times ``extend`` loops at two
sizes and asserts the per-step cost does not grow with the execution
length (quadratic behavior makes the ratio track ``n``, persistent
behavior keeps it near 1), and asserts the value semantics the rest of
the library relies on (steps tuple, final state, equality, prefix
sharing).  Rows are appended to ``BENCH_execution.json``.
"""

from time import perf_counter

from conftest import report

from repro.ioa.actions import Action
from repro.ioa.execution import Execution

SMALL = 10_000
LARGE = 80_000
#: Per-step cost at LARGE may be at most this multiple of the per-step
#: cost at SMALL.  A quadratic extend makes the ratio track LARGE/SMALL
#: (8x); the persistent representation keeps it near 1.  Generous bound
#: so CI jitter cannot trip it.
LINEARITY_BOUND = 3.0


def _build(steps: int) -> tuple[Execution, float]:
    action = Action("tick", ())
    execution = Execution(start=0)
    started = perf_counter()
    for index in range(steps):
        execution = execution.extend(action, index + 1, None)
    return execution, perf_counter() - started


def test_extend_is_linear(benchmark):
    small, small_seconds = _build(SMALL)
    large, large_seconds = benchmark.pedantic(_build, args=(LARGE,), rounds=1)

    assert len(small) == SMALL and len(large) == LARGE
    assert large.final_state == LARGE
    per_step_small = small_seconds / SMALL
    per_step_large = large_seconds / LARGE
    ratio = per_step_large / per_step_small
    assert ratio < LINEARITY_BOUND, (
        f"extend per-step cost grew {ratio:.1f}x from {SMALL} to {LARGE} "
        "steps — the persistent representation regressed to quadratic"
    )

    # Value semantics: materialization, equality, and prefix round-trips.
    materialize_started = perf_counter()
    steps = large.steps
    materialize_seconds = perf_counter() - materialize_started
    assert len(steps) == LARGE and steps[-1].post == LARGE
    assert large.prefix(SMALL) == small
    assert small.extend(Action("tock", ()), -1) != small

    report(
        "execution extend linearity",
        [
            {
                "steps": SMALL,
                "seconds": round(small_seconds, 4),
                "us_per_step": round(per_step_small * 1e6, 3),
            },
            {
                "steps": LARGE,
                "seconds": round(large_seconds, 4),
                "us_per_step": round(per_step_large * 1e6, 3),
                "per_step_ratio_vs_small": round(ratio, 3),
                "materialize_seconds": round(materialize_seconds, 4),
            },
        ],
        artifact="BENCH_execution.json",
    )
