"""E12 (Section 4): boosting IS possible for 2-set-consensus.

Reproduces: wait-free 2n-process 2-set-consensus from wait-free
n-process consensus — k-agreement, validity, and termination under up to
n - 1 failures, swept over n.  The resilience boost is strict:
f' = n/2 - 1 inside, f = n - 1 outside.
"""

import pytest

from repro.analysis import run_consensus_round
from repro.protocols import classic_parameters, kset_boost_system
from repro.system import upfront_failures


def full_round(params, victims):
    proposals = {endpoint: endpoint for endpoint in range(params.n)}
    return run_consensus_round(
        kset_boost_system(params),
        proposals,
        failure_schedule=upfront_failures(victims),
        k=params.k,
        max_steps=200_000,
    )


@pytest.mark.parametrize("n", [2, 4, 6, 8])
def test_failure_free_round(benchmark, n):
    params = classic_parameters(n)
    check = benchmark(full_round, params, [])
    assert check.ok, check.violations
    assert len(set(check.decisions.values())) <= 2


@pytest.mark.parametrize("n", [4, 6])
def test_wait_free_round_max_failures(benchmark, n):
    """n - 1 upfront failures: the lone survivor still decides."""
    params = classic_parameters(n)
    victims = list(range(n - 1))
    check = benchmark(full_round, params, victims)
    assert check.ok, check.violations
    assert n - 1 in check.decisions


@pytest.mark.parametrize("n", [4, 6])
def test_half_failures_round(benchmark, n):
    params = classic_parameters(n)
    victims = list(range(n // 2))
    check = benchmark(full_round, params, victims)
    assert check.ok, check.violations


def test_resilience_is_strictly_boosted(benchmark):
    """The headline inequality of Section 4 (parameter validation cost)."""

    def validate_all():
        checked = []
        for n in (2, 4, 6, 8, 10):
            params = classic_parameters(n)
            checked.append(params)
        return checked

    for params in benchmark(validate_all):
        assert params.inner_resilience < params.boosted_resilience
        assert params.k_prime * params.n == params.k * params.n_prime
