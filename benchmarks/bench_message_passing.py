"""E18 (2002 TR setting): boosting is impossible in message passing too.

The basic results first appeared as "Boosting Fault-tolerance in
Asynchronous Message Passing Systems is Impossible"; here the
asynchronous network is a failure-oblivious service and Theorem 9
covers the setting.  The benches refute message-passing candidates
through the full pipeline and measure the network substrate itself.
"""

import pytest

from repro.analysis import liveness_attack, refute_candidate
from repro.ioa import RoundRobinScheduler, invoke, run
from repro.protocols.message_passing import (
    arbiter_consensus_system,
    exchange_consensus_system,
)
from repro.services.network import AsynchronousNetwork, deliveries_in_trace, send
from repro.system import DistributedSystem, ScriptProcess


def test_pipeline_refutes_arbiter_candidate(benchmark):
    verdict = benchmark(
        refute_candidate, arbiter_consensus_system(3, 0), None, 600_000
    )
    assert verdict.refuted
    assert verdict.lemma8.violation.index == "net"


def test_direct_attack_on_exchange_candidate(benchmark):
    system = exchange_consensus_system(0)
    root = system.initialization({0: 0, 1: 1}).final_state
    violation = benchmark(liveness_attack, system, root, [1], 50_000)
    assert violation is not None and violation.exact


@pytest.mark.parametrize("endpoints", [2, 4, 8])
def test_network_throughput(benchmark, endpoints):
    """Messages per scheduler step as the ring size grows."""
    messages_each = 3
    net = AsynchronousNetwork(
        "net",
        endpoints=tuple(range(endpoints)),
        messages=tuple(range(messages_each)),
        resilience=endpoints - 1,
    )
    processes = [
        ScriptProcess(
            e,
            [
                invoke("net", e, send((e + 1) % endpoints, m))
                for m in range(messages_each)
            ],
            connections=["net"],
        )
        for e in range(endpoints)
    ]
    system = DistributedSystem(processes, services=[net])
    steps = endpoints * messages_each * 6 + 50

    def deliver_all():
        return run(system, RoundRobinScheduler(), max_steps=steps)

    execution = benchmark(deliver_all)
    total_delivered = sum(
        len(deliveries_in_trace(execution.actions, e, "net"))
        for e in range(endpoints)
    )
    assert total_delivered == endpoints * messages_each
