"""E2 (Figs. 2-3, Lemma 5): hook existence and the Fig. 3 search.

Reproduces: on every safe doomed candidate explored, the Fig. 3
construction terminates and localizes a hook (Fig. 2) whose endpoints
have opposite univalent valences — the paper's Lemma 5.
"""

import pytest

from repro.analysis import Hook, analyze_valence, find_hook
from repro.protocols import delegation_consensus_system, tob_delegation_system
from repro.engine import Budget


def run_hook_search(system, proposals, max_states):
    root = system.initialization(proposals).final_state
    analysis = analyze_valence(system, root, budget=Budget(max_states=max_states))
    outcome, stats = find_hook(analysis, root)
    return analysis, outcome, stats


@pytest.mark.parametrize(
    "n,f,proposals",
    [
        (2, 0, {0: 0, 1: 1}),
        (3, 0, {0: 0, 1: 1, 2: 0}),
        (3, 1, {0: 0, 1: 1, 2: 1}),
    ],
)
def test_hook_search_on_delegation(benchmark, n, f, proposals):
    analysis, outcome, stats = benchmark(
        run_hook_search,
        delegation_consensus_system(n, resilience=f),
        proposals,
        600_000,
    )
    assert isinstance(outcome, Hook)
    assert outcome.valence0 is not outcome.valence1
    assert analysis.is_bivalent(outcome.alpha)


def test_hook_search_on_tob(benchmark):
    analysis, outcome, stats = benchmark(
        run_hook_search, tob_delegation_system(2, 0), {0: 0, 1: 1}, 600_000
    )
    assert isinstance(outcome, Hook)


def test_hook_search_cost_breakdown(benchmark):
    """Time just the search (valence analysis precomputed)."""
    system = delegation_consensus_system(3, resilience=1)
    root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
    analysis = analyze_valence(system, root, budget=Budget(max_states=600_000))
    outcome, stats = benchmark(find_hook, analysis, root)
    assert isinstance(outcome, Hook)
    assert stats.inner_bfs_expansions >= stats.outer_iterations
