"""E20: deterministic simulation and fuzzing throughput.

The sim subsystem's two headline numbers, recorded to ``BENCH_sim.json``:

* **schedules/second** — how fast the seeded harness burns through
  randomized fault schedules (the fuzzer's inner loop);
* **shrink ratio** — how much delta debugging cuts a failing schedule
  before it is emitted as a replay script (the acceptance bar is >= 50%
  on the known-refutable lossy exchange candidate).

Both are asserted, not just measured, so the bench doubles as the
acceptance-criterion check outside the unit suite.
"""

from conftest import report

from repro.sim import (
    CandidateSpec,
    SimConfig,
    build_candidate,
    fuzz,
    replay,
    simulate,
)

LOSSY_EXCHANGE = CandidateSpec(
    family="exchange", n=2, resilience=0, faults=(("drop", 1),)
)

ARTIFACT = "BENCH_sim.json"


def test_simulation_throughput(benchmark):
    """Seeded schedules per second on the lossy exchange candidate."""
    system = build_candidate(LOSSY_EXCHANGE)
    batch = 50

    def run_batch():
        return [
            simulate(system, SimConfig(seed=seed, fault_rate=0.4))
            for seed in range(batch)
        ]

    results = benchmark(run_batch)
    steps = sum(result.steps for result in results)
    violations = sum(1 for result in results if not result.ok)
    assert violations > 0  # drop=1 must bite within 50 seeds
    report(
        "sim harness throughput (lossy exchange)",
        [
            f"schedules per round: {batch}",
            f"steps per round: {steps}",
            f"violating schedules: {violations}/{batch}",
        ],
        artifact=ARTIFACT,
    )


def test_fuzz_finds_and_shrinks_at_least_half(benchmark):
    """The CI acceptance bar: find, shrink >= 50%, replay bit-for-bit."""
    result = benchmark(fuzz, [LOSSY_EXCHANGE], runs=8, seed=19)
    assert result.found, "seeded campaign must find the dropped message"
    counterexample = result.found[0]
    assert counterexample.shrink_ratio >= 0.5
    system = build_candidate(LOSSY_EXCHANGE)
    shrunk = counterexample.result
    again = replay(
        system,
        shrunk.script,
        inputs=shrunk.inputs,
        proposals=shrunk.proposals,
        config=shrunk.config,
    )
    assert again.execution == shrunk.execution
    report(
        "fuzz + shrink (lossy exchange, seed 19)",
        [
            f"schedules/second: {result.schedules_per_second:.0f}",
            f"schedule steps: {counterexample.original_steps} -> "
            f"{counterexample.shrunk_steps}",
            f"shrink ratio: {counterexample.shrink_ratio:.0%}",
            f"shrink rounds: {counterexample.shrink_rounds}",
        ],
        artifact=ARTIFACT,
    )


def test_random_campaign_throughput(benchmark):
    """Mixed-family random campaign: specs/schedules per second."""
    result = benchmark(
        fuzz, None, campaigns=6, runs=4, seed=7, stop_after=None
    )
    assert result.specs_tried == 6
    report(
        "random fuzz campaign (6 specs x 4 runs)",
        [
            f"schedules: {result.runs} ({result.steps} steps)",
            f"schedules/second: {result.schedules_per_second:.0f}",
            f"counterexamples: {len(result.found)}",
        ],
        artifact=ARTIFACT,
    )
