"""E9 (Theorem 2): no boosting with atomic objects + registers.

Reproduces: the complete adversary pipeline refutes every delegation
candidate (n processes over one f-resilient consensus object, f < n-1)
with an exact termination-violation witness under f + 1 failures; the
registers-only (FLP, f = 0) instance falls to the direct liveness
attack; and the hypothesis f < n - 1 is tight (wait-free objects
survive).
"""

import pytest

from repro.analysis import (
    TerminationViolation,
    liveness_attack,
    refute_candidate,
)
from repro.protocols import (
    delegation_consensus_system,
    min_register_consensus_system,
)


@pytest.mark.parametrize("n,f", [(2, 0), (3, 0), (3, 1), (4, 1)])
def test_full_pipeline_refutes_delegation(benchmark, n, f):
    verdict = benchmark(
        refute_candidate, delegation_consensus_system(n, resilience=f), None, 600_000
    )
    assert verdict.refuted
    assert isinstance(verdict.refutation, TerminationViolation)
    assert len(verdict.refutation.victims) == f + 1
    assert verdict.refutation.exact


def test_flp_instance_registers_only(benchmark):
    """f = 0 with registers only: the classical FLP special case."""
    system = min_register_consensus_system()
    root = system.initialization({0: 0, 1: 1}).final_state
    violation = benchmark(liveness_attack, system, root, [1], 50_000)
    assert violation is not None and violation.exact


def test_hypothesis_tightness_wait_free_survives(benchmark):
    """f = n - 1 (wait-free) is outside the theorem — and indeed the
    attack fails: the tightness half of the reproduction."""
    system = delegation_consensus_system(3, resilience=2)
    root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
    violation = benchmark(liveness_attack, system, root, [0, 1], 50_000)
    assert violation is None
