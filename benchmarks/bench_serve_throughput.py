"""E-serve: verdict-server latency — cold runs versus cache hits.

Stands up a real :class:`repro.serve.VerdictServer` on an ephemeral port
(in-process thread, no persistence) and measures over HTTP:

* **cold** — the first submission of a candidate: full queue + engine
  exploration + verdict;
* **cached** — the identical resubmission, answered from the verdict
  cache without touching the engine;
* **fan-out** — a burst of cached submissions from three tenants, as a
  jobs/second figure for the hot path.

Asserts the properties the serving layer exists for: the cached answer
carries the same verdict document, arrives out of cache (the hit counter
moves, `engine.runs` does not), and is at least 10x faster than the cold
run.  Rows land in ``BENCH_serve.json``.
"""

import json
import time
import urllib.request

from conftest import report

from repro.obs import MetricsRegistry
from repro.serve import ServeConfig, run_in_thread

SPEC = {
    "candidate": "delegation",
    "n": 3,
    "f": 1,
    "budget": {"max_states": 600_000},
}
TENANTS = ("alice", "bob", "carol")
BURST = 20  # cached submissions per tenant in the fan-out measurement


def _request(url, method="GET", body=None, tenant=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    headers = {} if tenant is None else {"X-Repro-Tenant": tenant}
    request = urllib.request.Request(url, data=data, method=method, headers=headers)
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def _await_terminal(base, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, document = _request(f"{base}/jobs/{job_id}")
        if document["state"] in ("completed", "exhausted", "failed", "cancelled"):
            return document
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def test_serve_cold_vs_cached_throughput():
    metrics = MetricsRegistry()
    handle = run_in_thread(ServeConfig(port=0, fleet=2, metrics=metrics))
    try:
        base = handle.url

        started = time.perf_counter()
        status, submitted = _request(f"{base}/jobs", "POST", SPEC, tenant="alice")
        assert status == 202
        document = _await_terminal(base, submitted["id"])
        cold_seconds = time.perf_counter() - started
        assert document["state"] == "completed"
        assert document["verdict"]["refuted"] is True

        runs_before = metrics.snapshot()["counters"].get("engine.runs", 0)
        started = time.perf_counter()
        status, answer = _request(f"{base}/jobs", "POST", SPEC, tenant="bob")
        cached_seconds = time.perf_counter() - started
        assert status == 200 and answer["cached"] is True
        assert answer["verdict"] == document["verdict"]
        counters = metrics.snapshot()["counters"]
        assert counters["serve.cache.hits"] == 1
        assert counters.get("engine.runs", 0) == runs_before  # nothing ran
        assert cached_seconds * 10 < cold_seconds, (
            f"cache hit ({cached_seconds:.3f}s) not clearly faster than the "
            f"cold run ({cold_seconds:.3f}s)"
        )

        started = time.perf_counter()
        answered = 0
        for round_ in range(BURST):
            for tenant in TENANTS:
                status, answer = _request(f"{base}/jobs", "POST", SPEC, tenant=tenant)
                assert status == 200 and answer["cached"] is True
                answered += 1
        burst_seconds = time.perf_counter() - started
        jobs_per_second = answered / burst_seconds

        report(
            "serve: cold vs cached verdict latency (delegation n=3 f=1)",
            [
                {
                    "path": "cold (queue + engine + verdict)",
                    "seconds": round(cold_seconds, 4),
                },
                {
                    "path": "cached resubmission",
                    "seconds": round(cached_seconds, 4),
                    "speedup": round(cold_seconds / cached_seconds, 1),
                },
                {
                    "path": f"cached burst, {len(TENANTS)} tenants x {BURST}",
                    "seconds": round(burst_seconds, 4),
                    "jobs_per_second": round(jobs_per_second, 1),
                },
            ],
            artifact="BENCH_serve.json",
        )
    finally:
        handle.stop()
