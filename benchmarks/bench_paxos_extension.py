"""E17 (framework extension): shared-memory Paxos with Omega.

A beyond-the-paper workload demonstrating that the service model
expresses a realistic eventually-live consensus protocol: Disk-Paxos
over per-process wait-free registers with Omega leader election.
Measures decision latency under increasing failure counts and verifies
that safety is schedule-independent.
"""

import pytest

from repro.analysis import run_consensus_round
from repro.protocols import shared_paxos_system
from repro.system import upfront_failures


def paxos_round(n, failures, max_steps=300_000):
    return run_consensus_round(
        shared_paxos_system(n),
        {i: i % 2 for i in range(n)},
        failure_schedule=upfront_failures(list(range(failures))),
        max_steps=max_steps,
    )


@pytest.mark.parametrize("failures", [0, 1, 2])
def test_paxos_decision_latency_n3(benchmark, failures):
    check = benchmark(paxos_round, 3, failures)
    assert check.ok, check.violations


def test_paxos_n4_two_failures(benchmark):
    check = benchmark(paxos_round, 4, 2)
    assert check.ok, check.violations


def test_paxos_leader_failover_cost(benchmark):
    """Killing the stable leader (process 0) forces a ballot handover."""
    from repro.system import FailureSchedule
    from repro.protocols.shared_paxos import shared_paxos_system as build

    def failover_round():
        return run_consensus_round(
            build(3),
            {0: 0, 1: 1, 2: 1},
            failure_schedule=FailureSchedule(((30, 0),)),
            max_steps=300_000,
        )

    check = benchmark(failover_round)
    assert check.ok, check.violations
