"""E14 (Lemmas 6-8): similarity analysis and the hook case analysis.

Reproduces: (a) Lemma 8's case analysis lands in the predicted claim and
its similarity conclusion verifies concretely; (b) the graph-wide scan
finds similar opposite-valence pairs on doomed candidates (the concrete
failure of Lemmas 6-7 for them) and, fed to the refutation engine, each
yields a termination witness.
"""

import pytest

from repro.analysis import (
    TerminationViolation,
    analyze_valence,
    find_hook,
    lemma8_case_analysis,
    refute_from_similarity,
    scan_for_similarity_violations,
)
from repro.protocols import delegation_consensus_system, tob_delegation_system
from repro.engine import Budget


def prepared(system, proposals, max_states=600_000):
    root = system.initialization(proposals).final_state
    analysis = analyze_valence(system, root, budget=Budget(max_states=max_states))
    return root, analysis


@pytest.mark.parametrize(
    "factory,proposals",
    [
        (lambda: delegation_consensus_system(2, 0), {0: 0, 1: 1}),
        (lambda: tob_delegation_system(2, 0), {0: 0, 1: 1}),
    ],
)
def test_case_analysis(benchmark, factory, proposals):
    system = factory()
    root, analysis = prepared(system, proposals)
    hook, _ = find_hook(analysis, root)
    report = benchmark(lemma8_case_analysis, system, analysis, hook)
    assert report.claim == "claim4.1-shared-service-internal"
    assert report.violation is not None


def test_similarity_scan(benchmark):
    system = delegation_consensus_system(2, resilience=0)
    root, analysis = prepared(system, {0: 0, 1: 1})
    violations = benchmark(
        scan_for_similarity_violations, system, analysis, (), 20_000
    )
    assert violations  # Lemmas 6-7 fail concretely for the candidate


def test_each_scanned_violation_refutes(benchmark):
    system = delegation_consensus_system(2, resilience=0)
    root, analysis = prepared(system, {0: 0, 1: 1})
    violations = scan_for_similarity_violations(system, analysis, max_pairs=5_000)

    def refute_first():
        return refute_from_similarity(system, violations[0], resilience=0)

    outcome = benchmark(refute_first)
    assert isinstance(outcome, TerminationViolation)
    assert outcome.exact
