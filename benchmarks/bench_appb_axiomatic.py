"""E15 (Appendix B, Theorem 11): the operational consensus spec implies
the axiomatic one.

Reproduces: exhaustive safety verification (agreement + validity over
EVERY reachable behavior, including failure branches) of the canonical
consensus object wrapped in delegation processes, plus modified
termination over all failure patterns within the resilience bound.
"""

import pytest

from repro.analysis import exhaustive_safety_check, run_consensus_round
from repro.protocols import delegation_consensus_system
from repro.system import all_failure_sets, upfront_failures


@pytest.mark.parametrize(
    "proposals",
    [{0: 0, 1: 0}, {0: 0, 1: 1}, {0: 1, 1: 1}],
)
def test_exhaustive_safety_two_processes(benchmark, proposals):
    result = benchmark(
        exhaustive_safety_check,
        delegation_consensus_system(2, resilience=1),
        proposals,
    )
    assert result.ok


def test_exhaustive_safety_with_failure_branching(benchmark):
    result = benchmark(
        exhaustive_safety_check,
        delegation_consensus_system(2, resilience=1),
        {0: 0, 1: 1},
        500_000,
        1,
        (0, 1),
    )
    assert result.ok


def test_exhaustive_safety_three_processes(benchmark):
    result = benchmark(
        exhaustive_safety_check,
        delegation_consensus_system(3, resilience=2),
        {0: 0, 1: 1, 2: 0},
        800_000,
    )
    assert result.ok


def all_pattern_termination(n, f):
    outcomes = []
    for count in range(f + 1):
        for victims in all_failure_sets(range(n), exactly=count):
            check = run_consensus_round(
                delegation_consensus_system(n, resilience=f),
                {i: i % 2 for i in range(n)},
                failure_schedule=upfront_failures(sorted(victims)),
            )
            outcomes.append(check.ok)
    return outcomes


def test_modified_termination_all_patterns(benchmark):
    outcomes = benchmark(all_pattern_termination, 3, 1)
    assert all(outcomes)
