"""E6 (Fig. 9): the perfect failure detector P.

Reproduces: P's strong accuracy (reports are always subsets of the real
failed set at generation time) and strong completeness (failures are
eventually reported to every live endpoint) under fair schedules;
measures report-generation cost as endpoints scale.
"""

import pytest

from repro.ioa import RoundRobinScheduler, Task, fail, run
from repro.services import PerfectFailureDetector, suspicions_in_trace


def fair_run_with_failures(endpoints, victims, steps):
    detector = PerfectFailureDetector(
        "P", endpoints=tuple(range(endpoints)), resilience=endpoints - 1
    )
    inputs = [(10 * (i + 1), fail(v)) for i, v in enumerate(victims)]
    execution = run(detector, RoundRobinScheduler(), max_steps=steps, inputs=inputs)
    return detector, execution


@pytest.mark.parametrize("endpoints", [2, 4, 8])
def test_detector_fair_run(benchmark, endpoints):
    victims = list(range(1, max(2, endpoints // 2)))
    detector, execution = benchmark(
        fair_run_with_failures, endpoints, victims, endpoints * 30
    )
    # Accuracy along the whole run.
    failed = set()
    for step in execution.steps:
        if step.action.kind == "fail":
            failed.add(step.action.args[0])
        if step.action.kind == "respond":
            assert step.action.args[2][1] <= failed
    # Completeness at the surviving endpoint 0.
    reports = suspicions_in_trace(execution.actions, 0, "P")
    assert reports and reports[-1] == frozenset(victims)


def test_single_report_generation(benchmark):
    detector = PerfectFailureDetector("P", endpoints=tuple(range(16)), resilience=15)
    state = detector.some_start_state()
    for victim in range(8):
        state = detector.apply_input(state, fail(victim))

    def generate():
        return detector.enabled(state, Task(detector.name, ("compute", 9)))[0].post

    post = benchmark(generate)
    assert detector.resp_buffer(post, 9)[-1] == ("suspect", frozenset(range(8)))
