"""E-chaos: crash-recovery overhead of the fault-tolerant engine.

Times :class:`repro.engine.ExplorationEngine` at 2 workers twice on the
same instance — once clean, once with a :class:`repro.engine.FaultPlan`
that SIGKILLs worker 0 mid-exploration — verifies both runs reproduce
the sequential graph exactly (the identical-graph guarantee survives a
worker crash), and appends ``{clean_seconds, chaos_seconds,
recovery_overhead}`` rows to ``BENCH_engine.json``.

The overhead ceiling is deliberately loose (kill detection waits out a
heartbeat timeout, and the respawned worker re-imports the interpreter),
and is asserted only on the full-size instance where the exploration
itself dominates: on the small default the fixed recovery cost swamps a
sub-second run and the ratio is noise.

Instance selection mirrors ``bench_engine_scaling.py``: the default is
``delegation_consensus_system(6, 1)`` (~29k states); set
``REPRO_BENCH_FULL=1`` for ``tob_delegation_system(4, 1)``.
"""

import gc
import os
from time import perf_counter

import pytest
from conftest import report

from repro.analysis import DeterministicSystemView, explore
from repro.engine import Budget, ExplorationEngine, FaultPlan, fork_available
from repro.obs import MetricsRegistry
from repro.protocols import delegation_consensus_system, tob_delegation_system

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
WORKERS = 2
KILL_ROUND = 3  # deep enough that the frontier spans both workers
OVERHEAD_CEILING = 3.0  # chaos run may cost at most 3x clean (FULL only)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fault injection needs forked workers"
)


def _instance():
    if FULL:
        system = tob_delegation_system(4, resilience=1)
        label = "tob(n=4, f=1)"
    else:
        system = delegation_consensus_system(6, resilience=1)
        label = "delegation(n=6, f=1)"
    proposals = {
        endpoint: index % 2 for index, endpoint in enumerate(system.process_ids)
    }
    root = system.initialization(proposals).final_state
    return system, root, label


def test_chaos_recovery_overhead():
    system, root, label = _instance()
    budget = Budget(max_states=2_000_000)

    baseline = explore(
        DeterministicSystemView(system), root, budget=Budget(max_states=budget.max_states)
    )
    baseline_order = list(baseline.states)
    baseline_edge_count = baseline.edge_count()
    del baseline

    # Fresh views per run, as in bench_engine_scaling: a warm memoized
    # view would reduce the measurement to IPC + recovery overhead alone.
    gc.collect()
    started = perf_counter()
    engine = ExplorationEngine(workers=WORKERS, budget=budget)
    clean_graph = engine.explore(DeterministicSystemView(system), root)
    clean_seconds = perf_counter() - started
    assert list(clean_graph.states) == baseline_order
    assert clean_graph.edge_count() == baseline_edge_count
    del clean_graph

    plan = FaultPlan(kills=frozenset({(KILL_ROUND, 0)}))
    metrics = MetricsRegistry()
    gc.collect()
    started = perf_counter()
    engine = ExplorationEngine(workers=WORKERS, budget=budget, fault_plan=plan)
    chaos_graph = engine.explore(
        DeterministicSystemView(system), root, metrics=metrics
    )
    chaos_seconds = perf_counter() - started
    assert list(chaos_graph.states) == baseline_order, (
        "recovery changed the explored graph"
    )
    assert chaos_graph.edge_count() == baseline_edge_count
    del chaos_graph

    chaos_report = engine.last_report
    assert chaos_report.worker_failures == 1
    assert chaos_report.worker_respawns == 1
    assert not chaos_report.degraded
    counters = metrics.snapshot()["counters"]
    overhead = chaos_seconds / clean_seconds if clean_seconds else 0.0
    report(
        "chaos recovery" + (" (full)" if FULL else ""),
        [
            {
                "instance": label,
                "workers": WORKERS,
                "states": len(baseline_order),
                "transitions": baseline_edge_count,
                "kill": f"round {KILL_ROUND}, worker 0",
                "clean_seconds": round(clean_seconds, 3),
                "chaos_seconds": round(chaos_seconds, 3),
                "recovery_overhead": round(overhead, 3),
                "partitions_reassigned": counters.get(
                    "engine.partitions_reassigned", 0
                ),
            }
        ],
        artifact="BENCH_engine.json",
    )
    if FULL:
        assert overhead <= OVERHEAD_CEILING, (
            f"crash recovery cost {overhead:.2f}x the clean run on {label}, "
            f"ceiling is {OVERHEAD_CEILING}x"
        )
