"""E7 (Figs. 10-11): the eventually perfect failure detector <>P.

Reproduces: the imperfect -> perfect mode switch under fairness, and
eventual accuracy: after the switch (plus buffer drain) every report is
exact.  Measures how many scheduler steps convergence takes as the
endpoint count grows.
"""

import pytest

from repro.ioa import Action, RoundRobinScheduler, fail, run
from repro.services import (
    MODE_SWITCH_TASK,
    PERFECT,
    EventuallyPerfectFailureDetector,
    suspicions_in_trace,
)


def run_until_stable(endpoints, steps):
    detector = EventuallyPerfectFailureDetector(
        "evP",
        endpoints=tuple(range(endpoints)),
        resilience=endpoints - 1,
        # Bound the imperfect-mode nondeterminism to worst-case lies.
        arbitrary_suspicions=[frozenset(range(endpoints))],
    )
    execution = run(
        detector,
        RoundRobinScheduler(),
        max_steps=steps,
        inputs=[(5, fail(endpoints - 1))],
    )
    return detector, execution


@pytest.mark.parametrize("endpoints", [2, 4, 8])
def test_convergence(benchmark, endpoints):
    detector, execution = benchmark(run_until_stable, endpoints, endpoints * 40)
    # The mode switch happened (fairness).
    switch_index = next(
        i
        for i, step in enumerate(execution.steps)
        if step.action == Action("compute", ("evP", MODE_SWITCH_TASK))
    )
    assert execution.steps[switch_index].post.val == PERFECT
    # Eventual accuracy: the final report at a live endpoint is exact.
    reports = suspicions_in_trace(execution.actions, 0, "evP")
    assert reports and reports[-1] == frozenset({endpoints - 1})
    # The detector really was imperfect before converging.
    assert frozenset(range(endpoints)) in reports


def test_steps_to_first_accurate_report(benchmark):
    """Convergence latency: steps until the first post-switch report."""

    def measure():
        detector, execution = run_until_stable(4, 200)
        switched = False
        for index, step in enumerate(execution.steps):
            if step.action == Action("compute", ("evP", MODE_SWITCH_TASK)):
                switched = True
            if (
                switched
                and step.action.kind == "compute"
                and step.action.args[1] in range(4)
            ):
                return index
        raise AssertionError("no post-switch report generated")

    latency = benchmark(measure)
    assert latency > 0
