"""E13 (Section 6.3): boosting failure detectors via connectivity.

Reproduces the two-stage construction: (a) the boosted wait-free
n-process perfect detector assembled from 1-resilient 2-process
detectors and suspicion registers — accuracy and completeness latency;
(b) consensus for ANY number of failures on top of pairwise detectors,
swept over failure counts.
"""

import pytest

from repro.analysis import run_consensus_round
from repro.ioa import RoundRobinScheduler, run
from repro.protocols import (
    boosted_fd_system,
    boosted_reports,
    consensus_via_pairwise_fds_system,
)
from repro.system import FailureSchedule, upfront_failures


def detect_failure(n, victim, steps):
    """Run the boosted detector until the victim's crash propagates."""
    system = boosted_fd_system(n)
    execution = run(
        system,
        RoundRobinScheduler(),
        max_steps=steps,
        inputs=FailureSchedule(((20, victim),)).as_inputs(),
    )
    return execution


@pytest.mark.parametrize("n", [2, 3, 4])
def test_boosted_detector_completeness(benchmark, n):
    execution = benchmark(detect_failure, n, n - 1, 2500 * n)
    for observer in range(n - 1):
        reports = boosted_reports(execution, observer)
        assert reports, f"no reports at {observer}"
        assert reports[-1] == frozenset({n - 1})


@pytest.mark.parametrize("n", [3, 4])
def test_boosted_detector_accuracy(benchmark, n):
    execution = benchmark(detect_failure, n, 0, 1500 * n)
    failed = set()
    for step in execution.steps:
        if step.action.kind == "fail":
            failed.add(step.action.args[0])
        if step.action.kind == "respond" and step.action.args[0] == "boostedP":
            assert step.action.args[2][1] <= failed


def consensus_round(n, failures):
    victims = list(range(failures))
    return run_consensus_round(
        consensus_via_pairwise_fds_system(n),
        {i: i % 2 for i in range(n)},
        failure_schedule=upfront_failures(victims),
        max_steps=300_000,
    )


@pytest.mark.parametrize("failures", [0, 1, 2])
def test_consensus_any_f_n3(benchmark, failures):
    """The boosted stack solves consensus with f = 0, 1, 2 of 3 failed —
    beyond any fixed resilience the component detectors have."""
    check = benchmark(consensus_round, 3, failures)
    assert check.ok, check.violations


def test_consensus_three_of_four_failed(benchmark):
    check = benchmark(consensus_round, 4, 3)
    assert check.ok, check.violations
    assert 3 in check.decisions
