"""E11 (Theorem 10): no boosting with all-connected failure-aware services.

Reproduces both halves of the Section 6.3 story:

* the impossibility — one f-resilient perfect failure detector connected
  to ALL processes: f + 1 failures silence it, and the rotating-
  coordinator candidate blocks forever (exact fair-cycle witness);
* the necessity of the connectivity hypothesis — replace the shared
  detector by per-pair 1-resilient detectors and the very same attack
  fails: the survivors decide.
"""

import pytest

from repro.analysis import liveness_attack
from repro.protocols import (
    consensus_via_pairwise_fds_system,
    consensus_with_shared_fd_system,
)


@pytest.mark.parametrize("n,f", [(3, 0), (3, 1), (4, 1), (4, 2)])
def test_shared_detector_attack(benchmark, n, f):
    assert f < n - 1
    system = consensus_with_shared_fd_system(n, fd_resilience=f)
    root = system.initialization({i: i % 2 for i in range(n)}).final_state
    violation = benchmark(
        liveness_attack,
        system,
        root,
        list(range(f + 1)),
        300_000,
        ["P"],
    )
    assert violation is not None
    assert violation.exact
    assert violation.survivors == frozenset(range(f + 1, n))


@pytest.mark.parametrize("n", [3, 4])
def test_connectivity_hypothesis_is_necessary(benchmark, n):
    """Same attack, pairwise detectors: the survivors decide."""
    system = consensus_via_pairwise_fds_system(n)
    root = system.initialization({i: i % 2 for i in range(n)}).final_state
    violation = benchmark(
        liveness_attack, system, root, list(range(n - 1)), 300_000
    )
    assert violation is None


def test_wait_free_shared_detector_survives(benchmark):
    """Tightness in f: a wait-free shared detector is out of scope."""
    system = consensus_with_shared_fd_system(3, fd_resilience=2)
    root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
    violation = benchmark(
        liveness_attack, system, root, [0, 1], 300_000, ["P"]
    )
    # The detector cannot be silenced (wait-free), but the attack's
    # silencing rule still tries: survivors must nevertheless decide.
    assert violation is None
