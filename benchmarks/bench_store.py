"""E-store: disk-backed StateStore backends vs the in-RAM engine.

Two evidence tables, both appended to ``BENCH_engine.json``:

* **backend comparison** — one instance explored through every
  :class:`repro.engine.StateStore` backend (``memory``/``sqlite``/
  ``mmap``) plus the classic in-RAM engine, workers=1.  Every run must
  reproduce the *identical* graph (state discovery order and edge dict —
  the store's documented guarantee); rows record states/sec, peak RSS,
  flush count/seconds and spilled frontier digests, so the price of
  durability is a number, not a vibe.

* **acceptance scale** (``REPRO_BENCH_FULL=1``) — ``tob(5, 1)`` scanned
  through the sqlite backend past 10^6 discovered states under an
  *enforced* 1.5 GB ceiling (``RLIMIT_AS`` in the child process: if the
  run exceeds the ceiling it dies, it does not quietly get measured).
  The run is SIGKILLed mid-flight and resumed from its streaming delta
  segments, so the row is simultaneously the scale, memory-ceiling, and
  kill-and-resume acceptance evidence.

Instance selection: the comparison uses ``delegation_consensus_system
(6, 1)`` (~29k states, seconds per backend).  The scale run is minutes
long and therefore gated behind ``REPRO_BENCH_FULL=1`` like the other
full-size configurations.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from time import perf_counter

import pytest
from conftest import report

from repro.analysis import DeterministicSystemView
from repro.engine import Budget, ExplorationEngine
from repro.protocols import delegation_consensus_system, tob_delegation_system

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
BACKENDS = ("memory", "sqlite", "mmap")
RSS_LIMIT_MB = 1536
SCALE_TARGET_STATES = 1_000_000
SCALE_BUDGET = 1_050_000
KILL_AT_EXPANSIONS = 150_000


def _instance():
    system = delegation_consensus_system(6, resilience=1)
    proposals = {
        endpoint: index % 2 for index, endpoint in enumerate(system.process_ids)
    }
    view = DeterministicSystemView(system)
    root = system.initialization(proposals).final_state
    return "delegation(n=6, f=1)", view, root


def _store_uri(backend, tmp_path):
    if backend == "memory":
        return "memory"
    # flush=10000 so the instance crosses several durable-flush
    # boundaries and the flush columns measure real work.
    return f"{backend}:{tmp_path / backend}?flush=10000"


def test_backend_comparison(tmp_path):
    label, view, root = _instance()
    budget = Budget(max_states=2_000_000)

    start = perf_counter()
    classic = ExplorationEngine(workers=1, budget=budget).explore(view, root)
    classic_seconds = perf_counter() - start
    states = len(classic.states)

    def row(backend, seconds, engine_report):
        return {
            "backend": backend,
            "states": states,
            "seconds": round(seconds, 3),
            "states_per_sec": round(states / seconds, 1),
            "peak_rss_kb": engine_report.peak_rss_kb,
            "flushes": engine_report.store_flushes,
            "flush_seconds": round(engine_report.store_flush_seconds, 3),
            "spilled_states": engine_report.spilled_states,
        }

    engine = ExplorationEngine(workers=1, budget=budget)
    engine.explore(view, root)
    rows = [row("none (classic)", classic_seconds, engine.last_report)]

    for backend in BACKENDS:
        engine = ExplorationEngine(
            workers=1, budget=budget, store=_store_uri(backend, tmp_path)
        )
        start = perf_counter()
        graph = engine.explore(view, root)
        seconds = perf_counter() - start
        assert list(graph.states) == list(classic.states), backend
        assert graph.edges == classic.edges, backend
        rows.append(row(backend, seconds, engine.last_report))

    report(
        f"E-store: backend comparison {label} workers=1 (identical graph)",
        rows,
        artifact="BENCH_engine.json",
    )


SCALE_CHILD = textwrap.dedent(
    """
    import json, resource, signal, sys
    from time import perf_counter

    from repro.analysis import DeterministicSystemView
    from repro.engine import Budget, BudgetExhausted, ExplorationEngine
    from repro.protocols import tob_delegation_system

    mode, uri, checkpoint_dir, limit_mb = sys.argv[1:5]
    limit = int(limit_mb) * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    system = tob_delegation_system(5, resilience=1)
    proposals = {e: i % 2 for i, e in enumerate(system.process_ids)}
    view = DeterministicSystemView(system)
    root = system.initialization(proposals).final_state

    expanded = [0]
    def kill_switch(state):
        expanded[0] += 1
        if expanded[0] == KILL_AT:
            import os
            os.kill(os.getpid(), signal.SIGKILL)
        return False

    engine = ExplorationEngine(
        workers=1,
        budget=Budget(max_states=BUDGET),
        store=uri,
        checkpoint_dir=checkpoint_dir,
        resume=(mode == "resume"),
    )
    start = perf_counter()
    # The engine namespaces the store directory by root digest, so the
    # discovered-state count must come from the engine's own report
    # (a bare open_store(uri) readback would open an empty sibling dir).
    try:
        states = engine.scan(
            view, root, prune=kill_switch if mode == "kill" else None
        ).states
        exhausted = False
    except BudgetExhausted as error:
        states = error.states
        exhausted = True
    seconds = perf_counter() - start
    print(json.dumps({
        "states": states,
        "exhausted": exhausted,
        "seconds": round(seconds, 1),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }))
    """
).replace("KILL_AT", str(KILL_AT_EXPANSIONS)).replace("BUDGET", str(SCALE_BUDGET))


@pytest.mark.skipif(not FULL, reason="set REPRO_BENCH_FULL=1 for the scale run")
def test_scale_past_1e6_states_under_rss_ceiling(tmp_path):
    """tob(5,1) past 10^6 states, SIGKILL + resume, RLIMIT_AS-enforced."""
    uri = f"sqlite:{tmp_path / 'scale'}"
    checkpoint_dir = tmp_path / "ck"
    script = tmp_path / "child.py"
    script.write_text(SCALE_CHILD)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), *sys.path) if p
    )

    def run(mode):
        return subprocess.run(
            [
                sys.executable,
                str(script),
                mode,
                uri,
                str(checkpoint_dir),
                str(RSS_LIMIT_MB),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=1800,
        )

    killed = run("kill")
    assert killed.returncode == -signal.SIGKILL, killed.stderr

    resumed = run("resume")
    assert resumed.returncode == 0, resumed.stderr
    stats = json.loads(resumed.stdout.strip().splitlines()[-1])
    assert stats["states"] > SCALE_TARGET_STATES, stats
    assert stats["peak_rss_kb"] < RSS_LIMIT_MB * 1024, stats

    report(
        "E-store: tob(n=5, f=1) sqlite scan past 10^6 states, "
        f"SIGKILL at {KILL_AT_EXPANSIONS} expansions + segment resume, "
        f"RLIMIT_AS={RSS_LIMIT_MB}MB",
        [
            {
                "backend": "sqlite",
                "states": stats["states"],
                "resume_seconds": stats["seconds"],
                "states_per_sec": round(stats["states"] / stats["seconds"], 1),
                "peak_rss_kb": stats["peak_rss_kb"],
                "rss_limit_mb": RSS_LIMIT_MB,
                "killed_at_expansions": KILL_AT_EXPANSIONS,
                "resumed": True,
            }
        ],
        artifact="BENCH_engine.json",
    )
