"""E10 (Theorem 9): no boosting with failure-oblivious services.

Reproduces: the pipeline extends beyond atomic objects — the totally
ordered broadcast delegation candidate (the canonical failure-oblivious
example) is refuted the same way, through the same hook and similarity
stages, with the g-compute tasks participating in the analysis.
"""

import pytest

from repro.analysis import TerminationViolation, liveness_attack, refute_candidate
from repro.protocols import tob_delegation_system


@pytest.mark.parametrize("n,f", [(2, 0), (3, 1)])
def test_full_pipeline_refutes_tob_delegation(benchmark, n, f):
    verdict = benchmark(
        refute_candidate, tob_delegation_system(n, resilience=f), None, 900_000
    )
    assert verdict.refuted
    assert isinstance(verdict.refutation, TerminationViolation)
    assert len(verdict.refutation.victims) == f + 1
    # The similarity violation names the oblivious service (Lemma 7 path).
    assert verdict.lemma8.violation.index == "tob"


def test_direct_attack_silences_broadcast(benchmark):
    system = tob_delegation_system(3, resilience=1)
    root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
    violation = benchmark(liveness_attack, system, root, [0, 1], 100_000)
    assert violation is not None
    assert violation.exact
    assert violation.survivors == frozenset({2})


def test_within_resilience_broadcast_still_lives(benchmark):
    """Tightness: with only f failures the candidate still decides."""
    system = tob_delegation_system(3, resilience=1)
    root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
    violation = benchmark(liveness_attack, system, root, [0], 100_000)
    assert violation is None
