"""E19 (registers' positive frontier): wait-free atomic snapshot.

Registers cannot give consensus (the FLP instance of Theorem 2) but CAN
give atomic snapshot — the classic Afek et al. construction, built from
the library's canonical registers and verified linearizable.  Measures
scan/update cost as the process count grows.
"""

import pytest

from repro.analysis import trace_is_linearizable
from repro.ioa import RoundRobinScheduler, run
from repro.protocols.snapshot import (
    SNAPSHOT_ID,
    snapshot_system,
    snapshot_trace,
    snapshot_type,
)


def run_snapshot(scripts, steps):
    system = snapshot_system(scripts)
    execution = run(system, RoundRobinScheduler(), max_steps=steps)
    return snapshot_trace(execution)


@pytest.mark.parametrize("n", [2, 3, 4])
def test_update_then_scan_everyone(benchmark, n):
    scripts = {i: [("update", i + 1), ("scan",)] for i in range(n)}
    trace = benchmark(run_snapshot, scripts, 4000 * n)
    responses = [a for a in trace if a.kind == "respond"]
    assert len(responses) == 2 * n
    stype = snapshot_type(tuple(range(n)), values=tuple(range(1, n + 1)), initial=0)
    assert trace_is_linearizable(trace, SNAPSHOT_ID, stype)


def test_scan_under_concurrent_updates(benchmark):
    scripts = {
        0: [("scan",), ("scan",)],
        1: [("update", 1), ("update", 2)],
        2: [("update", 3)],
    }
    trace = benchmark(run_snapshot, scripts, 15_000)
    views = [
        a.args[2][1]
        for a in trace
        if a.kind == "respond" and a.args[2][0] == "view"
    ]
    assert len(views) == 2
    stype = snapshot_type((0, 1, 2), values=(1, 2, 3), initial=0)
    assert trace_is_linearizable(trace, SNAPSHOT_ID, stype)
