"""E5 (Fig. 8): the canonical general (failure-aware) service.

Reproduces: delta1/delta2 instantiated with the failed set (the only
code difference from Fig. 4) and the Section 6.1 claim that
failure-oblivious services embed as general services with identical
behavior.
"""

import pytest

from repro.ioa import Task, fail, invoke
from repro.services import (
    CanonicalGeneralService,
    TotallyOrderedBroadcast,
    oblivious_service_as_general,
)
from repro.types import GeneralServiceType, single_response


def make_failure_mirror(endpoints):
    """perform reports the exact failed set back to the invoker."""

    def delta1(invocation, endpoint, value, failed):
        return ((single_response(endpoint, ("mirror", frozenset(failed))), value),)

    def delta2(global_task, value, failed):
        return (({}, value),)

    from itertools import chain, combinations

    subsets = [
        frozenset(c)
        for c in chain.from_iterable(
            combinations(endpoints, size) for size in range(len(endpoints) + 1)
        )
    ]
    service_type = GeneralServiceType(
        name="mirror",
        initial_values=(0,),
        invocations=(("probe",),),
        responses=tuple(("mirror", s) for s in subsets),
        global_tasks=(),
        delta1=delta1,
        delta2=delta2,
    )
    return CanonicalGeneralService(
        service_type, endpoints, resilience=len(endpoints) - 1, service_id="mir"
    )


def probe_after_failures(service, victims):
    state = service.some_start_state()
    for victim in victims:
        state = service.apply_input(state, fail(victim))
    state = service.apply_input(state, invoke("mir", 0, ("probe",)))
    return service.enabled(state, Task(service.name, ("perform", 0)))[0].post


@pytest.mark.parametrize("failures", [0, 1, 3])
def test_failure_aware_perform(benchmark, failures):
    endpoints = tuple(range(5))
    service = make_failure_mirror(endpoints)
    victims = endpoints[1 : 1 + failures]
    state = benchmark(probe_after_failures, service, victims)
    # The response mirrors exactly the failed set: failure-awareness.
    assert service.resp_buffer(state, 0) == (("mirror", frozenset(victims)),)


def test_oblivious_embeds_as_general(benchmark):
    """Section 6.1 embedding: TO broadcast through the Fig. 8 code path."""
    tob = TotallyOrderedBroadcast(
        service_id="tob", endpoints=(0, 1, 2), messages=("m",), resilience=1
    )
    general = oblivious_service_as_general(
        tob.service_type, (0, 1, 2), 1, service_id="tob"
    )

    def full_broadcast(service):
        state = service.apply_input(
            service.some_start_state(), invoke("tob", 0, ("bcast", "m"))
        )
        state = service.enabled(state, Task(service.name, ("perform", 0)))[0].post
        return service.enabled(state, Task(service.name, ("compute", "g")))[0].post

    direct = full_broadcast(tob)
    embedded = benchmark(full_broadcast, general)
    assert direct.val == embedded.val
    assert direct.resp_buffers == embedded.resp_buffers
