"""Ablation benches for the analysis-layer design choices.

DESIGN.md calls out three implementation decisions in the proof
machinery; each is ablated here against its naive alternative:

* **A1 — bivalence-restricted inner search** (Fig. 3): the inner BFS
  walks only bivalent states (sound because predecessors of bivalent
  states are bivalent) instead of the full e-free reachable set;
* **A2 — decision-set worklist fixpoint**: reachable decision values are
  computed once by backward propagation, versus a fresh forward DFS per
  state;
* **A3 — memoized step cache** in the deterministic view: `transition(e,
  s)` is computed once per (state, task) pair, versus recomputed on
  every visit.

Each ablation asserts the two variants agree, so these double as
differential tests of the optimized paths.
"""

from collections import deque

import pytest

from repro.analysis import (
    DeterministicSystemView,
    analyze_valence,
    explore,
    find_hook,
    reachable_decision_sets,
)
from repro.analysis.hook import Hook
from repro.protocols import delegation_consensus_system
from repro.engine import Budget


def prepared(n=3, f=1):
    system = delegation_consensus_system(n, resilience=f)
    root = system.initialization({i: i % 2 for i in range(n)}).final_state
    analysis = analyze_valence(system, root, budget=Budget(max_states=600_000))
    return system, root, analysis


# ---------------------------------------------------------------------------
# A1: bivalence-restricted vs unrestricted inner BFS
# ---------------------------------------------------------------------------


def unrestricted_e_free_search(analysis, start, e):
    """The naive Fig. 3 inner search: all e-free paths, any valence."""
    view = analysis.view
    expansions = 0
    seen = {start}
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        expansions += 1
        step = view.step(state, e)
        if step is not None and analysis.is_bivalent(step[1]):
            return state, expansions
        for task, _, successor in analysis.graph.successors(state):
            if task == e or successor in seen:
                continue
            seen.add(successor)
            frontier.append(successor)
    return None, expansions


def test_a1_restricted_inner_search(benchmark):
    from repro.analysis.hook import _bivalent_e_free_search

    system, root, analysis = prepared()
    e = analysis.view.applicable_tasks(root)[0]
    found, _, expansions = benchmark(_bivalent_e_free_search, analysis, root, e)
    # Differential check against the unrestricted variant.
    naive_found, naive_expansions = unrestricted_e_free_search(analysis, root, e)
    assert (found is None) == (naive_found is None)
    assert expansions <= naive_expansions


def test_a1_unrestricted_inner_search(benchmark):
    system, root, analysis = prepared()
    e = analysis.view.applicable_tasks(root)[0]
    benchmark(unrestricted_e_free_search, analysis, root, e)


# ---------------------------------------------------------------------------
# A2: decision-set fixpoint vs per-state forward DFS
# ---------------------------------------------------------------------------


def naive_decision_sets(graph, view):
    """Recompute reachable decisions per state by a fresh forward BFS."""
    result = {}
    for origin in graph.states:
        seen = {origin}
        frontier = deque([origin])
        decisions = frozenset()
        while frontier:
            state = frontier.popleft()
            decisions |= view.decision_values(state)
            for _, _, successor in graph.successors(state):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        result[origin] = decisions
    return result


def test_a2_worklist_fixpoint(benchmark):
    system, root, analysis = prepared(n=2, f=0)
    result = benchmark(reachable_decision_sets, analysis.graph, analysis.view)
    assert result == naive_decision_sets(analysis.graph, analysis.view)


def test_a2_naive_per_state_bfs(benchmark):
    system, root, analysis = prepared(n=2, f=0)
    benchmark(naive_decision_sets, analysis.graph, analysis.view)


# ---------------------------------------------------------------------------
# A3: memoized vs uncached deterministic view
# ---------------------------------------------------------------------------


class UncachedView(DeterministicSystemView):
    """The deterministic view with the (state, task) memo disabled."""

    def step(self, state, task):
        transitions = self.system.enabled(state, task)
        if len(transitions) > 1:
            raise RuntimeError("nondeterminism")
        if not transitions:
            return None
        return (transitions[0].action, transitions[0].post)


@pytest.mark.parametrize("view_class", [DeterministicSystemView, UncachedView])
def test_a3_exploration_with_and_without_cache(benchmark, view_class):
    system = delegation_consensus_system(3, resilience=1)
    root = system.initialization({0: 0, 1: 1, 2: 0}).final_state

    def run_exploration():
        view = view_class(system)
        graph = explore(view, root, budget=Budget(max_states=600_000))
        return len(graph)

    states = benchmark(run_exploration)
    assert states > 100
