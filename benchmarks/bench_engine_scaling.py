"""E-engine: parallel exploration scaling of repro.engine.

Times :class:`repro.engine.ExplorationEngine` at 1, 2, and 4 workers
against the sequential :func:`repro.analysis.explore` baseline on one
instance, verifies every run reproduces the identical graph (same states
in the same discovery order, same edge count — the engine's documented
guarantee), and appends ``{workers, seconds, speedup, peak_rss_kb}``
rows to ``BENCH_engine.json``.

Instance selection: the default is ``delegation_consensus_system(6, 1)``
(~29k states, seconds per run).  Set ``REPRO_BENCH_FULL=1`` to run
``tob_delegation_system(4, 1)`` (~359k states / 2.9M transitions, the
>=100k-state configuration the committed artifact records; minutes per
run).

Speedup honesty: frontier-partitioned BFS cannot beat the sequential
baseline without real cores — on a single-CPU container the worker
processes time-slice one core and IPC overhead makes parallel runs
*slower*.  The artifact therefore always records ``os.cpu_count()``
alongside the measurements, and the speedup assertion at 4 workers is
applied only when at least 4 CPUs are actually available (the bench
prints an explicit ``SKIPPED (cpu_count < 4)`` marker and records it in
the artifact when gated off).  Each worker row records the engine's
per-phase breakdown (expand vs fingerprint vs serialize/IPC vs merge
seconds; every phase column is present at every worker count, 0.0 when
a phase did not run) so an overhead regression is visible in the
artifact, not just in the bottom line.

Memory honesty: ``RUSAGE_CHILDREN`` only folds in *reaped* children, so
the old self+children number was identical at 2 and 4 workers (the pool
was still alive at sample time).  Rows now record the coordinator's own
peak plus the per-worker peaks each worker self-reports over the reply
pipe (``EngineReport.worker_rss_kb``).

The codec's component-encode cache is the sequential hot path's win:
the bench asserts its hit rate stays >= 0.5 (expanding a transition
changes one or two components of a composite state, so re-encodes
should be rare).

``test_reduction_ratio`` times the same instance through the symmetry +
POR :class:`~repro.engine.reduction.ReducedView` and asserts the
committed reduction targets: >= 3x fewer explored states always, and
>= 3x lower sequential wall clock on the full-size instance.  It also
records a combined reduction+parallelism row — the reduced view driven
by the parallel engine — since the two optimizations compose and their
product is the number users actually experience.
"""

import gc
import os
import resource
from time import perf_counter

from conftest import report

from repro.analysis import DeterministicSystemView, explore
from repro.engine import Budget, ExplorationEngine, ReductionConfig, build_reduced_view
from repro.obs import MetricsRegistry
from repro.protocols import delegation_consensus_system, tob_delegation_system

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 2.0
SPEEDUP_MIN_CPUS = 4
STATE_RATIO_TARGET = 3.0
TIME_RATIO_TARGET = 3.0
PHASES = ("expand_seconds", "fingerprint_seconds", "serialize_seconds", "merge_seconds")
CACHE_HIT_RATE_FLOOR = 0.5


def _instance():
    if FULL:
        system = tob_delegation_system(4, resilience=1)
        label = "tob(n=4, f=1)"
    else:
        system = delegation_consensus_system(6, resilience=1)
        label = "delegation(n=6, f=1)"
    proposals = {
        endpoint: index % 2 for index, endpoint in enumerate(system.process_ids)
    }
    root = system.initialization(proposals).final_state
    return system, root, label


def _peak_rss_kb(engine_report=None) -> int:
    """Peak resident set in KiB: coordinator + live per-worker peaks.

    ``RUSAGE_CHILDREN`` only covers children already reaped, which made
    the old number blind to the pool actually being measured; workers
    now self-report their peaks over the reply pipe instead.
    """
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    worker_kb = sum(engine_report.worker_rss_kb) if engine_report is not None else 0
    return self_kb + worker_kb


def test_engine_scaling_and_equivalence():
    system, root, label = _instance()
    budget = Budget(max_states=2_000_000)

    # Every contender gets a FRESH view: exploration cost is dominated by
    # first-touch transition computation (the view memoizes steps), and a
    # shared warm cache — inherited by forked workers too — would turn
    # the benchmark into a measure of pure IPC overhead rather than of
    # the engine's actual use case, the first exploration of a space.
    started = perf_counter()
    baseline = explore(
        DeterministicSystemView(system), root, budget=Budget(max_states=budget.max_states)
    )
    baseline_seconds = perf_counter() - started
    baseline_order = list(baseline.states)
    baseline_edge_count = baseline.edge_count()
    del baseline  # keep only the order list; each run builds its own graph

    rows = [
        {
            "instance": label,
            "states": len(baseline_order),
            "transitions": baseline_edge_count,
            "cpu_count": os.cpu_count(),
            "baseline_explore_s": round(baseline_seconds, 3),
        }
    ]
    speedups = {}
    cache_rates = {}
    for workers in WORKER_COUNTS:
        # fingerprints=True forces the FingerprintIndex path at workers=1
        # too ("auto" would use full-state keys there), so the sequential
        # hot path exercises the codec's component cache and the hit-rate
        # assertion below is meaningful at every worker count.
        engine = ExplorationEngine(workers=workers, budget=budget, fingerprints=True)
        metrics = MetricsRegistry()
        gc.collect()
        started = perf_counter()
        graph = engine.explore(DeterministicSystemView(system), root, metrics=metrics)
        seconds = perf_counter() - started
        assert list(graph.states) == baseline_order, (
            f"workers={workers} produced a different graph"
        )
        assert graph.edge_count() == baseline_edge_count
        del graph
        speedups[workers] = baseline_seconds / seconds if seconds else 0.0
        counters = metrics.snapshot()["counters"]
        cache_hits = counters.get("engine.codec.cache_hits", 0)
        cache_misses = counters.get("engine.codec.cache_misses", 0)
        cache_rate = (
            cache_hits / (cache_hits + cache_misses)
            if cache_hits + cache_misses
            else 0.0
        )
        cache_rates[workers] = cache_rate
        rows.append(
            {
                "workers": workers,
                "seconds": round(seconds, 3),
                "speedup_vs_sequential": round(speedups[workers], 3),
                "peak_rss_kb": _peak_rss_kb(engine.last_report),
                "worker_rss_kb": list(engine.last_report.worker_rss_kb),
                "codec_cache_hit_rate": round(cache_rate, 4),
                # Every phase column at every worker count (0.0 when the
                # phase did not run), so artifact rows stay comparable.
                **{
                    phase: round(counters.get(f"engine.phase.{phase}", 0.0), 3)
                    for phase in PHASES
                },
            }
        )

    cpus = os.cpu_count() or 1
    if cpus < SPEEDUP_MIN_CPUS:
        marker = f"SKIPPED (cpu_count < {SPEEDUP_MIN_CPUS})"
        print(f"{marker}: speedup assertion needs {SPEEDUP_MIN_CPUS} CPUs, have {cpus}")
        rows.append({"speedup_assert": marker, "cpu_count": cpus})
    report("engine scaling" + (" (full)" if FULL else ""), rows,
           artifact="BENCH_engine.json")

    for workers, rate in cache_rates.items():
        assert rate >= CACHE_HIT_RATE_FLOOR, (
            f"codec component-cache hit rate {rate:.3f} at workers={workers} "
            f"is below {CACHE_HIT_RATE_FLOOR} — the packed hot path is "
            "re-encoding components it should be reusing"
        )
    if cpus >= SPEEDUP_MIN_CPUS:
        assert speedups[4] >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x at 4 workers on {cpus} CPUs, "
            f"got {speedups[4]:.2f}x"
        )


def test_reduction_ratio():
    """Symmetry + POR shrink the explored graph by the committed ratios."""
    system, root, label = _instance()
    budget = Budget(max_states=2_000_000)
    config = ReductionConfig.from_name("full")

    started = perf_counter()
    full_graph = explore(
        DeterministicSystemView(system), root, budget=Budget(max_states=budget.max_states)
    )
    full_seconds = perf_counter() - started
    full_states = len(full_graph.states)
    full_transitions = full_graph.edge_count()
    del full_graph

    reduced_view = build_reduced_view(DeterministicSystemView(system), root, config)
    gc.collect()
    started = perf_counter()
    reduced_graph = explore(reduced_view, root, budget=Budget(max_states=budget.max_states))
    reduced_seconds = perf_counter() - started
    reduced_states = len(reduced_graph.states)
    reduced_transitions = reduced_graph.edge_count()
    del reduced_graph

    state_ratio = full_states / reduced_states
    time_ratio = full_seconds / reduced_seconds if reduced_seconds else 0.0
    canonicalizer = reduced_view.canonicalizer

    # Combined reduction + parallelism: the two optimizations compose —
    # symmetry/POR shrink the space, the worker pool splits what's left.
    # A fresh reduced view keeps the comparison honest (cold step cache).
    combined_workers = 2
    combined_view = build_reduced_view(DeterministicSystemView(system), root, config)
    engine = ExplorationEngine(workers=combined_workers, budget=budget)
    gc.collect()
    started = perf_counter()
    combined_graph = engine.explore(combined_view, root)
    combined_seconds = perf_counter() - started
    combined_states = len(combined_graph.states)
    assert combined_states == reduced_states, (
        "parallel exploration of the reduced view found a different graph"
    )
    assert combined_graph.edge_count() == reduced_transitions
    del combined_graph
    combined_time_ratio = full_seconds / combined_seconds if combined_seconds else 0.0

    report(
        "engine reduction" + (" (full)" if FULL else ""),
        [
            {
                "instance": label,
                "reduction": "symmetry+por",
                "full_states": full_states,
                "full_transitions": full_transitions,
                "full_seconds": round(full_seconds, 3),
                "reduced_states": reduced_states,
                "reduced_transitions": reduced_transitions,
                "reduced_seconds": round(reduced_seconds, 3),
                "state_ratio": round(state_ratio, 2),
                "time_ratio": round(time_ratio, 2),
                "group_size": canonicalizer.group_size,
                "stabilizer_size": canonicalizer.stabilizer_size,
                "orbit_hits": canonicalizer.orbit_hits,
                "pruned_tasks": reduced_view.pruned_tasks,
            },
            {
                "instance": label,
                "reduction": "symmetry+por",
                "workers": combined_workers,
                "combined_seconds": round(combined_seconds, 3),
                "combined_time_ratio_vs_full_sequential": round(
                    combined_time_ratio, 2
                ),
                "states": combined_states,
                "cpu_count": os.cpu_count(),
            },
        ],
        artifact="BENCH_engine.json",
    )
    assert state_ratio >= STATE_RATIO_TARGET, (
        f"expected >= {STATE_RATIO_TARGET}x fewer states under reduction, "
        f"got {state_ratio:.2f}x on {label}"
    )
    if FULL:
        # Wall-clock only on the committed >=100k-state instance; the
        # small default finishes in well under a second, where constant
        # overheads dominate and the ratio is noise.
        assert time_ratio >= TIME_RATIO_TARGET, (
            f"expected >= {TIME_RATIO_TARGET}x lower wall clock under "
            f"reduction, got {time_ratio:.2f}x on {label}"
        )
