"""E-engine: parallel exploration scaling of repro.engine.

Times :class:`repro.engine.ExplorationEngine` at 1, 2, and 4 workers
against the sequential :func:`repro.analysis.explore` baseline on one
instance, verifies every run reproduces the identical graph (same states
in the same discovery order, same edge count — the engine's documented
guarantee), and appends ``{workers, seconds, speedup, peak_rss_kb}``
rows to ``BENCH_engine.json``.

Instance selection: the default is ``delegation_consensus_system(6, 1)``
(~29k states, seconds per run).  Set ``REPRO_BENCH_FULL=1`` to run
``tob_delegation_system(4, 1)`` (~359k states / 2.9M transitions, the
>=100k-state configuration the committed artifact records; minutes per
run).

Speedup honesty: frontier-partitioned BFS cannot beat the sequential
baseline without real cores — on a single-CPU container the worker
processes time-slice one core and IPC overhead makes parallel runs
*slower*.  The artifact therefore always records ``os.cpu_count()``
alongside the measurements, and the >=2x speedup assertion at 4 workers
is applied only when at least 4 CPUs are actually available.
"""

import gc
import os
import resource
from time import perf_counter

from conftest import report

from repro.analysis import DeterministicSystemView, explore
from repro.engine import Budget, ExplorationEngine
from repro.protocols import delegation_consensus_system, tob_delegation_system

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 2.0
SPEEDUP_MIN_CPUS = 4


def _instance():
    if FULL:
        system = tob_delegation_system(4, resilience=1)
        label = "tob(n=4, f=1)"
    else:
        system = delegation_consensus_system(6, resilience=1)
        label = "delegation(n=6, f=1)"
    proposals = {
        endpoint: index % 2 for index, endpoint in enumerate(system.process_ids)
    }
    root = system.initialization(proposals).final_state
    return system, root, label


def _peak_rss_kb() -> int:
    """Peak resident set in KiB, self + reaped worker children."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return self_kb + children_kb


def test_engine_scaling_and_equivalence():
    system, root, label = _instance()
    budget = Budget(max_states=2_000_000)

    # Every contender gets a FRESH view: exploration cost is dominated by
    # first-touch transition computation (the view memoizes steps), and a
    # shared warm cache — inherited by forked workers too — would turn
    # the benchmark into a measure of pure IPC overhead rather than of
    # the engine's actual use case, the first exploration of a space.
    started = perf_counter()
    baseline = explore(
        DeterministicSystemView(system), root, max_states=budget.max_states
    )
    baseline_seconds = perf_counter() - started
    baseline_order = list(baseline.states)
    baseline_edge_count = baseline.edge_count()
    del baseline  # keep only the order list; each run builds its own graph

    rows = [
        {
            "instance": label,
            "states": len(baseline_order),
            "transitions": baseline_edge_count,
            "cpu_count": os.cpu_count(),
            "baseline_explore_s": round(baseline_seconds, 3),
        }
    ]
    speedups = {}
    for workers in WORKER_COUNTS:
        engine = ExplorationEngine(workers=workers, budget=budget)
        gc.collect()
        started = perf_counter()
        graph = engine.explore(DeterministicSystemView(system), root)
        seconds = perf_counter() - started
        assert list(graph.states) == baseline_order, (
            f"workers={workers} produced a different graph"
        )
        assert graph.edge_count() == baseline_edge_count
        del graph
        speedups[workers] = baseline_seconds / seconds if seconds else 0.0
        rows.append(
            {
                "workers": workers,
                "seconds": round(seconds, 3),
                "speedup_vs_sequential": round(speedups[workers], 3),
                "peak_rss_kb": _peak_rss_kb(),
            }
        )
    report("engine scaling" + (" (full)" if FULL else ""), rows,
           artifact="BENCH_engine.json")

    cpus = os.cpu_count() or 1
    if cpus >= SPEEDUP_MIN_CPUS:
        assert speedups[4] >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x at 4 workers on {cpus} CPUs, "
            f"got {speedups[4]:.2f}x"
        )
