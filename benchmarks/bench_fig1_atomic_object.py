"""E1 (Fig. 1): the canonical f-resilient atomic object.

Reproduces: the canonical atomic object automaton behaves per its
sequential type and its dummy-action resilience semantics; measures the
cost of a full invoke -> perform -> respond operation cycle at varying
endpoint counts.
"""

import pytest

from repro.ioa import Task, fail, invoke
from repro.services import CanonicalAtomicObject
from repro.types import binary_consensus_type, read_write_type


def operation_cycle(obj, endpoint, invocation):
    """One full operation: enqueue, perform, deliver."""
    state = obj.some_start_state()
    state = obj.apply_input(state, invoke(obj.service_id, endpoint, invocation))
    state = obj.enabled(state, Task(obj.name, ("perform", endpoint)))[0].post
    state = obj.enabled(state, Task(obj.name, ("output", endpoint)))[0].post
    return state


@pytest.mark.parametrize("endpoints", [2, 4, 8, 16])
def test_consensus_object_operation_cycle(benchmark, endpoints):
    obj = CanonicalAtomicObject(
        binary_consensus_type(),
        endpoints=tuple(range(endpoints)),
        resilience=endpoints // 2,
        service_id="cons",
    )
    state = benchmark(operation_cycle, obj, 0, ("init", 1))
    assert state.val == frozenset({1})
    assert obj.resp_buffer(state, 0) == ()


@pytest.mark.parametrize("endpoints", [2, 8])
def test_register_operation_cycle(benchmark, endpoints):
    obj = CanonicalAtomicObject(
        read_write_type(values=(0, 1, 2)),
        endpoints=tuple(range(endpoints)),
        resilience=endpoints - 1,
        service_id="reg",
    )
    state = benchmark(operation_cycle, obj, 1, ("write", 2))
    assert state.val == 2


def test_resilience_semantics_dummy_enablement(benchmark):
    """f-resilience per Fig. 1: dummies appear exactly past f failures."""
    obj = CanonicalAtomicObject(
        binary_consensus_type(),
        endpoints=tuple(range(6)),
        resilience=2,
        service_id="cons",
    )

    def fail_until_silent():
        state = obj.some_start_state()
        silent_at = None
        for count, victim in enumerate(range(6), start=1):
            state = obj.apply_input(state, fail(victim))
            dummy_everywhere = all(
                any(
                    t.action.kind == "dummy_perform"
                    for t in obj.enabled(state, Task(obj.name, ("perform", e)))
                )
                for e in range(6)
            )
            if dummy_everywhere and silent_at is None:
                silent_at = count
        return silent_at

    silent_at = benchmark(fail_until_silent)
    # Silence allowed exactly once failures exceed f = 2.
    assert silent_at == 3
