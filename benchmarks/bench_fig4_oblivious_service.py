"""E3 (Fig. 4): the canonical failure-oblivious service.

Reproduces: the failure-oblivious service semantics (endpoint-dependent
performs, multi-endpoint response maps, spontaneous computes) and the
Section 5.1 claim that the atomic object is a special case — the
embedded automaton pays only a small constant overhead over the direct
one.
"""

import pytest

from repro.ioa import Task, invoke
from repro.services import (
    CanonicalAtomicObject,
    atomic_object_as_oblivious_service,
)
from repro.types import (
    FailureObliviousServiceType,
    binary_consensus_type,
    broadcast_response,
)
from repro.services.oblivious import CanonicalFailureObliviousService


def make_fanout_service(endpoints):
    """perform echoes the invocation to every endpoint (response map)."""

    def delta1(invocation, endpoint, value):
        return ((broadcast_response(endpoints, ("echo", endpoint)), value + 1),)

    def delta2(global_task, value):
        return (({}, value),)

    service_type = FailureObliviousServiceType(
        name="fanout",
        initial_values=(0,),
        invocations=(("ping",),),
        responses=tuple(("echo", e) for e in endpoints),
        global_tasks=("g",),
        delta1=delta1,
        delta2=delta2,
    )
    return CanonicalFailureObliviousService(
        service_type, endpoints, resilience=1, service_id="fan"
    )


def perform_cycle(service, endpoint):
    state = service.apply_input(
        service.some_start_state(), invoke(service.service_id, endpoint, ("ping",))
    )
    return service.enabled(state, Task(service.name, ("perform", endpoint)))[0].post


@pytest.mark.parametrize("endpoints", [2, 8, 32])
def test_fanout_perform(benchmark, endpoints):
    service = make_fanout_service(tuple(range(endpoints)))
    state = benchmark(perform_cycle, service, 0)
    # One invocation produced a response at EVERY endpoint (impossible
    # for an atomic object).
    assert all(
        service.resp_buffer(state, e) == (("echo", 0),) for e in range(endpoints)
    )


def test_compute_step(benchmark):
    service = make_fanout_service((0, 1, 2))

    def compute():
        return service.enabled(
            service.some_start_state(), Task(service.name, ("compute", "g"))
        )[0].post

    state = benchmark(compute)
    assert state.val == 0  # the no-op delta2 branch


def atomic_cycle(obj):
    state = obj.apply_input(
        obj.some_start_state(), invoke(obj.service_id, 0, ("init", 1))
    )
    return obj.enabled(state, Task(obj.name, ("perform", 0)))[0].post


def test_direct_atomic_object(benchmark):
    obj = CanonicalAtomicObject(
        binary_consensus_type(), (0, 1, 2), 1, service_id="c", name="same"
    )
    state = benchmark(atomic_cycle, obj)
    assert state.val == frozenset({1})


def test_atomic_as_oblivious_special_case(benchmark):
    """Section 5.1 embedding: same behavior through the Fig. 4 code path."""
    obj = atomic_object_as_oblivious_service(
        binary_consensus_type(), (0, 1, 2), 1, service_id="c", name="same"
    )
    state = benchmark(atomic_cycle, obj)
    assert state.val == frozenset({1})
