"""Sequential types (Section 2.1.2).

A sequential type ``T = (V, V0, invs, resps, delta)`` specifies the
allowable sequential behavior of an atomic object:

* ``V``     — a nonempty set of values,
* ``V0``    — a nonempty set of initial values (``V0`` a subset of ``V``),
* ``invs``  — a set of invocations,
* ``resps`` — a set of responses,
* ``delta`` — a *total* binary relation from ``invs x V`` to
  ``resps x V``: for every ``(a, v)`` there is at least one ``(b, v')``
  with ``((a, v), (b, v')) in delta``.

The paper generalizes the classical definition by allowing
nondeterminism in the initial value and in ``delta``; this is what makes
``k``-set-consensus expressible as a sequential type.  ``T`` is
*deterministic* when ``V0`` is a singleton and ``delta`` is a mapping —
the assumption (ii) of Section 3.1, made without loss of generality for
the impossibility proofs.

Representation
--------------
``V`` and ``invs`` may be infinite (e.g. registers over unbounded value
sets), so ``delta`` is a callable ``(invocation, value) -> sequence of
(response, value')`` rather than a finite table, and invocation sets are
represented by an enumerable sample plus a membership test.  Values,
invocations, and responses must be hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

Value = Hashable
Invocation = Hashable
Response = Hashable
DeltaResult = tuple[Response, Value]


@dataclass(frozen=True)
class SequentialType:
    """A sequential type ``T = (V, V0, invs, resps, delta)``.

    ``delta`` maps ``(invocation, value)`` to the nonempty sequence of
    allowed ``(response, new_value)`` outcomes.  ``invocations`` is a
    finite sample of the invocation set used by enumerating analyses
    (exhaustive exploration, property generators); ``contains_invocation``
    decides full membership when the set is infinite.
    """

    name: str
    initial_values: tuple[Value, ...]
    invocations: tuple[Invocation, ...]
    responses: tuple[Response, ...]
    delta: Callable[[Invocation, Value], Sequence[DeltaResult]]
    contains_invocation: Callable[[Invocation], bool] | None = None

    def __post_init__(self) -> None:
        if not self.initial_values:
            raise ValueError(f"type {self.name!r}: V0 must be nonempty")

    # -- membership ----------------------------------------------------------

    def is_invocation(self, invocation: Invocation) -> bool:
        """True iff ``invocation`` belongs to ``invs``."""
        if self.contains_invocation is not None:
            return self.contains_invocation(invocation)
        return invocation in self.invocations

    # -- transition relation ---------------------------------------------------

    def apply(self, invocation: Invocation, value: Value) -> Sequence[DeltaResult]:
        """All ``(response, new_value)`` outcomes of ``delta`` — nonempty.

        Raises ``ValueError`` if ``delta`` is not total at this point,
        which would violate the definition of a sequential type.
        """
        outcomes = self.delta(invocation, value)
        if not outcomes:
            raise ValueError(
                f"type {self.name!r}: delta({invocation!r}, {value!r}) is "
                "empty — delta must be total"
            )
        return outcomes

    def apply_deterministic(self, invocation: Invocation, value: Value) -> DeltaResult:
        """The unique outcome of ``delta``; raises if nondeterministic."""
        outcomes = self.apply(invocation, value)
        if len(outcomes) != 1:
            raise ValueError(
                f"type {self.name!r}: delta({invocation!r}, {value!r}) has "
                f"{len(outcomes)} outcomes; type is not deterministic here"
            )
        return outcomes[0]

    # -- determinism (Section 2.1.2 / assumption (ii) of Section 3.1) ---------

    def is_deterministic(self, values: Iterable[Value] | None = None) -> bool:
        """Check determinism: singleton ``V0`` and functional ``delta``.

        ``delta`` is checked over ``values`` (default: the values
        reachable from ``V0`` by applying the sampled invocations up to a
        small depth).
        """
        if len(self.initial_values) != 1:
            return False
        if values is None:
            values = self.reachable_values(depth=3)
        for value in values:
            for invocation in self.invocations:
                if len(self.apply(invocation, value)) != 1:
                    return False
        return True

    def restrict_to_deterministic(
        self,
        choose: Callable[[Sequence[DeltaResult]], DeltaResult] | None = None,
    ) -> "SequentialType":
        """A deterministic restriction of this type (Section 3.1).

        The impossibility proofs assume deterministic sequential types
        without loss of generality, "because any candidate system could
        be restricted, by removing transitions, to satisfy these
        assumptions."  This constructor performs that restriction: it
        keeps the first initial value and, at every ``(invocation,
        value)`` point, keeps the single outcome selected by ``choose``
        (default: the first).
        """
        picker = choose if choose is not None else (lambda outcomes: outcomes[0])
        base_delta = self.delta

        def restricted(invocation: Invocation, value: Value) -> Sequence[DeltaResult]:
            outcomes = base_delta(invocation, value)
            if not outcomes:
                return outcomes
            return (picker(outcomes),)

        return SequentialType(
            name=f"{self.name}|det",
            initial_values=(self.initial_values[0],),
            invocations=self.invocations,
            responses=self.responses,
            delta=restricted,
            contains_invocation=self.contains_invocation,
        )

    # -- reachability ----------------------------------------------------------

    def reachable_values(self, depth: int = 4) -> frozenset[Value]:
        """Values reachable from ``V0`` by at most ``depth`` sampled invocations."""
        frontier = set(self.initial_values)
        seen = set(frontier)
        for _ in range(depth):
            next_frontier: set[Value] = set()
            for value in frontier:
                for invocation in self.invocations:
                    for _, new_value in self.apply(invocation, value):
                        if new_value not in seen:
                            seen.add(new_value)
                            next_frontier.add(new_value)
            if not next_frontier:
                break
            frontier = next_frontier
        return frozenset(seen)


def legal_response(
    sequential_type: SequentialType,
    invocation: Invocation,
    value: Value,
    response: Response,
) -> bool:
    """True iff ``response`` is allowed by ``delta`` at ``(invocation, value)``."""
    return any(
        outcome_response == response
        for outcome_response, _ in sequential_type.apply(invocation, value)
    )


def run_sequentially(
    sequential_type: SequentialType,
    invocations: Iterable[Invocation],
    initial_value: Value | None = None,
    choose: Callable[[Sequence[DeltaResult]], DeltaResult] | None = None,
) -> tuple[tuple[Response, ...], Value]:
    """Run a sequence of invocations through ``delta`` sequentially.

    Returns the response sequence and the final value.  Used by the
    linearizability checker to validate candidate linearizations.
    """
    value = (
        sequential_type.initial_values[0] if initial_value is None else initial_value
    )
    picker = choose if choose is not None else (lambda outcomes: outcomes[0])
    responses: list[Response] = []
    for invocation in invocations:
        response, value = picker(sequential_type.apply(invocation, value))
        responses.append(response)
    return tuple(responses), value
