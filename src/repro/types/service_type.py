"""Service types ``U`` for failure-oblivious and general services.

Section 5.1 replaces the sequential type of an atomic object with a
*service type* ``U = (V, V0, invs, resps, glob, delta1, delta2)``:

* ``glob`` is a set of *global task* names — tasks that perform
  computation touching invocations from, and responses to, several
  processes at once (e.g. the delivery task of totally ordered
  broadcast);
* ``delta1`` maps ``(invocation, endpoint, value)`` to results — used by
  ``perform`` steps;
* ``delta2`` maps ``(global_task, value)`` to results — used by
  spontaneous ``compute`` steps;
* a *result* is a pair ``(response_map, new_value)`` where the response
  map assigns to each endpoint a finite sequence of responses to append
  to its response buffer (``ResponseMap`` in the paper).

Section 6.1 generalizes further: for a *general* (potentially
failure-aware) service, ``delta1`` and ``delta2`` additionally receive
the current ``failed`` set — the only difference between the two classes,
and precisely the information a failure-oblivious service must not use.

This module defines both type classes and the two lifts the paper gives:

* :func:`from_sequential` — every sequential type induces a
  failure-oblivious service type (Section 5.1: the canonical atomic
  object is a special case of the canonical failure-oblivious service);
* :func:`oblivious_as_general` — every failure-oblivious service type
  induces a general service type that ignores the failed set
  (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, Mapping, Sequence

from .sequential import Invocation, Response, SequentialType, Value

Endpoint = Hashable
GlobalTaskName = Hashable

#: A response map assigns to each endpoint the finite sequence of
#: responses a step appends to that endpoint's response buffer.  Absent
#: endpoints mean the empty sequence.
ResponseMap = Mapping[Endpoint, Sequence[Response]]

#: One outcome of delta1/delta2.
ServiceResult = tuple[ResponseMap, Value]

EMPTY_RESPONSE_MAP: dict = {}


def single_response(endpoint: Endpoint, response: Response) -> ResponseMap:
    """A response map delivering one response to one endpoint."""
    return {endpoint: (response,)}


def broadcast_response(
    endpoints: Sequence[Endpoint], response: Response
) -> ResponseMap:
    """A response map delivering the same response to every endpoint."""
    return {endpoint: (response,) for endpoint in endpoints}


@dataclass(frozen=True)
class FailureObliviousServiceType:
    """Service type ``U`` for failure-oblivious services (Section 5.1).

    ``delta1(invocation, endpoint, value)`` and
    ``delta2(global_task, value)`` return nonempty sequences of
    ``(response_map, new_value)`` outcomes; both relations are total.
    ``global_tasks`` may be empty (the atomic-object special case).
    """

    name: str
    initial_values: tuple[Value, ...]
    invocations: tuple[Invocation, ...]
    responses: tuple[Response, ...]
    global_tasks: tuple[GlobalTaskName, ...]
    delta1: Callable[[Invocation, Endpoint, Value], Sequence[ServiceResult]]
    delta2: Callable[[GlobalTaskName, Value], Sequence[ServiceResult]]
    contains_invocation: Callable[[Invocation], bool] | None = None

    def is_invocation(self, invocation: Invocation) -> bool:
        """True iff ``invocation`` belongs to ``invs``."""
        if self.contains_invocation is not None:
            return self.contains_invocation(invocation)
        return invocation in self.invocations

    def apply_perform(
        self, invocation: Invocation, endpoint: Endpoint, value: Value
    ) -> Sequence[ServiceResult]:
        """All outcomes of ``delta1`` — must be nonempty (totality)."""
        outcomes = self.delta1(invocation, endpoint, value)
        if not outcomes:
            raise ValueError(
                f"service type {self.name!r}: delta1 empty at "
                f"({invocation!r}, {endpoint!r}, {value!r})"
            )
        return outcomes

    def apply_compute(
        self, global_task: GlobalTaskName, value: Value
    ) -> Sequence[ServiceResult]:
        """All outcomes of ``delta2`` — must be nonempty (totality)."""
        outcomes = self.delta2(global_task, value)
        if not outcomes:
            raise ValueError(
                f"service type {self.name!r}: delta2 empty at "
                f"({global_task!r}, {value!r})"
            )
        return outcomes


@dataclass(frozen=True)
class GeneralServiceType:
    """Service type ``U`` for general (failure-aware) services (Section 6.1).

    Identical to :class:`FailureObliviousServiceType` except that
    ``delta1`` and ``delta2`` receive the current ``failed`` set — the
    service may react to failures.
    """

    name: str
    initial_values: tuple[Value, ...]
    invocations: tuple[Invocation, ...]
    responses: tuple[Response, ...]
    global_tasks: tuple[GlobalTaskName, ...]
    delta1: Callable[
        [Invocation, Endpoint, Value, FrozenSet[Endpoint]], Sequence[ServiceResult]
    ]
    delta2: Callable[
        [GlobalTaskName, Value, FrozenSet[Endpoint]], Sequence[ServiceResult]
    ]
    contains_invocation: Callable[[Invocation], bool] | None = None

    def is_invocation(self, invocation: Invocation) -> bool:
        """True iff ``invocation`` belongs to ``invs``."""
        if self.contains_invocation is not None:
            return self.contains_invocation(invocation)
        return invocation in self.invocations

    def apply_perform(
        self,
        invocation: Invocation,
        endpoint: Endpoint,
        value: Value,
        failed: FrozenSet[Endpoint],
    ) -> Sequence[ServiceResult]:
        """All outcomes of ``delta1`` — must be nonempty (totality)."""
        outcomes = self.delta1(invocation, endpoint, value, failed)
        if not outcomes:
            raise ValueError(
                f"service type {self.name!r}: delta1 empty at "
                f"({invocation!r}, {endpoint!r}, {value!r}, {set(failed)!r})"
            )
        return outcomes

    def apply_compute(
        self,
        global_task: GlobalTaskName,
        value: Value,
        failed: FrozenSet[Endpoint],
    ) -> Sequence[ServiceResult]:
        """All outcomes of ``delta2`` — must be nonempty (totality)."""
        outcomes = self.delta2(global_task, value, failed)
        if not outcomes:
            raise ValueError(
                f"service type {self.name!r}: delta2 empty at "
                f"({global_task!r}, {value!r}, {set(failed)!r})"
            )
        return outcomes


def from_sequential(sequential: SequentialType) -> FailureObliviousServiceType:
    """The failure-oblivious service type induced by a sequential type.

    Section 5.1: for ``T = (V, V0, invs, resps, delta)``, the
    corresponding ``U`` has ``glob = {}``, empty ``delta2``, and
    ``delta1`` consisting of the pairs ``((a, i, v), (B, v'))`` for which
    some ``b`` satisfies ``((a, v), (b, v')) in delta``, ``B(i) = [b]``,
    and ``B(j) = []`` for ``j != i``.
    """

    def delta1(invocation, endpoint, value) -> Sequence[ServiceResult]:
        return tuple(
            (single_response(endpoint, response), new_value)
            for response, new_value in sequential.apply(invocation, value)
        )

    def delta2(global_task, value) -> Sequence[ServiceResult]:
        raise ValueError(
            f"service type from sequential type {sequential.name!r} has no "
            "global tasks"
        )

    return FailureObliviousServiceType(
        name=sequential.name,
        initial_values=sequential.initial_values,
        invocations=sequential.invocations,
        responses=sequential.responses,
        global_tasks=(),
        delta1=delta1,
        delta2=delta2,
        contains_invocation=sequential.contains_invocation,
    )


def oblivious_as_general(
    oblivious: FailureObliviousServiceType,
) -> GeneralServiceType:
    """The general service type that ignores the failed set (Section 6.1).

    ``delta1'((a, i, v, F)) = delta1((a, i, v))`` and
    ``delta2'((g, v, F)) = delta2((g, v))`` for every failed set ``F``.
    """

    def delta1(invocation, endpoint, value, failed) -> Sequence[ServiceResult]:
        return oblivious.apply_perform(invocation, endpoint, value)

    def delta2(global_task, value, failed) -> Sequence[ServiceResult]:
        return oblivious.apply_compute(global_task, value)

    return GeneralServiceType(
        name=oblivious.name,
        initial_values=oblivious.initial_values,
        invocations=oblivious.invocations,
        responses=oblivious.responses,
        global_tasks=oblivious.global_tasks,
        delta1=delta1,
        delta2=delta2,
        contains_invocation=oblivious.contains_invocation,
    )


def is_deterministic_service_type(
    service_type: FailureObliviousServiceType,
    endpoints: Sequence[Endpoint],
    values: Sequence[Value],
) -> bool:
    """Check assumption (ii) of Sections 5.3/6.3 over sampled values.

    A service type is deterministic when ``V0`` is a singleton and both
    ``delta1`` and ``delta2`` are single-valued over the sample.
    """
    if len(service_type.initial_values) != 1:
        return False
    for value in values:
        for invocation in service_type.invocations:
            for endpoint in endpoints:
                if len(service_type.apply_perform(invocation, endpoint, value)) != 1:
                    return False
        for global_task in service_type.global_tasks:
            if len(service_type.apply_compute(global_task, value)) != 1:
                return False
    return True
