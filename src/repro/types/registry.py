"""The standard sequential-type library.

This module builds the sequential types named by the paper:

* **read/write** (Section 2.1.2, first example) — the type of registers;
* **binary consensus** (Section 2.1.2, second example) — the benchmark
  problem of the impossibility theorems;
* **k-set-consensus** (Section 2.1.2, third example) — the
  nondeterministic type for which boosting *is* possible (Section 4);

plus the further classical types the paper's introduction lists as
examples of services ("atomic read-modify-write, queue, counter,
test&set, compare&swap and consensus objects"):

* **queue**, **counter**, **test&set**, **compare&swap**, **fetch&add**,
  and general **read-modify-write**.

Invocations and responses are represented as small hashable tuples, e.g.
``("write", 3)`` / ``("ack",)``, ``("init", 1)`` / ``("decide", 1)``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from .sequential import DeltaResult, SequentialType, Value

ACK = ("ack",)


# ---------------------------------------------------------------------------
# Read/write (registers)
# ---------------------------------------------------------------------------


def read_write_type(
    values: Sequence[Value], initial: Value | None = None
) -> SequentialType:
    """The read/write sequential type over a finite value sample.

    ``invs = {read} + {write(v)}``, ``resps = V + {ack}``;
    ``delta(read, v) = (v, v)`` and ``delta(write(v), v') = (ack, v)``.
    This is a deterministic sequential type.
    """
    values = tuple(values)
    if initial is None:
        initial = values[0]
    if initial not in values:
        raise ValueError("initial value must be among the values")

    def delta(invocation, value) -> Sequence[DeltaResult]:
        if invocation == ("read",):
            return ((("value", value), value),)
        if isinstance(invocation, tuple) and invocation[0] == "write":
            return ((ACK, invocation[1]),)
        raise ValueError(f"read/write: unknown invocation {invocation!r}")

    def member(invocation) -> bool:
        if invocation == ("read",):
            return True
        return (
            isinstance(invocation, tuple)
            and len(invocation) == 2
            and invocation[0] == "write"
        )

    return SequentialType(
        name="read/write",
        initial_values=(initial,),
        invocations=(("read",),) + tuple(("write", v) for v in values),
        responses=tuple(("value", v) for v in values) + (ACK,),
        delta=delta,
        contains_invocation=member,
    )


# ---------------------------------------------------------------------------
# Binary consensus
# ---------------------------------------------------------------------------


def binary_consensus_type() -> SequentialType:
    """The binary consensus sequential type (Section 2.1.2).

    ``V = {frozenset(), frozenset({0}), frozenset({1})}``, ``V0 = {{}}``;
    ``delta(init(v), {}) = (decide(v), {v})`` and
    ``delta(init(v), {v'}) = (decide(v'), {v'})``: the first value sticks
    and every operation returns it.  Deterministic.
    """

    def delta(invocation, value) -> Sequence[DeltaResult]:
        if not (isinstance(invocation, tuple) and invocation[0] == "init"):
            raise ValueError(f"consensus: unknown invocation {invocation!r}")
        proposal = invocation[1]
        if proposal not in (0, 1):
            raise ValueError(f"consensus: proposal must be binary, got {proposal!r}")
        if value == frozenset():
            return ((("decide", proposal), frozenset({proposal})),)
        (winner,) = value
        return ((("decide", winner), value),)

    return SequentialType(
        name="binary-consensus",
        initial_values=(frozenset(),),
        invocations=(("init", 0), ("init", 1)),
        responses=(("decide", 0), ("decide", 1)),
        delta=delta,
    )


def consensus_type(values: Sequence[Value]) -> SequentialType:
    """Multivalued consensus over an arbitrary finite proposal set.

    Same first-value-wins semantics as :func:`binary_consensus_type`;
    used by the Section 4 construction, whose inner services decide over
    ``{0, ..., n-1}``.
    """
    values = tuple(values)

    def delta(invocation, value) -> Sequence[DeltaResult]:
        if not (isinstance(invocation, tuple) and invocation[0] == "init"):
            raise ValueError(f"consensus: unknown invocation {invocation!r}")
        proposal = invocation[1]
        if value == frozenset():
            return ((("decide", proposal), frozenset({proposal})),)
        (winner,) = value
        return ((("decide", winner), value),)

    return SequentialType(
        name=f"consensus({len(values)})",
        initial_values=(frozenset(),),
        invocations=tuple(("init", v) for v in values),
        responses=tuple(("decide", v) for v in values),
        delta=delta,
    )


# ---------------------------------------------------------------------------
# k-set-consensus
# ---------------------------------------------------------------------------


def k_set_consensus_type(k: int, proposals: Sequence[Value]) -> SequentialType:
    """The k-set-consensus sequential type (Section 2.1.2).

    ``V`` is the set of subsets of the proposal set with at most ``k``
    elements, ``V0 = {{}}``.  While fewer than ``k`` values have been
    remembered, ``init(v)`` adds ``v`` and may return any remembered
    value (including ``v``); once ``k`` values are remembered, ``init``
    returns one of them.  This is a *nondeterministic* sequential type —
    the reason the paper allows nondeterministic ``delta``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    proposals = tuple(proposals)

    def delta(invocation, value) -> Sequence[DeltaResult]:
        if not (isinstance(invocation, tuple) and invocation[0] == "init"):
            raise ValueError(f"k-set-consensus: unknown invocation {invocation!r}")
        proposal = invocation[1]
        remembered: frozenset = value
        if len(remembered) < k:
            extended = remembered | {proposal}
            return tuple(
                (("decide", candidate), extended) for candidate in sorted(extended)
            )
        return tuple(
            (("decide", candidate), remembered) for candidate in sorted(remembered)
        )

    return SequentialType(
        name=f"{k}-set-consensus",
        initial_values=(frozenset(),),
        invocations=tuple(("init", v) for v in proposals),
        responses=tuple(("decide", v) for v in proposals),
        delta=delta,
    )


# ---------------------------------------------------------------------------
# Further classical types (introduction, Section 1)
# ---------------------------------------------------------------------------


def queue_type(items: Sequence[Value], capacity: int = 4) -> SequentialType:
    """A FIFO queue type with enq/deq; deq on empty returns ``empty``.

    ``capacity`` bounds the *sampled* reachable state space so that
    exhaustive analyses stay finite; enqueues beyond the bound return
    ``full`` without changing the state.
    """
    items = tuple(items)

    def delta(invocation, value) -> Sequence[DeltaResult]:
        queue: tuple = value
        if invocation == ("deq",):
            if not queue:
                return ((("empty",), queue),)
            return ((("item", queue[0]), queue[1:]),)
        if isinstance(invocation, tuple) and invocation[0] == "enq":
            if len(queue) >= capacity:
                return ((("full",), queue),)
            return ((ACK, queue + (invocation[1],)),)
        raise ValueError(f"queue: unknown invocation {invocation!r}")

    return SequentialType(
        name="queue",
        initial_values=((),),
        invocations=(("deq",),) + tuple(("enq", item) for item in items),
        responses=(("empty",), ("full",), ACK)
        + tuple(("item", item) for item in items),
        delta=delta,
    )


def counter_type(modulus: int | None = None) -> SequentialType:
    """A counter with ``inc`` and ``get``.

    With ``modulus`` set, the counter wraps, keeping the state space
    finite for exhaustive exploration.
    """

    def delta(invocation, value) -> Sequence[DeltaResult]:
        if invocation == ("inc",):
            incremented = value + 1
            if modulus is not None:
                incremented %= modulus
            return ((ACK, incremented),)
        if invocation == ("get",):
            return ((("value", value), value),)
        raise ValueError(f"counter: unknown invocation {invocation!r}")

    return SequentialType(
        name="counter",
        initial_values=(0,),
        invocations=(("inc",), ("get",)),
        responses=(ACK,)
        + tuple(("value", n) for n in range(modulus if modulus is not None else 4)),
        delta=delta,
    )


def test_and_set_type() -> SequentialType:
    """Test&set: first ``test_and_set`` wins (returns 0), later ones lose."""

    def delta(invocation, value) -> Sequence[DeltaResult]:
        if invocation == ("test_and_set",):
            return ((("old", value), 1),)
        if invocation == ("reset",):
            return ((ACK, 0),)
        raise ValueError(f"test&set: unknown invocation {invocation!r}")

    return SequentialType(
        name="test&set",
        initial_values=(0,),
        invocations=(("test_and_set",), ("reset",)),
        responses=(("old", 0), ("old", 1), ACK),
        delta=delta,
    )


def compare_and_swap_type(values: Sequence[Value]) -> SequentialType:
    """Compare&swap over a finite value sample.

    ``cas(expected, new)`` returns ``(True, old)`` and installs ``new``
    when ``old == expected``; otherwise returns ``(False, old)`` and
    leaves the value unchanged.
    """
    values = tuple(values)

    def delta(invocation, value) -> Sequence[DeltaResult]:
        if isinstance(invocation, tuple) and invocation[0] == "cas":
            _, expected, new = invocation
            if value == expected:
                return ((("cas", True, value), new),)
            return ((("cas", False, value), value),)
        if invocation == ("read",):
            return ((("value", value), value),)
        raise ValueError(f"compare&swap: unknown invocation {invocation!r}")

    invocations = [("read",)]
    for expected in values:
        for new in values:
            invocations.append(("cas", expected, new))

    return SequentialType(
        name="compare&swap",
        initial_values=(values[0],),
        invocations=tuple(invocations),
        responses=tuple(("value", v) for v in values)
        + tuple(("cas", flag, v) for flag in (True, False) for v in values),
        delta=delta,
    )


def fetch_and_add_type(modulus: int = 8) -> SequentialType:
    """Fetch&add modulo ``modulus`` (finite for exhaustive analyses)."""

    def delta(invocation, value) -> Sequence[DeltaResult]:
        if isinstance(invocation, tuple) and invocation[0] == "faa":
            return ((("old", value), (value + invocation[1]) % modulus),)
        raise ValueError(f"fetch&add: unknown invocation {invocation!r}")

    return SequentialType(
        name="fetch&add",
        initial_values=(0,),
        invocations=tuple(("faa", amount) for amount in (1, 2)),
        responses=tuple(("old", n) for n in range(modulus)),
        delta=delta,
        contains_invocation=lambda invocation: (
            isinstance(invocation, tuple)
            and len(invocation) == 2
            and invocation[0] == "faa"
            and isinstance(invocation[1], int)
        ),
    )


def read_modify_write_type(
    values: Sequence[Value],
    functions: dict[str, Callable[[Value], Value]],
) -> SequentialType:
    """General read-modify-write over named update functions.

    ``rmw(f)`` returns the old value and installs ``functions[f](old)``.
    Subsumes counter, test&set, and fetch&add; provided because the
    paper's introduction names "atomic read-modify-write" as the first
    example of a service.
    """
    values = tuple(values)

    def delta(invocation, value) -> Sequence[DeltaResult]:
        if isinstance(invocation, tuple) and invocation[0] == "rmw":
            update = functions[invocation[1]]
            return ((("old", value), update(value)),)
        raise ValueError(f"rmw: unknown invocation {invocation!r}")

    return SequentialType(
        name="read-modify-write",
        initial_values=(values[0],),
        invocations=tuple(("rmw", name) for name in sorted(functions)),
        responses=tuple(("old", v) for v in values),
        delta=delta,
    )


STANDARD_TYPES: dict[str, Callable[..., SequentialType]] = {
    "read/write": read_write_type,
    "binary-consensus": binary_consensus_type,
    "consensus": consensus_type,
    "k-set-consensus": k_set_consensus_type,
    "queue": queue_type,
    "counter": counter_type,
    "test&set": test_and_set_type,
    "compare&swap": compare_and_swap_type,
    "fetch&add": fetch_and_add_type,
    "read-modify-write": read_modify_write_type,
}
