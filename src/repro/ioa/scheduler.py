"""Task schedulers (Sections 2.2.3 and 3.1).

The I/O automaton fairness assumption says every task gets infinitely
many turns.  A *scheduler* realizes an execution by repeatedly choosing a
task to run; this module provides the schedulers used by the examples,
tests, and benchmarks:

* :class:`RoundRobinScheduler` — cycles through all tasks in a fixed
  order; every infinite round-robin schedule is fair.  This is the
  schedule underlying the hook-search construction of Fig. 3.
* :class:`RandomScheduler` — picks uniformly among enabled tasks under a
  seeded PRNG; fair with probability 1 on finite-state systems.
* :class:`ScriptedScheduler` — replays an explicit task sequence; used by
  the analysis layer to re-run the task sequence ``rho`` of an execution
  after a different prefix, the key move in the proofs of Lemmas 6-7.

``run`` drives an automaton from a state under a scheduler, interleaving
externally supplied input actions, and returns the resulting execution.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Sequence

from ..obs.events import (
    ACTION_FIRED,
    FAILURE_INJECTED,
    RUN_END,
    RUN_START,
    SERVICE_INVOCATION,
    SERVICE_RESPONSE,
    TASK_CHOSEN,
)
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from .actions import Action
from .automaton import Automaton, State, Task
from .execution import Execution


class Scheduler(ABC):
    """Strategy for choosing which task runs next."""

    @abstractmethod
    def choose(self, automaton: Automaton, state: State) -> Task | None:
        """Pick a task enabled in ``state``; ``None`` if none is enabled."""

    def reset(self) -> None:
        """Reset any internal position (start of a fresh run)."""


class RoundRobinScheduler(Scheduler):
    """Cycle through the automaton's tasks in their declared order.

    On each call the scheduler resumes from its cursor and returns the
    next task with an enabled action, advancing the cursor past it.  If a
    full cycle finds nothing enabled, returns ``None``.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def choose(self, automaton: Automaton, state: State) -> Task | None:
        tasks = automaton.tasks()
        if not tasks:
            return None
        n = len(tasks)
        for offset in range(n):
            index = (self._cursor + offset) % n
            task = tasks[index]
            if automaton.task_enabled(state, task):
                self._cursor = (index + 1) % n
                return task
        return None


class RandomScheduler(Scheduler):
    """Choose uniformly among the enabled tasks, under a seeded PRNG."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def choose(self, automaton: Automaton, state: State) -> Task | None:
        enabled = automaton.enabled_tasks(state)
        if not enabled:
            return None
        return self._rng.choice(enabled)


class ScriptedScheduler(Scheduler):
    """Replay a fixed task sequence, skipping tasks that are not enabled.

    ``strict=True`` raises if a scripted task is not enabled when its
    turn comes — useful when replaying a task sequence that is known to
    remain applicable (Lemma 1).
    """

    def __init__(self, script: Sequence[Task], strict: bool = False) -> None:
        self._script = tuple(script)
        self._strict = strict
        self._position = 0

    def reset(self) -> None:
        self._position = 0

    @property
    def exhausted(self) -> bool:
        """True once every scripted task has been consumed."""
        return self._position >= len(self._script)

    def choose(self, automaton: Automaton, state: State) -> Task | None:
        while self._position < len(self._script):
            task = self._script[self._position]
            self._position += 1
            if automaton.task_enabled(state, task):
                return task
            if self._strict:
                raise RuntimeError(f"scripted task {task} not enabled")
        return None


def run(
    automaton: Automaton,
    scheduler: Scheduler,
    max_steps: int,
    start: State | None = None,
    inputs: Iterable[tuple[int, Action]] = (),
    stop: Callable[[Execution], bool] | None = None,
    transition_chooser: Callable[[Sequence], int] | None = None,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> Execution:
    """Drive ``automaton`` under ``scheduler`` for up to ``max_steps`` steps.

    ``inputs`` supplies external input actions as ``(step_index, action)``
    pairs: before scheduling step ``j``, all inputs with index ``<= j``
    that have not yet been applied are applied (in order).  ``stop`` is an
    optional early-exit predicate evaluated after every step.  When a task
    has several enabled transitions (a nondeterministic automaton),
    ``transition_chooser`` selects among them (default: the first).

    When ``tracer`` is enabled, the run emits the uniform replay protocol
    (``run_start``, per-input ``action_fired``, per-step ``task_chosen``
    with the fired action, ``run_end``) that :mod:`repro.obs.replay`
    inverts; ``metrics`` accumulates step/input counters either way.
    """
    if start is None:
        start = automaton.some_start_state()
    tracing = tracer.enabled
    if tracing:
        tracer.emit(RUN_START, op="run", max_steps=max_steps)
    execution = Execution(start)
    pending = sorted(inputs, key=lambda pair: pair[0])
    cursor = 0
    steps_taken = 0
    for step_index in range(max_steps):
        while cursor < len(pending) and pending[cursor][0] <= step_index:
            action = pending[cursor][1]
            post = automaton.apply_input(execution.final_state, action)
            execution = execution.extend(action, post, task=None)
            cursor += 1
            if tracing:
                _emit_input(tracer, action, step_index)
        task = scheduler.choose(automaton, execution.final_state)
        if task is None:
            break
        transitions = automaton.enabled(execution.final_state, task)
        choice = 0 if transition_chooser is None else transition_chooser(transitions)
        transition = transitions[choice]
        execution = execution.extend(transition.action, transition.post, task)
        steps_taken += 1
        if tracing:
            _emit_step(tracer, task, transition.action, step_index)
        if stop is not None and stop(execution):
            break
    # Flush any remaining inputs so callers always see them applied.
    while cursor < len(pending):
        action = pending[cursor][1]
        post = automaton.apply_input(execution.final_state, action)
        execution = execution.extend(action, post, task=None)
        cursor += 1
        if tracing:
            _emit_input(tracer, action, steps_taken)
    if tracing:
        tracer.emit(RUN_END, op="run", steps=steps_taken)
    if metrics.enabled:
        metrics.counter("scheduler.steps").inc(steps_taken)
        metrics.counter("scheduler.inputs").inc(cursor)
        metrics.counter("scheduler.runs").inc()
    return execution


def _emit_step(tracer: Tracer, task: Task, action: Action, step_index: int) -> None:
    """One scheduled step of the replay protocol (see repro.obs.replay)."""
    tracer.emit(TASK_CHOSEN, process=task.owner, task=task, action=action, step=step_index)
    if action.kind == "invoke":
        tracer.emit(
            SERVICE_INVOCATION,
            process=action.args[1],
            service=action.args[0],
            invocation=action.args[2],
        )
    elif action.kind == "respond":
        tracer.emit(
            SERVICE_RESPONSE,
            process=action.args[1],
            service=action.args[0],
            response=action.args[2],
        )


def _emit_input(tracer: Tracer, action: Action, step_index: int) -> None:
    """One externally supplied input of the replay protocol."""
    process = action.args[0] if action.kind in ("init", "fail") else None
    tracer.emit(ACTION_FIRED, process=process, action=action, step=step_index)
    if action.kind == "fail":
        tracer.emit(FAILURE_INJECTED, process=action.args[0], endpoint=action.args[0])
