"""Executions, traces, and fairness (Section 2.1.1).

An *execution* is an alternating sequence ``s0 a1 s1 a2 s2 ...`` of states
and actions such that ``s0`` is a start state and each triple
``(s_{j-1}, a_j, s_j)`` is a transition.  A *trace* is the subsequence of
external actions.  An execution is *fair* iff every task either occurs
infinitely often or is disabled infinitely often (for finite executions:
no task is enabled in the final state).

Executions in this library are finite, immutable values.  Infinite
executions appear in the paper's liveness arguments; the analysis layer
represents them constructively as a finite stem plus a repeating cycle
(:class:`Lasso`), which is the standard finite witness for an infinite
execution of a finite-state system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from .actions import Action, is_fail
from .automaton import Automaton, State, Task


@dataclass(frozen=True, slots=True)
class Step:
    """One step of an execution: the action taken and the resulting state.

    ``task`` records which task produced the action (``None`` for inputs
    arriving from the external world); recording tasks lets the analysis
    layer replay the *task sequence* of an execution, which by the
    determinism assumptions of Section 3.1 uniquely determines the
    execution — the device used throughout the proofs of Lemmas 6-8.
    """

    action: Action
    post: State
    task: Task | None = None


class _Chain:
    """One reverse-linked node of an execution's appended steps.

    Extensions cons onto the front of this chain, so ``extend`` is O(1)
    and every prefix execution keeps sharing its structure with all of
    its extensions (schedulers and the refutation engine extend one
    step at a time, which under the old tuple-copying representation
    made building an ``n``-step execution O(n^2)).
    """

    __slots__ = ("step", "prev", "length")

    def __init__(self, step: Step, prev: "_Chain | None") -> None:
        self.step = step
        self.prev = prev
        self.length = 1 if prev is None else prev.length + 1


class Execution:
    """A finite execution: a start state plus a sequence of steps.

    Immutable value semantics (equality and hashing over
    ``(start, steps)``), persistent representation: an execution is a
    materialized ``base`` tuple of steps plus a structurally shared
    reverse chain of appended steps.  ``extend`` is O(1), ``concat`` is
    O(len(other)), ``final_state``/``len`` are O(1); the ``steps`` tuple
    is materialized lazily (and cached) on first access.
    """

    __slots__ = ("start", "_base", "_chain", "_steps")

    def __init__(self, start: State, steps: Sequence[Step] = ()) -> None:
        self.start = start
        self._base = tuple(steps)
        self._chain: _Chain | None = None
        self._steps: tuple[Step, ...] | None = self._base

    @classmethod
    def _from_parts(
        cls, start: State, base: tuple[Step, ...], chain: _Chain | None
    ) -> "Execution":
        execution = object.__new__(cls)
        execution.start = start
        execution._base = base
        execution._chain = chain
        execution._steps = None
        return execution

    # -- construction --------------------------------------------------------

    def extend(self, action: Action, post: State, task: Task | None = None) -> "Execution":
        """The extension of this execution by one step (O(1), shared)."""
        return Execution._from_parts(
            self.start, self._base, _Chain(Step(action, post, task), self._chain)
        )

    def concat(self, other: "Execution") -> "Execution":
        """Concatenation ``alpha . alpha'`` (Section 2.1.1).

        ``other`` must start in this execution's final state.
        """
        if other.start != self.final_state:
            raise ValueError("concatenation requires matching endpoint states")
        chain = self._chain
        for step in other.steps:
            chain = _Chain(step, chain)
        return Execution._from_parts(self.start, self._base, chain)

    def prefix(self, length: int) -> "Execution":
        """The prefix with the given number of steps."""
        return Execution(self.start, self.steps[:length])

    # -- value semantics ------------------------------------------------------

    @property
    def steps(self) -> tuple[Step, ...]:
        """The steps as a real tuple (materialized lazily, then cached)."""
        steps = self._steps
        if steps is None:
            appended: list[Step] = []
            cursor = self._chain
            while cursor is not None:
                appended.append(cursor.step)
                cursor = cursor.prev
            appended.reverse()
            steps = self._steps = self._base + tuple(appended)
        return steps

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Execution):
            return NotImplemented
        return self.start == other.start and self.steps == other.steps

    def __hash__(self) -> int:
        return hash((self.start, self.steps))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Execution(start={self.start!r}, steps={self.steps!r})"

    def __reduce__(self):
        return (Execution, (self.start, self.steps))

    # -- observation ---------------------------------------------------------

    @property
    def final_state(self) -> State:
        """The last state of the execution."""
        if self._chain is not None:
            return self._chain.step.post
        return self._base[-1].post if self._base else self.start

    @property
    def actions(self) -> tuple[Action, ...]:
        """The sequence of actions along the execution."""
        return tuple(step.action for step in self.steps)

    @property
    def tasks(self) -> tuple[Task | None, ...]:
        """The sequence of tasks that produced each step."""
        return tuple(step.task for step in self.steps)

    def states(self) -> Iterator[State]:
        """All states along the execution, including the start state."""
        yield self.start
        for step in self.steps:
            yield step.post

    def __len__(self) -> int:
        base = len(self._base)
        return base if self._chain is None else base + self._chain.length

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    # -- paper-level predicates ----------------------------------------------

    def is_failure_free(self) -> bool:
        """True iff no ``fail_i`` action occurs (Section 3.2)."""
        return not any(is_fail(step.action) for step in self.steps)

    def failed_endpoints(self) -> frozenset:
        """The set of endpoints failed along this execution."""
        return frozenset(
            step.action.args[0] for step in self.steps if is_fail(step.action)
        )

    def count(self, predicate: Callable[[Action], bool]) -> int:
        """Number of actions satisfying ``predicate``."""
        return sum(1 for step in self.steps if predicate(step.action))

    def trace(self, automaton: Automaton) -> tuple[Action, ...]:
        """The trace: external actions of ``automaton`` along the execution."""
        return tuple(
            step.action for step in self.steps if automaton.is_external(step.action)
        )


@dataclass(frozen=True)
class Lasso:
    """A finite witness for an infinite execution: stem + repeating cycle.

    For finite-state systems, an infinite fair execution exists iff there
    is a reachable cycle along which every task is either taken or
    disabled at some state of the cycle.  A :class:`Lasso` packages such
    a witness; :func:`lasso_is_fair` checks the fairness condition.
    """

    stem: Execution
    cycle: tuple[Step, ...]

    def unroll(self, repetitions: int) -> Execution:
        """The finite execution obtained by unrolling the cycle."""
        execution = self.stem
        for _ in range(repetitions):
            for step in self.cycle:
                execution = execution.extend(step.action, step.post, step.task)
        return execution


def lasso_is_fair(lasso: Lasso, automaton: Automaton) -> bool:
    """Check that the infinite execution denoted by ``lasso`` is fair.

    The infinite execution ``stem . cycle^omega`` is fair iff every task
    of ``automaton`` either (a) contributes an action somewhere in the
    cycle, or (b) is disabled in some state of the cycle.  (Condition (b)
    uses the paper's definition: infinitely many occurrences of states in
    which the task is not enabled.)
    """
    if not lasso.cycle:
        # A lasso with an empty cycle denotes a finite execution; fairness
        # then requires every task to be disabled in the final state.
        final = lasso.stem.final_state
        return not automaton.enabled_tasks(final)
    cycle_states = [step.post for step in lasso.cycle]
    cycle_tasks = {step.task for step in lasso.cycle if step.task is not None}
    for task in automaton.tasks():
        if task in cycle_tasks:
            continue
        if any(not automaton.task_enabled(state, task) for state in cycle_states):
            continue
        return False
    return True


def finite_execution_is_fair(execution: Execution, automaton: Automaton) -> bool:
    """Fairness for finite executions: no task enabled in the final state."""
    return not automaton.enabled_tasks(execution.final_state)


def task_occurrences(execution: Execution) -> dict[Task, int]:
    """How many steps each task contributed (inputs excluded)."""
    counts: dict[Task, int] = {}
    for step in execution.steps:
        if step.task is not None:
            counts[step.task] = counts.get(step.task, 0) + 1
    return counts


def validate_execution(execution: Execution, automaton: Automaton) -> None:
    """Check that ``execution`` really is an execution of ``automaton``.

    Verifies that the start state is a start state and that every step is
    a legal transition: an input step must reproduce ``apply_input``, and
    a locally controlled step must appear among the enabled transitions
    of its recorded task.  Raises ``ValueError`` on the first violation.
    """
    if execution.start not in set(automaton.start_states()):
        raise ValueError("execution does not begin in a start state")
    state = execution.start
    for index, step in enumerate(execution.steps):
        if step.task is None:
            if not automaton.is_input(step.action):
                raise ValueError(
                    f"step {index}: action {step.action} has no task but is "
                    "not an input action"
                )
            expected = automaton.apply_input(state, step.action)
            if expected != step.post:
                raise ValueError(f"step {index}: input effect mismatch")
        else:
            candidates = automaton.enabled(state, step.task)
            if not any(
                t.action == step.action and t.post == step.post for t in candidates
            ):
                raise ValueError(
                    f"step {index}: transition {step.action} not enabled for "
                    f"task {step.task}"
                )
        state = step.post


def project_actions(
    actions: Iterable[Action], automaton: Automaton
) -> tuple[Action, ...]:
    """Project an action sequence onto the signature of ``automaton``."""
    return tuple(a for a in actions if automaton.in_signature(a))
