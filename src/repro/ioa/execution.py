"""Executions, traces, and fairness (Section 2.1.1).

An *execution* is an alternating sequence ``s0 a1 s1 a2 s2 ...`` of states
and actions such that ``s0`` is a start state and each triple
``(s_{j-1}, a_j, s_j)`` is a transition.  A *trace* is the subsequence of
external actions.  An execution is *fair* iff every task either occurs
infinitely often or is disabled infinitely often (for finite executions:
no task is enabled in the final state).

Executions in this library are finite, immutable values.  Infinite
executions appear in the paper's liveness arguments; the analysis layer
represents them constructively as a finite stem plus a repeating cycle
(:class:`Lasso`), which is the standard finite witness for an infinite
execution of a finite-state system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from .actions import Action, is_fail
from .automaton import Automaton, State, Task


@dataclass(frozen=True, slots=True)
class Step:
    """One step of an execution: the action taken and the resulting state.

    ``task`` records which task produced the action (``None`` for inputs
    arriving from the external world); recording tasks lets the analysis
    layer replay the *task sequence* of an execution, which by the
    determinism assumptions of Section 3.1 uniquely determines the
    execution — the device used throughout the proofs of Lemmas 6-8.
    """

    action: Action
    post: State
    task: Task | None = None


@dataclass(frozen=True)
class Execution:
    """A finite execution: a start state plus a sequence of steps."""

    start: State
    steps: tuple[Step, ...] = ()

    # -- construction --------------------------------------------------------

    def extend(self, action: Action, post: State, task: Task | None = None) -> "Execution":
        """The extension of this execution by one step."""
        return Execution(self.start, self.steps + (Step(action, post, task),))

    def concat(self, other: "Execution") -> "Execution":
        """Concatenation ``alpha . alpha'`` (Section 2.1.1).

        ``other`` must start in this execution's final state.
        """
        if other.start != self.final_state:
            raise ValueError("concatenation requires matching endpoint states")
        return Execution(self.start, self.steps + other.steps)

    def prefix(self, length: int) -> "Execution":
        """The prefix with the given number of steps."""
        return Execution(self.start, self.steps[:length])

    # -- observation ---------------------------------------------------------

    @property
    def final_state(self) -> State:
        """The last state of the execution."""
        return self.steps[-1].post if self.steps else self.start

    @property
    def actions(self) -> tuple[Action, ...]:
        """The sequence of actions along the execution."""
        return tuple(step.action for step in self.steps)

    @property
    def tasks(self) -> tuple[Task | None, ...]:
        """The sequence of tasks that produced each step."""
        return tuple(step.task for step in self.steps)

    def states(self) -> Iterator[State]:
        """All states along the execution, including the start state."""
        yield self.start
        for step in self.steps:
            yield step.post

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    # -- paper-level predicates ----------------------------------------------

    def is_failure_free(self) -> bool:
        """True iff no ``fail_i`` action occurs (Section 3.2)."""
        return not any(is_fail(step.action) for step in self.steps)

    def failed_endpoints(self) -> frozenset:
        """The set of endpoints failed along this execution."""
        return frozenset(
            step.action.args[0] for step in self.steps if is_fail(step.action)
        )

    def count(self, predicate: Callable[[Action], bool]) -> int:
        """Number of actions satisfying ``predicate``."""
        return sum(1 for step in self.steps if predicate(step.action))

    def trace(self, automaton: Automaton) -> tuple[Action, ...]:
        """The trace: external actions of ``automaton`` along the execution."""
        return tuple(
            step.action for step in self.steps if automaton.is_external(step.action)
        )


@dataclass(frozen=True)
class Lasso:
    """A finite witness for an infinite execution: stem + repeating cycle.

    For finite-state systems, an infinite fair execution exists iff there
    is a reachable cycle along which every task is either taken or
    disabled at some state of the cycle.  A :class:`Lasso` packages such
    a witness; :func:`lasso_is_fair` checks the fairness condition.
    """

    stem: Execution
    cycle: tuple[Step, ...]

    def unroll(self, repetitions: int) -> Execution:
        """The finite execution obtained by unrolling the cycle."""
        execution = self.stem
        for _ in range(repetitions):
            for step in self.cycle:
                execution = execution.extend(step.action, step.post, step.task)
        return execution


def lasso_is_fair(lasso: Lasso, automaton: Automaton) -> bool:
    """Check that the infinite execution denoted by ``lasso`` is fair.

    The infinite execution ``stem . cycle^omega`` is fair iff every task
    of ``automaton`` either (a) contributes an action somewhere in the
    cycle, or (b) is disabled in some state of the cycle.  (Condition (b)
    uses the paper's definition: infinitely many occurrences of states in
    which the task is not enabled.)
    """
    if not lasso.cycle:
        # A lasso with an empty cycle denotes a finite execution; fairness
        # then requires every task to be disabled in the final state.
        final = lasso.stem.final_state
        return not automaton.enabled_tasks(final)
    cycle_states = [step.post for step in lasso.cycle]
    cycle_tasks = {step.task for step in lasso.cycle if step.task is not None}
    for task in automaton.tasks():
        if task in cycle_tasks:
            continue
        if any(not automaton.task_enabled(state, task) for state in cycle_states):
            continue
        return False
    return True


def finite_execution_is_fair(execution: Execution, automaton: Automaton) -> bool:
    """Fairness for finite executions: no task enabled in the final state."""
    return not automaton.enabled_tasks(execution.final_state)


def task_occurrences(execution: Execution) -> dict[Task, int]:
    """How many steps each task contributed (inputs excluded)."""
    counts: dict[Task, int] = {}
    for step in execution.steps:
        if step.task is not None:
            counts[step.task] = counts.get(step.task, 0) + 1
    return counts


def validate_execution(execution: Execution, automaton: Automaton) -> None:
    """Check that ``execution`` really is an execution of ``automaton``.

    Verifies that the start state is a start state and that every step is
    a legal transition: an input step must reproduce ``apply_input``, and
    a locally controlled step must appear among the enabled transitions
    of its recorded task.  Raises ``ValueError`` on the first violation.
    """
    if execution.start not in set(automaton.start_states()):
        raise ValueError("execution does not begin in a start state")
    state = execution.start
    for index, step in enumerate(execution.steps):
        if step.task is None:
            if not automaton.is_input(step.action):
                raise ValueError(
                    f"step {index}: action {step.action} has no task but is "
                    "not an input action"
                )
            expected = automaton.apply_input(state, step.action)
            if expected != step.post:
                raise ValueError(f"step {index}: input effect mismatch")
        else:
            candidates = automaton.enabled(state, step.task)
            if not any(
                t.action == step.action and t.post == step.post for t in candidates
            ):
                raise ValueError(
                    f"step {index}: transition {step.action} not enabled for "
                    f"task {step.task}"
                )
        state = step.post


def project_actions(
    actions: Iterable[Action], automaton: Automaton
) -> tuple[Action, ...]:
    """Project an action sequence onto the signature of ``automaton``."""
    return tuple(a for a in actions if automaton.in_signature(a))
