"""Actions of I/O automata.

The paper (Section 2.1.1) models concurrency with I/O automata whose
transitions are labeled by *actions*.  Every action in this library is an
immutable, hashable :class:`Action` value carrying a ``kind`` string and a
tuple of arguments.  Using one concrete value type for all actions keeps
compositions simple: two automata synchronize on an action exactly when
they both declare it in their signature, and equality of :class:`Action`
values is structural.

The module also provides the named constructors used throughout the
paper's system model (Section 2.2):

* ``invoke(k, i, a)``   -- invocation ``a`` by process ``i`` on service ``k``
  (the paper writes this a_{i,k});
* ``respond(k, i, b)``  -- response ``b`` from service ``k`` to process ``i``
  (the paper writes b_{i,k});
* ``perform(k, i)``     -- internal step of service ``k`` consuming the head
  of ``i``'s invocation buffer (Fig. 1 / Fig. 4);
* ``compute(k, g)``     -- spontaneous global step of a failure-oblivious
  or general service (Fig. 4 / Fig. 8);
* ``dummy_perform / dummy_output / dummy_compute`` -- the "may fall silent"
  actions that encode f-resilience (Section 2.1.3);
* ``fail(i)``           -- the failure of process ``i`` (input everywhere);
* ``init(i, v)`` / ``decide(i, v)`` -- the external consensus interface
  (Section 2.2.4);
* ``dummy_step(i)``     -- the always-enabled no-op of a process automaton
  (Section 2.2.1 requires every process to have some enabled locally
  controlled action in every state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class Action:
    """An immutable action label.

    ``kind`` names the family of the action (``"invoke"``, ``"perform"``,
    ``"fail"``, ...) and ``args`` carries its parameters.  Action values
    are hashable so that executions can be stored in sets and used as
    dictionary keys by the exploration machinery.
    """

    kind: str
    args: tuple = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.kind}({inner})"


# ---------------------------------------------------------------------------
# Service interface actions (Sections 2.1.3, 5.1, 6.1)
# ---------------------------------------------------------------------------


def invoke(service: Any, endpoint: Any, invocation: Any) -> Action:
    """Invocation ``invocation`` at ``endpoint`` of service ``service``.

    This is the action the paper writes ``a_{i,k}``: an output of process
    ``i`` and an input of service ``k``.
    """
    return Action("invoke", (service, endpoint, invocation))


def respond(service: Any, endpoint: Any, response: Any) -> Action:
    """Response ``response`` delivered to ``endpoint`` by ``service``.

    The paper writes this ``b_{i,k}``: an output of service ``k`` and an
    input of process ``i``.
    """
    return Action("respond", (service, endpoint, response))


def perform(service: Any, endpoint: Any) -> Action:
    """Internal ``perform_{i,k}`` step of a canonical service (Fig. 1)."""
    return Action("perform", (service, endpoint))


def dummy_perform(service: Any, endpoint: Any) -> Action:
    """The ``dummy_perform_{i,k}`` action enabled after failures (Fig. 1)."""
    return Action("dummy_perform", (service, endpoint))


def dummy_output(service: Any, endpoint: Any) -> Action:
    """The ``dummy_output_{i,k}`` action enabled after failures (Fig. 1)."""
    return Action("dummy_output", (service, endpoint))


def compute(service: Any, task_name: Any) -> Action:
    """Internal ``compute_{g,k}`` step of a failure-oblivious/general service."""
    return Action("compute", (service, task_name))


def dummy_compute(service: Any, task_name: Any) -> Action:
    """The ``dummy_compute_{g,k}`` action enabled after failures (Fig. 4)."""
    return Action("dummy_compute", (service, task_name))


# ---------------------------------------------------------------------------
# Failures and the external consensus interface (Sections 2.2.1, 2.2.4)
# ---------------------------------------------------------------------------


def fail(endpoint: Any) -> Action:
    """The ``fail_i`` input action: process ``endpoint`` stops.

    ``fail_i`` is an input both of process ``i`` and of every service to
    which ``i`` is connected (Section 2.2.3).
    """
    return Action("fail", (endpoint,))


def init(endpoint: Any, value: Any) -> Action:
    """The external consensus input ``init(v)_i`` (Section 2.2.4)."""
    return Action("init", (endpoint, value))


def decide(endpoint: Any, value: Any) -> Action:
    """The external consensus output ``decide(v)_i`` (Section 2.2.4)."""
    return Action("decide", (endpoint, value))


def dummy_step(endpoint: Any) -> Action:
    """The always-enabled internal no-op of a process automaton.

    Section 2.2.1 assumes that in every state of a process some locally
    controlled action is enabled; ``dummy_step`` realizes that assumption
    when the process has nothing useful to do (e.g. after failing).
    """
    return Action("dummy_step", (endpoint,))


def is_dummy(action: Action) -> bool:
    """True for the actions that the paper calls "dummy" actions.

    These are exactly the actions removed when the proofs of Lemmas 6 and
    7 transform a fair failing extension ``gamma`` into the failure-free
    fragment ``gamma'``.
    """
    return action.kind in (
        "dummy_perform",
        "dummy_output",
        "dummy_compute",
        "dummy_step",
    )


def is_fail(action: Action) -> bool:
    """True for ``fail_i`` actions."""
    return action.kind == "fail"
