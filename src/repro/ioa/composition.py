"""Parallel composition and hiding of I/O automata (Section 2.1.1, 2.2.3).

In a composition, all automata with an action ``a`` in their signature
execute ``a`` simultaneously.  An action may be an output of at most one
component, and an internal action of a component belongs to no other
component's signature.  The composition's state is the tuple of component
states; its tasks are the disjoint union of the components' tasks.

``hide`` reclassifies chosen output actions as internal — the operation
the paper applies to the communication actions of the complete system C
(Section 2.2.3).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .actions import Action
from .automaton import Automaton, State, Task, Transition


class IncompatibleComposition(ValueError):
    """Raised when component signatures violate compatibility rules."""


class Composition(Automaton):
    """The parallel composition of a finite family of I/O automata.

    The state of the composition is a tuple holding one state per
    component, in the order the components were given.  Task identities
    are the components' own task identities (which embed the owning
    automaton's name, keeping them disjoint).
    """

    def __init__(self, components: Sequence[Automaton], name: str = "system"):
        if len({c.name for c in components}) != len(components):
            raise IncompatibleComposition("component names must be unique")
        self.name = name
        self.components: tuple[Automaton, ...] = tuple(components)
        self._index = {c.name: i for i, c in enumerate(self.components)}
        self._tasks: tuple[Task, ...] = tuple(
            task for component in self.components for task in component.tasks()
        )
        self._task_owner: dict[Task, int] = {}
        for i, component in enumerate(self.components):
            for task in component.tasks():
                if task in self._task_owner:
                    raise IncompatibleComposition(f"duplicate task {task}")
                self._task_owner[task] = i

    # -- component access ----------------------------------------------------

    def component_index(self, name: str) -> int:
        """Position of the named component in the state tuple."""
        return self._index[name]

    def component(self, name: str) -> Automaton:
        """The named component automaton."""
        return self.components[self._index[name]]

    def component_state(self, state: State, name: str) -> State:
        """Project a composite state onto the named component."""
        return state[self._index[name]]

    def symmetry_classes(self) -> dict:
        """Group components by declared interchangeability class.

        Components whose :meth:`Automaton.symmetry_key` is non-``None``
        are grouped by ``(type name, key)``; opted-out components are
        omitted.  Classes with at least two members are candidates for
        symmetry reduction (see :mod:`repro.engine.reduction`).
        """
        classes: dict = {}
        for component in self.components:
            key = component.symmetry_key()
            if key is None:
                continue
            classes.setdefault((type(component).__name__, key), []).append(component)
        return classes

    def participants(self, action: Action) -> list[Automaton]:
        """The components that participate in ``action`` (Section 2.2.3).

        A component participates in an action iff the action is in its
        signature.  In the paper's system model, every non-``fail`` action
        has at most two participants, and two distinct services (or two
        distinct processes) never participate in the same action.
        """
        return [c for c in self.components if c.in_signature(action)]

    # -- signature -----------------------------------------------------------

    def is_output(self, action: Action) -> bool:
        return any(c.is_output(action) for c in self.components)

    def is_internal(self, action: Action) -> bool:
        return any(c.is_internal(action) for c in self.components)

    def is_input(self, action: Action) -> bool:
        # An input of the composition is an input of some component that
        # is not an output of any component.
        return any(c.is_input(action) for c in self.components) and not self.is_output(
            action
        )

    # -- states and transitions ----------------------------------------------

    def start_states(self) -> Iterable[State]:
        def product(index: int) -> Iterable[tuple]:
            if index == len(self.components):
                yield ()
                return
            for head in self.components[index].start_states():
                for tail in product(index + 1):
                    yield (head,) + tail

        return product(0)

    def tasks(self) -> Sequence[Task]:
        return self._tasks

    def enabled(self, state: State, task: Task) -> Sequence[Transition]:
        owner = self._task_owner.get(task)
        if owner is None:
            raise KeyError(f"unknown task {task}")
        component = self.components[owner]
        transitions = []
        for local in component.enabled(state[owner], task):
            post = list(state)
            post[owner] = local.post
            # Synchronize: every *other* component with the action in its
            # signature takes it as an input.
            for j, other in enumerate(self.components):
                if j == owner:
                    continue
                if other.in_signature(local.action):
                    if other.is_locally_controlled(local.action):
                        raise IncompatibleComposition(
                            f"action {local.action} locally controlled by both "
                            f"{component.name!r} and {other.name!r}"
                        )
                    post[j] = other.apply_input(post[j], local.action)
            transitions.append(Transition(local.action, tuple(post)))
        return transitions

    def apply_input(self, state: State, action: Action) -> State:
        post = list(state)
        for j, component in enumerate(self.components):
            if component.in_signature(action):
                if not component.is_input(action):
                    raise IncompatibleComposition(
                        f"{action} is not an input of participant {component.name!r}"
                    )
                post[j] = component.apply_input(post[j], action)
        return tuple(post)


class Hidden(Automaton):
    """``hide`` operator: reclassify selected outputs as internal actions.

    Hiding changes only the external signature; states, tasks, and
    transitions are untouched.  The complete system of Section 2.2.3 is a
    composition with the inter-component communication actions hidden.
    """

    def __init__(
        self,
        inner: Automaton,
        hidden: Callable[[Action], bool],
        name: str | None = None,
    ):
        self.inner = inner
        self._hidden = hidden
        self.name = name if name is not None else f"hide({inner.name})"

    def is_input(self, action: Action) -> bool:
        return self.inner.is_input(action)

    def is_output(self, action: Action) -> bool:
        return self.inner.is_output(action) and not self._hidden(action)

    def is_internal(self, action: Action) -> bool:
        return self.inner.is_internal(action) or (
            self.inner.is_output(action) and self._hidden(action)
        )

    def start_states(self) -> Iterable[State]:
        return self.inner.start_states()

    def tasks(self) -> Sequence[Task]:
        return self.inner.tasks()

    def enabled(self, state: State, task: Task) -> Sequence[Transition]:
        return self.inner.enabled(state, task)

    def apply_input(self, state: State, action: Action) -> State:
        return self.inner.apply_input(state, action)


def check_compatibility(
    components: Sequence[Automaton], probe_actions: Iterable[Action]
) -> None:
    """Check composition compatibility over a set of probe actions.

    Because action alphabets are given by predicates rather than finite
    sets, full static compatibility checking is impossible; this helper
    checks, for each supplied action, that (a) it is an output of at most
    one component and (b) if it is internal to some component it belongs
    to no other component's signature.  Raises
    :class:`IncompatibleComposition` on violation.
    """
    for action in probe_actions:
        outputs = [c.name for c in components if c.is_output(action)]
        if len(outputs) > 1:
            raise IncompatibleComposition(
                f"action {action} is an output of {outputs}"
            )
        owners = [c.name for c in components if c.is_internal(action)]
        if owners:
            sharers = [
                c.name
                for c in components
                if c.name not in owners and c.in_signature(action)
            ]
            if sharers:
                raise IncompatibleComposition(
                    f"internal action {action} of {owners} shared with {sharers}"
                )
