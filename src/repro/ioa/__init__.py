"""I/O automaton substrate (paper Section 2.1.1).

This subpackage implements the underlying model of concurrent
computation used by the whole library: I/O automata with input/output/
internal actions, task-based fairness, parallel composition, hiding,
executions and traces, and task schedulers.
"""

from .actions import (
    Action,
    compute,
    decide,
    dummy_compute,
    dummy_output,
    dummy_perform,
    dummy_step,
    fail,
    init,
    invoke,
    is_dummy,
    is_fail,
    perform,
    respond,
)
from .automaton import (
    Automaton,
    State,
    Task,
    Transition,
    is_deterministic,
    nondeterministic_witness,
)
from .composition import (
    Composition,
    Hidden,
    IncompatibleComposition,
    check_compatibility,
)
from .execution import (
    Execution,
    Lasso,
    Step,
    finite_execution_is_fair,
    lasso_is_fair,
    project_actions,
    task_occurrences,
    validate_execution,
)
from .scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    Scheduler,
    run,
)

__all__ = [
    "Action",
    "Automaton",
    "Composition",
    "Execution",
    "Hidden",
    "IncompatibleComposition",
    "Lasso",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "ScriptedScheduler",
    "State",
    "Step",
    "Task",
    "Transition",
    "check_compatibility",
    "compute",
    "decide",
    "dummy_compute",
    "dummy_output",
    "dummy_perform",
    "dummy_step",
    "fail",
    "finite_execution_is_fair",
    "init",
    "invoke",
    "is_deterministic",
    "is_dummy",
    "is_fail",
    "lasso_is_fair",
    "nondeterministic_witness",
    "perform",
    "project_actions",
    "respond",
    "run",
    "task_occurrences",
    "validate_execution",
]
