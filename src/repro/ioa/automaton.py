"""The I/O automaton model (Section 2.1.1).

An I/O automaton is a state machine whose transitions are labeled with
actions.  Actions are partitioned into *input*, *output* and *internal*
actions; output and internal actions are collectively *locally
controlled*, and the locally controlled actions are partitioned into
*tasks*.  Fairness is expressed in terms of tasks: in a fair execution
every task gets infinitely many turns.

This module provides the abstract :class:`Automaton` interface used by
every component in the library, together with the :class:`Task` identity
type and a determinism checker implementing the paper's definition:

    "An I/O automaton A is deterministic iff, for each task e of A and
     each state s of A, there is at most one transition (s, a, s') such
     that a is in e."

Design notes
------------
States are plain immutable values (tuples, frozensets, frozen
dataclasses) owned by each concrete automaton; the :class:`Automaton`
object itself is stateless and is consulted with explicit state values.
This makes executions replayable and lets the analysis layer memoize
facts (such as valence, Section 3.2) per state.

Locally controlled transitions are enumerated per task via
:meth:`Automaton.enabled`, matching the paper's task-granular proof style
(``transition(e, s)`` in Section 3.1).  Input actions are handled by
:meth:`Automaton.apply_input`, which must be total: I/O automata are
input-enabled.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence

from .actions import Action

State = Hashable


@dataclass(frozen=True, slots=True)
class Task:
    """A task identity: ``owner`` is the automaton name, ``name`` the task.

    The paper partitions the locally controlled actions of every
    automaton into tasks; fairness gives each task infinitely many turns.
    In a composition, tasks of the components remain distinct, so a task
    is globally identified by the owning automaton's name plus a local
    task name (e.g. ``Task("S1", ("perform", 2))`` is the ``2``-perform
    task of service ``S1``).
    """

    owner: str
    name: Hashable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.owner!r}, {self.name!r})"


@dataclass(frozen=True, slots=True)
class Transition:
    """A single labeled transition ``(pre-state, action, post-state)``."""

    action: Action
    post: State


class Automaton(ABC):
    """Abstract I/O automaton.

    Concrete automata implement the signature predicates, start states,
    task list, per-task enabled transitions, and the (total) input
    transition function.
    """

    #: Unique name of this automaton within a composition.
    name: str

    # -- signature ---------------------------------------------------------

    @abstractmethod
    def is_input(self, action: Action) -> bool:
        """True iff ``action`` is an input action of this automaton."""

    @abstractmethod
    def is_output(self, action: Action) -> bool:
        """True iff ``action`` is an output action of this automaton."""

    @abstractmethod
    def is_internal(self, action: Action) -> bool:
        """True iff ``action`` is an internal action of this automaton."""

    def in_signature(self, action: Action) -> bool:
        """True iff ``action`` belongs to this automaton's signature."""
        return (
            self.is_input(action)
            or self.is_output(action)
            or self.is_internal(action)
        )

    def is_external(self, action: Action) -> bool:
        """True iff ``action`` is an input or output action."""
        return self.is_input(action) or self.is_output(action)

    def is_locally_controlled(self, action: Action) -> bool:
        """True iff ``action`` is an output or internal action."""
        return self.is_output(action) or self.is_internal(action)

    # -- states and transitions --------------------------------------------

    @abstractmethod
    def start_states(self) -> Iterable[State]:
        """Enumerate the start states."""

    @abstractmethod
    def tasks(self) -> Sequence[Task]:
        """The partition of locally controlled actions into tasks."""

    @abstractmethod
    def enabled(self, state: State, task: Task) -> Sequence[Transition]:
        """Transitions of ``task`` enabled in ``state``.

        Returns every transition ``(state, a, s')`` with ``a`` in task
        ``task``.  An empty sequence means the task is not enabled.
        """

    @abstractmethod
    def apply_input(self, state: State, action: Action) -> State:
        """Apply input ``action`` in ``state`` (total by input-enabledness)."""

    # -- derived helpers -----------------------------------------------------

    def task_enabled(self, state: State, task: Task) -> bool:
        """True iff some action of ``task`` is enabled in ``state``."""
        return bool(self.enabled(state, task))

    def enabled_tasks(self, state: State) -> list[Task]:
        """All tasks with at least one enabled action in ``state``."""
        return [task for task in self.tasks() if self.task_enabled(state, task)]

    def some_start_state(self) -> State:
        """A canonical start state (the first enumerated one)."""
        for state in self.start_states():
            return state
        raise ValueError(f"automaton {self.name!r} has no start states")

    def symmetry_key(self) -> Hashable | None:
        """Interchangeability class for symmetry reduction, or ``None``.

        Two automata of the same type returning equal non-``None`` keys
        declare themselves interchangeable: swapping their identities
        (and relabeling their endpoints everywhere else in the
        composition) maps executions to executions.  Returning a
        non-``None`` key is a contract that the automaton's *state
        values* never embed its own identity — the exploration engine
        moves states between interchangeable automata unchanged.  The
        default refuses (``None``), so symmetry is strictly opt-in.
        """
        return None


def is_deterministic(
    automaton: Automaton, states: Iterable[State]
) -> bool:
    """Check the paper's determinism condition over the given states.

    Determinism (Section 2.1.1): for each task ``e`` and each state ``s``
    there is at most one transition ``(s, a, s')`` with ``a`` in ``e``.
    Because the state space of an automaton may be unbounded, the caller
    supplies the states to check (typically, all states reachable in the
    instance of interest).
    """
    for state in states:
        for task in automaton.tasks():
            if len(automaton.enabled(state, task)) > 1:
                return False
    return True


def nondeterministic_witness(
    automaton: Automaton, states: Iterable[State]
) -> tuple[State, Task] | None:
    """Return a ``(state, task)`` pair violating determinism, if any."""
    for state in states:
        for task in automaton.tasks():
            if len(automaton.enabled(state, task)) > 1:
                return state, task
    return None
