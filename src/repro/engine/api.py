"""The :class:`ExplorationEngine` facade.

The engine supersedes :func:`repro.analysis.explorer.explore` as the
default way to exhaust failure-free state spaces: same graph, same
semantics, plus worker-pool parallelism, fingerprint-based visited sets,
disk checkpoints with resume, and a unified :class:`~repro.engine.budget.Budget`
(states / transitions / wall-clock deadline) in place of the bare
``max_states`` int.  ``explore()`` itself remains as a thin wrapper over
a one-worker engine, so nothing downstream had to change.

Identical-graph guarantee
-------------------------

For a run that completes (no budget raise), the engine returns a
:class:`~repro.analysis.explorer.StateGraph` **identical to the
sequential one, including discovery order**, at every worker count.
Why: breadth-first search over a deterministic view is a pure function
of the root once three choices are fixed — the expansion order of the
frontier, the successor order within an expansion, and the dedup
relation.  The engine fixes all three identically in both drivers:

* the frontier is FIFO, and the parallel driver *merges* worker results
  in exact frontier order (workers only precompute expansions; the
  single-threaded merge loop is the one that discovers states), so the
  concatenation of rounds replays the sequential queue;
* successor order is ``view.successors`` order, computed per state
  either way;
* dedup is "first discovery wins", applied in merge order.

Parallelism therefore changes *where* ``successors()`` runs, never
*what* the search sees.  The only caveat is dedup by digest (used by the
parallel driver and opt-in sequentially): a fingerprint collision would
merge two distinct states.  The default 16-byte digests make that
probability ~``n^2/2^129``; collision-audit mode
(:class:`~repro.engine.fingerprint.FingerprintIndex`) upgrades the
guarantee to a checked one.  Interrupted runs may differ from a
sequential interrupt in *which* prefix they explored, but resuming any
checkpoint converges to the same completed graph.

Fault tolerance
---------------

Worker crashes do not abort a run: the
:class:`~repro.engine.parallel.WorkerPool` detects dead workers,
re-dispatches their frontier partitions (re-expansion is idempotent, so
the guarantee above survives), respawns crashed slots with bounded
backoff, and degrades to in-process expansion when the whole pool dies.
The one escape hatch is **quarantine**: a state that repeatedly kills
whoever expands it is skipped — keeping its node, dropping its outgoing
edges — and surfaced in :attr:`ExplorationEngine.last_report` (an
:class:`EngineReport`), never silently.  A run with a non-empty
``quarantined`` list is the one case where the produced graph is *not*
the full sequential graph.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Hashable

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

from ..analysis.explorer import StateGraph, StateSet
from ..analysis.view import DeterministicSystemView
from ..obs.events import CHECKPOINT_SAVED, STATE_EXPLORED, WORKER_ROUND
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.progress import ProgressReporter, progress_from_env
from ..obs.sinks import NULL_TRACER, Tracer
from ..obs.spans import end_span, start_span
from .budget import DEFAULT_BUDGET, Budget, BudgetExhausted, Deadline
from .chaos import FaultPlan
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    Segment,
    compact_segments,
    discard_checkpoint,
    find_checkpoint,
    load_checkpoint,
    load_segment,
    resume_hint,
    save_checkpoint,
    save_segment,
    segment_dir,
)
from .codec import Codec, digest_of_packed
from .errors import EngineError
from .fingerprint import DIGEST_SIZE, FingerprintIndex, StateIndex
from .parallel import PRUNED, QUARANTINED, WorkerPool
from .store import (
    StateStore,
    StoreConfig,
    open_store,
    resolve_flush_interval,
    resolve_store,
)

#: Sequential deadline checks happen every this many expansions.
_DEADLINE_STRIDE = 512

#: Store-mode cap on the view's decoded-state transition memo (entries).
#: Each entry pins a full decoded state, so the cap — not the store —
#: decides the coordinator's working-set RSS between flushes.
STEP_CACHE_LIMIT = 20_000

#: Store-mode cap on the codec's interning caches (combined entries).
#: They pin one component object + encoding per distinct component value
#: ever seen, which grows linearly with states streamed through the run.
CODEC_CACHE_LIMIT = 100_000


class _Exhausted(Exception):
    """Internal signal: a budget limit was hit (frontier already repaired)."""

    def __init__(self, resource: str, limit: float) -> None:
        self.resource = resource
        self.limit = limit


class _Run:
    """Mutable working state of one exploration."""

    __slots__ = (
        "view",
        "root",
        "root_digest",
        "prune",
        "tracer",
        "tracing",
        "metrics",
        "codec",
        "index",
        "order",
        "edges",
        "frontier",
        "packed_of",
        "resumed_packed",
        "transitions",
        "expanded",
        "rounds",
        "since_checkpoint",
        "resumed",
        "recovered",
        "started",
        "elapsed_prior",
        "deadline",
        "action_intern",
        "phase",
        "orbit_hits",
        "pruned_tasks",
        "quarantined",
        "pool",
        "store",
        "store_mode",
        "owns_store",
        "task_slot",
        "segment_seq",
        "last_flush_ms",
        "cache_published",
    )

    def elapsed(self) -> float:
        return self.elapsed_prior + (time.monotonic() - self.started)

    def states_count(self) -> int:
        return len(self.store) if self.store_mode else len(self.order)

    def frontier_count(self) -> int:
        return self.store.frontier_len() if self.store_mode else len(self.frontier)


class _StorePackedMap:
    """``packed_of`` for store-backed parallel rounds.

    The :class:`~repro.engine.parallel.WorkerPool` wire protocol reads
    and writes one digest-keyed mapping of canonical bytes; this adapter
    answers from the store for every discovered digest and stages the
    novel bytes worker replies deliver in ``pending`` until the merge
    loop commits them (or the round ends — uncommitted novel bytes are
    recomputed on resume, exactly like the classic table's extras are
    dropped with the process).
    """

    __slots__ = ("store", "pending")

    def __init__(self, store: StateStore) -> None:
        self.store = store
        self.pending: dict[bytes, bytes] = {}

    def get(self, digest: bytes) -> bytes | None:
        packed = self.pending.get(digest)
        if packed is None:
            packed = self.store.get(digest)
        return packed

    def __getitem__(self, digest: bytes) -> bytes:
        packed = self.get(digest)
        if packed is None:
            raise KeyError(digest)
        return packed

    def __setitem__(self, digest: bytes, packed: bytes) -> None:
        self.pending[digest] = packed

    def setdefault(self, digest: bytes, packed: bytes) -> bytes:
        existing = self.get(digest)
        if existing is not None:
            return existing
        self.pending[digest] = packed
        return packed

    def __contains__(self, digest: bytes) -> bool:
        return self.get(digest) is not None


@dataclass(frozen=True)
class EngineReport:
    """Progress and fault-tolerance summary of one completed exploration.

    Exposed as :attr:`ExplorationEngine.last_report` after every
    ``explore()`` call (including ones that raised
    :class:`~repro.engine.budget.BudgetExhausted`).  ``degraded`` is
    true when the run finished on in-process expanders despite multiple
    workers being requested — either fork was unavailable or the pool
    collapsed; ``quarantined`` lists the digests of states skipped
    because they repeatedly killed workers (``quarantined_states`` holds
    the states themselves), the one case where the produced graph is
    not the full one.
    """

    states: int
    transitions: int
    rounds: int
    elapsed_seconds: float
    workers: int
    degraded: bool
    worker_failures: int
    worker_respawns: int
    partitions_reassigned: int
    quarantined: tuple = ()
    quarantined_states: tuple = ()
    #: Peak RSS per worker slot in KiB, as self-reported over the reply
    #: pipe (forked pools only; empty for in-process runs).  The honest
    #: memory number for a parallel run is the coordinator's own
    #: ``ru_maxrss`` *plus* the sum of these — ``RUSAGE_CHILDREN`` only
    #: folds in children that already exited.
    worker_rss_kb: tuple = ()
    #: Successors whose packed bytes were recomputed coordinator-side
    #: after being lost with a crashed worker (see the engine's
    #: missing-bytes recovery).
    recovered_states: int = 0
    #: Which :mod:`~repro.engine.store` backend held the run's states —
    #: ``"memory"`` covers both classic in-RAM runs and the explicit
    #: memory backend.
    store_backend: str = "memory"
    #: Frontier digests that overflowed the in-memory window onto disk.
    spilled_states: int = 0
    #: Durable store flushes (each one is a delta-checkpoint boundary).
    store_flushes: int = 0
    #: Wall-clock seconds spent inside store flushes.
    store_flush_seconds: float = 0.0
    #: The coordinator's own peak RSS in KiB (``ru_maxrss``; add
    #: ``worker_rss_kb`` for the whole-run number, as documented there).
    peak_rss_kb: int = 0
    #: The RSS ceiling the run was asked to respect (reporting only; the
    #: CLI enforces it with ``resource.setrlimit`` before the run).
    rss_limit_mb: int | None = None
    #: Wall-clock seconds per internal phase (``expand_seconds``,
    #: ``merge_seconds``, worker-side serialization, ...) — the same
    #: breakdown the ``engine.phase.*`` counters publish, carried on the
    #: report so run-ledger records and ``repro runs diff`` can compare
    #: phase histograms without a metrics registry attached.
    phase_seconds: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        line = (
            f"engine: {self.states} states / {self.transitions} transitions"
            f" in {self.elapsed_seconds:.3f}s"
            f" ({self.workers} worker{'s' if self.workers != 1 else ''}"
            f", {self.rounds} rounds)"
        )
        if self.worker_failures:
            line += (
                f"; {self.worker_failures} worker failure"
                f"{'s' if self.worker_failures != 1 else ''}"
                f" ({self.worker_respawns} respawned,"
                f" {self.partitions_reassigned} partitions re-dispatched)"
            )
        if self.quarantined:
            line += f"; {len(self.quarantined)} state(s) QUARANTINED"
        if self.degraded:
            line += "; degraded to in-process expansion"
        if self.store_backend != "memory":
            line += (
                f"; store={self.store_backend}"
                f" ({self.store_flushes} flushes"
                f", {self.spilled_states} frontier digests spilled)"
            )
        if self.rss_limit_mb is not None:
            line += (
                f"; rss {self.peak_rss_kb / 1024:.0f}"
                f"/{self.rss_limit_mb} MB"
            )
        return line

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "states": self.states,
            "transitions": self.transitions,
            "rounds": self.rounds,
            "elapsed_seconds": self.elapsed_seconds,
            "workers": self.workers,
            "degraded": self.degraded,
            "worker_failures": self.worker_failures,
            "worker_respawns": self.worker_respawns,
            "partitions_reassigned": self.partitions_reassigned,
            "quarantined": list(self.quarantined),
            "worker_rss_kb": list(self.worker_rss_kb),
            "recovered_states": self.recovered_states,
            "store_backend": self.store_backend,
            "spilled_states": self.spilled_states,
            "store_flushes": self.store_flushes,
            "store_flush_seconds": self.store_flush_seconds,
            "peak_rss_kb": self.peak_rss_kb,
            "rss_limit_mb": self.rss_limit_mb,
            "phase_seconds": dict(self.phase_seconds),
        }


class ExplorationEngine:
    """Parallel, checkpointed, budgeted exploration of failure-free graphs.

    Parameters
    ----------
    workers:
        Expansion processes.  ``1`` (the default) runs in-process; so
        does any value when the platform lacks the ``fork`` start method
        (the system under analysis is not picklable, so workers must
        inherit it — see :mod:`repro.engine.parallel`).
    budget:
        The :class:`Budget`; defaults to the explorer's historical
        ``Budget(max_states=200_000)``.
    store:
        Where discovered states live: ``None`` (the default) keeps
        today's in-RAM exploration; otherwise a
        :mod:`~repro.engine.store` selector — a URI string
        (``"memory"``, ``"sqlite:/path"``, ``"mmap:/path"``), a
        :class:`~repro.engine.store.StoreConfig`, or a ready
        :class:`~repro.engine.store.StateStore` instance (bound to
        exactly one exploration).  With a store the engine runs
        **digest-native**: decoded states are never retained, so RSS
        stays bounded while the packed bytes stream to the backend, and
        the produced graph is still identical to the classic one.  A
        configured path is namespaced per exploration by root digest,
        so pipelines reuse one directory safely.
    checkpoint_dir:
        When set, the engine snapshots its progress into this directory
        every ``flush_interval`` expansions and on budget exhaustion;
        snapshots are named by the root state's digest and deleted when
        their exploration completes.  Runs on a durable store write
        streaming *delta segments* (tiny counter + frontier files — the
        states are already in the store); classic and memory-store runs
        write monolithic checkpoint files.
    flush_interval:
        Expansions between durable store flushes / checkpoint
        snapshots.  ``None`` defers to the store's configured
        :attr:`~repro.engine.store.StoreConfig.flush_interval` (50,000
        without a store).  ``checkpoint_interval=`` is the deprecated
        alias from the monolithic-snapshot era.
    resume:
        When true (and ``checkpoint_dir`` holds a checkpoint for this
        root), continue from the snapshot instead of starting over.
        Store-backed runs resume from the newest delta segment (the
        store is truncated to the segment's durable marks); either mode
        can also resume the other's monolithic v1/v2 files.
    rss_limit_mb:
        The RSS ceiling the run is expected to respect, echoed in
        :class:`EngineReport` next to the measured ``peak_rss_kb``.
        Reporting only — enforcement belongs to the caller (the CLI's
        ``--rss-limit-mb`` installs a ``resource.setrlimit`` address
        -space cap before the run starts).
    fingerprints:
        ``"auto"`` (digests for parallel runs, full states
        sequentially), or a bool to force either visited-set
        representation.  Parallel runs always shard by digest.
    audit:
        Collision-audit mode: keep full states per digest and raise
        :class:`~repro.engine.fingerprint.FingerprintCollision` if two
        unequal states ever hash alike.  Implies digest dedup.
    max_worker_restarts:
        How many times a crashed worker slot is respawned (with
        exponential backoff) before its partitions are redistributed to
        survivors.  ``None`` (the default) reads
        ``REPRO_ENGINE_MAX_RESTARTS`` from the environment, falling back
        to 3.
    restart_backoff_seconds:
        Base of the exponential respawn backoff (doubles per restart of
        the same slot, capped at 2s per sleep).
    max_partition_retries:
        Hard ceiling on how often one frontier partition may be
        re-dispatched after worker losses before the run raises
        :class:`~repro.engine.errors.PartitionRetryExhausted`.
    max_state_retries:
        Worker losses a *single* state may cause before it is
        quarantined (skipped and surfaced in :attr:`last_report`).
    quarantine:
        When false, a state hitting ``max_state_retries`` raises
        :class:`~repro.engine.errors.StateQuarantined` instead of being
        skipped (for runs that must not give up the identical-graph
        guarantee).
    fault_plan:
        A :class:`~repro.engine.chaos.FaultPlan` scheduling
        deterministic worker kills (testing the recovery paths).
        ``None`` reads the ``REPRO_CHAOS`` environment variable.
    heartbeat_seconds:
        Liveness-check interval: when no worker replies for this long,
        every waited-on worker's process is checked (catches deaths the
        pipe has not reported yet).
    progress:
        A :class:`~repro.obs.progress.ProgressReporter` for live
        ``states/s`` lines on stderr (driven per round in parallel runs,
        every few hundred expansions sequentially).  ``None`` (the
        default) consults the ``REPRO_PROGRESS`` environment variable;
        pass ``False`` to force it off regardless of the environment.
    cancel:
        A cooperative stop signal: a zero-argument callable (or a
        :class:`threading.Event`, whose ``is_set`` is used) polled at
        the same cadence as the deadline.  When it reports true, the
        run exits through the budget machinery —
        :class:`~repro.engine.budget.BudgetExhausted` with
        ``resource="cancelled"``, checkpoint written when checkpointing
        is on — so a cancelled exploration is resumable, not lost.
        This is how ``repro serve`` aborts jobs on DELETE and drains
        in-flight work at shutdown.
    run:
        The run-ledger identity of this exploration: either a
        :class:`~repro.obs.ledger.RunHandle` (the engine then refreshes
        its heartbeat file on the progress cadence — every few hundred
        expansions sequentially, per round in parallel — with live
        states/sec, frontier, phase breakdown, and store-flush latency)
        or a bare run-id string (identity only, no heartbeats).  The id
        is stamped into checkpoint and delta-segment metadata so ``repro
        runs show`` can tie artifacts back to the run.  ``None`` (the
        default) keeps the engine ledger-free.
    """

    def __init__(
        self,
        workers: int = 1,
        budget: Budget | None = None,
        *,
        store: StateStore | StoreConfig | str | None = None,
        checkpoint_dir: str | Path | None = None,
        flush_interval: int | None = None,
        checkpoint_interval: int | None = None,
        resume: bool = False,
        rss_limit_mb: int | None = None,
        fingerprints: bool | str = "auto",
        audit: bool = False,
        digest_size: int = DIGEST_SIZE,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
        max_worker_restarts: int | None = None,
        restart_backoff_seconds: float = 0.05,
        max_partition_retries: int = 5,
        max_state_retries: int = 2,
        quarantine: bool = True,
        fault_plan: FaultPlan | None = None,
        heartbeat_seconds: float = 5.0,
        progress: ProgressReporter | bool | None = None,
        cancel=None,
        run=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = resolve_store(store)
        flush_interval = resolve_flush_interval(
            flush_interval, checkpoint_interval, store=self.store
        )
        if flush_interval < 1:
            raise ValueError("flush_interval must be >= 1")
        if rss_limit_mb is not None and rss_limit_mb < 1:
            raise ValueError(f"rss_limit_mb must be >= 1, got {rss_limit_mb}")
        if audit and self.store is not None:
            raise ValueError(
                "audit mode keeps full states in RAM and is incompatible "
                "with store=; run the collision audit without a store"
            )
        if max_worker_restarts is None:
            max_worker_restarts = int(os.environ.get("REPRO_ENGINE_MAX_RESTARTS", "3"))
        if max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, got {max_worker_restarts}"
            )
        if max_partition_retries < 0:
            raise ValueError(
                f"max_partition_retries must be >= 0, got {max_partition_retries}"
            )
        if max_state_retries < 1:
            raise ValueError(f"max_state_retries must be >= 1, got {max_state_retries}")
        self.workers = workers
        self.budget = DEFAULT_BUDGET if budget is None else budget
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.flush_interval = flush_interval
        #: Deprecated alias of :attr:`flush_interval` (attribute reads
        #: only; the constructor keyword warns).
        self.checkpoint_interval = flush_interval
        self.rss_limit_mb = rss_limit_mb
        #: Root digest a caller-owned StateStore instance is bound to.
        self._store_bound: bytes | None = None
        self.resume = resume
        self.fingerprints = fingerprints
        self.audit = audit
        self.digest_size = digest_size
        self.tracer = tracer
        self.metrics = metrics
        self.max_worker_restarts = max_worker_restarts
        self.restart_backoff_seconds = restart_backoff_seconds
        self.max_partition_retries = max_partition_retries
        self.max_state_retries = max_state_retries
        self.quarantine = quarantine
        self.fault_plan = FaultPlan.from_env() if fault_plan is None else fault_plan
        self.heartbeat_seconds = heartbeat_seconds
        if progress is None:
            self.progress = progress_from_env()
        elif progress is False:
            self.progress = None
        elif progress is True:
            self.progress = ProgressReporter()
        else:
            self.progress = progress
        self.cancel = getattr(cancel, "is_set", cancel)
        if self.cancel is not None and not callable(self.cancel):
            raise TypeError("cancel must be callable or carry is_set()")
        #: The live ledger handle (heartbeats) and the bare run id
        #: (checkpoint/segment metadata); see the ``run`` parameter.
        self.run_handle = run if hasattr(run, "heartbeat") else None
        self.run_id = run if isinstance(run, str) else getattr(run, "run_id", None)
        #: :class:`EngineReport` of the most recent ``explore()`` call.
        self.last_report: EngineReport | None = None

    # -- public API -----------------------------------------------------------

    def explore(
        self,
        view: DeterministicSystemView,
        root: Hashable,
        prune: Callable[[Hashable], bool] | None = None,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> StateGraph:
        """Exhaust the failure-free graph reachable from ``root``.

        Raises :class:`~repro.engine.budget.BudgetExhausted` (an
        :class:`~repro.analysis.explorer.ExplorationBudget`) when a
        budget limit is hit, with progress stats and — when
        checkpointing is on — the snapshot to resume from.

        Store-backed runs materialize the returned
        :class:`~repro.analysis.explorer.StateGraph` from the store at
        the end — which decodes every state back into RAM.  For runs
        whose entire point is *not* holding the graph in memory, use
        :meth:`scan`.
        """
        run = self._execute(view, root, prune, tracer, metrics)
        try:
            if run.store_mode:
                graph = self._materialize_graph(run)
            else:
                graph = StateGraph(
                    root=root, states=StateSet(run.order), edges=run.edges
                )
        finally:
            self._close_store(run)
        if self.checkpoint_dir is not None:
            discard_checkpoint(self.checkpoint_dir, run.root_digest)
        return graph

    def scan(
        self,
        view: DeterministicSystemView,
        root: Hashable,
        prune: Callable[[Hashable], bool] | None = None,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> EngineReport:
        """Exhaust the graph without materializing it; returns the report.

        Identical exploration to :meth:`explore` — same budgets,
        checkpoints, and identical-graph discovery order — but nothing
        is decoded back at the end, so a disk-backed run's RSS stays
        bounded by the frontier window instead of the state count.
        This is the entry point for the 10^6+-state instances the
        in-memory engine cannot touch; the store (and its directory,
        when configured with a real path) retains the packed graph for
        later materialization or auditing.
        """
        run = self._execute(view, root, prune, tracer, metrics)
        self._close_store(run)
        if self.checkpoint_dir is not None:
            discard_checkpoint(self.checkpoint_dir, run.root_digest)
        return self.last_report

    def _execute(self, view, root, prune, tracer, metrics) -> _Run:
        tracer = self.tracer if tracer is None else tracer
        metrics = self.metrics if metrics is None else metrics
        run = self._start_run(view, root, prune, tracer, metrics)
        try:
            self._drive(run, metrics)
        except BaseException:
            # Budget raises, pool failures, KeyboardInterrupt: flush a
            # caller-owned store (so resume sees the durable prefix) and
            # close an engine-owned one before propagating.
            self._close_store(run)
            raise
        return run

    def _drive(self, run: _Run, metrics) -> None:
        span_attrs = {"workers": self.workers, "resumed": run.resumed}
        if self.run_id is not None:
            span_attrs["run"] = self.run_id
        run_span = start_span(run.tracer, "engine.run", **span_attrs)
        status = "ok"
        try:
            try:
                if run.store_mode:
                    if self.workers > 1:
                        self._drive_store_parallel(run)
                    else:
                        self._drive_store_sequential(run)
                elif self.workers > 1:
                    self._drive_parallel(run)
                else:
                    self._drive_sequential(run)
            except _Exhausted as signal:
                status = "exhausted"
                path = self._write_checkpoint(run)
                if metrics.enabled:
                    metrics.counter("explore.budget_exhausted").inc()
                    metrics.counter("engine.budget_exhausted").inc()
                raise BudgetExhausted(
                    resource=signal.resource,
                    limit=signal.limit,
                    states=run.states_count(),
                    transitions=run.transitions,
                    elapsed_seconds=run.elapsed(),
                    checkpoint=path,
                    resume_command=(
                        None if path is None else resume_hint(self.checkpoint_dir)
                    ),
                ) from None
        finally:
            end_span(
                run.tracer,
                run_span,
                status=status,
                states=run.states_count(),
                transitions=run.transitions,
                rounds=run.rounds,
            )
            if self.progress is not None:
                self.progress.update(
                    states=run.states_count(),
                    frontier=run.frontier_count(),
                    workers=self.workers,
                    elapsed=run.elapsed(),
                    budget=self.budget,
                    force=True,
                    spilled=(
                        run.store.stats().spilled_states if run.store_mode else None
                    ),
                    flush_ms=run.last_flush_ms,
                )
                self.progress.finish()
            self._heartbeat(run, force=True)
            self._publish(run)
            self.last_report = self._build_report(run)

    # -- run setup ------------------------------------------------------------

    def _make_index(self, codec: Codec):
        if self.audit:
            return FingerprintIndex(self.digest_size, audit=True, codec=codec)
        if self.fingerprints is True or (
            self.fingerprints == "auto" and self.workers > 1
        ):
            return FingerprintIndex(self.digest_size, codec=codec)
        return StateIndex(self.digest_size)

    def _start_run(self, view, root, prune, tracer, metrics) -> _Run:
        run = _Run()
        run.view = view
        run.root = root
        run.codec = Codec(self.digest_size)
        packed_root, run.root_digest = run.codec.encode_digest(root)
        run.prune = prune
        run.tracer = tracer
        run.tracing = tracer.enabled
        run.metrics = metrics
        run.index = self._make_index(run.codec)
        run.packed_of = {run.root_digest: packed_root}
        run.resumed_packed = None
        run.transitions = 0
        run.expanded = 0
        run.rounds = 0
        run.since_checkpoint = 0
        run.resumed = False
        run.recovered = 0
        run.elapsed_prior = 0.0
        run.action_intern = {}
        run.phase = {}
        run.orbit_hits = 0
        run.pruned_tasks = 0
        run.quarantined = []
        run.pool = None
        run.store = None
        run.store_mode = False
        run.owns_store = False
        run.task_slot = None
        run.segment_seq = 0
        run.last_flush_ms = None
        run.cache_published = (0, 0)
        if self.store is not None:
            self._start_run_external(run, packed_root, metrics)
            run.started = time.monotonic()
            run.deadline = Deadline(
                self.budget.deadline_seconds, already_elapsed=run.elapsed_prior
            )
            return run
        checkpoint = self._load_resumable(run)
        if checkpoint is not None:
            run.order = checkpoint.order
            run.edges = checkpoint.edges
            run.frontier = deque((state, None) for state in checkpoint.frontier)
            run.transitions = checkpoint.transitions
            run.elapsed_prior = checkpoint.elapsed_seconds
            run.resumed = True
            run.resumed_packed = checkpoint.packed_order
            if isinstance(run.index, StateIndex):
                run.index.add_states(run.order)
            elif run.resumed_packed is not None and not self.audit:
                # A packed (v2) checkpoint restores the digest set from
                # bytes alone — no state is re-encoded on resume.
                run.index.add_digests(
                    digest_of_packed(packed, self.digest_size)
                    for packed in run.resumed_packed
                )
            else:
                for state in run.order:
                    run.index.add(state)
            if metrics.enabled:
                metrics.counter("engine.resumes").inc()
        else:
            run.order = [root]
            run.edges = {}
            run.frontier = deque([(root, run.index.add(root, run.root_digest))])
        run.started = time.monotonic()
        run.deadline = Deadline(
            self.budget.deadline_seconds, already_elapsed=run.elapsed_prior
        )
        return run

    def _load_resumable(self, run: _Run) -> Checkpoint | None:
        if not self.resume or self.checkpoint_dir is None:
            return None
        path = find_checkpoint(self.checkpoint_dir, run.root_digest)
        if path is None:
            return None
        return load_checkpoint(path)

    # -- store-backed runs ----------------------------------------------------

    def _open_store(self, root_digest: bytes) -> tuple[StateStore, bool]:
        """(store, engine-owned) for one exploration of ``root_digest``."""
        configured = self.store
        if isinstance(configured, StateStore):
            if self._store_bound is not None and self._store_bound != root_digest:
                raise EngineError(
                    "a StateStore instance serves exactly one exploration; "
                    "this one is bound to root "
                    f"{self._store_bound.hex()} — pass a StoreConfig or URI "
                    "to let the engine open per-run stores"
                )
            self._store_bound = root_digest
            return configured, False
        return (
            open_store(configured, self.digest_size, namespace=root_digest.hex()),
            True,
        )

    def _start_run_external(self, run: _Run, packed_root: bytes, metrics) -> None:
        run.store_mode = True
        store, run.owns_store = self._open_store(run.root_digest)
        run.store = store
        run.task_slot = {task: slot for slot, task in enumerate(run.view.tasks)}
        resumed = False
        if self.resume and self.checkpoint_dir is not None:
            resumed = self._resume_external(run)
        if not resumed:
            if len(store) > 0:
                if not run.owns_store:
                    raise EngineError(
                        "the StateStore already holds an exploration; pass "
                        "resume=True to continue it or a fresh store to start over"
                    )
                # resume=False means start over, exactly as a stale
                # monolithic checkpoint would be overwritten.
                store.clear()
            store.add(run.root_digest, packed_root)
            store.push(run.root_digest)
        run.resumed = resumed
        if resumed and metrics.enabled:
            metrics.counter("engine.resumes").inc()

    def _resume_external(self, run: _Run) -> bool:
        store = run.store
        if store.durable:
            segment = load_segment(self.checkpoint_dir, run.root_digest)
            if segment is not None:
                if len(store) < segment.marks.get("states", 0):
                    raise CheckpointError(
                        "delta segment expects "
                        f"{segment.marks.get('states', 0)} states but the "
                        f"store holds {len(store)}; resume needs the store "
                        "directory the segment was written against"
                    )
                store.truncate(segment.marks)
                store.frontier_load(segment.frontier_blob)
                run.transitions = segment.transitions
                run.elapsed_prior = segment.elapsed_seconds
                run.expanded = segment.meta.get("expanded", 0)
                compact_segments(self.checkpoint_dir, run.root_digest, segment.seq)
                run.segment_seq = segment.seq + 1
                return True
        path = find_checkpoint(self.checkpoint_dir, run.root_digest)
        if path is None or path.is_dir():
            # No monolithic fallback (a bare segment directory cannot
            # seed a store that lost its states).
            return False
        self._seed_store_from_checkpoint(run, load_checkpoint(path))
        return True

    def _seed_store_from_checkpoint(self, run: _Run, checkpoint: Checkpoint) -> None:
        """Resume a store-backed run from a monolithic v1/v2 file.

        Replays the snapshot into the (empty) store: states in discovery
        order, expansions in commit order, frontier digests in expansion
        order — after which the run proceeds exactly as a segment resume
        would.
        """
        store = run.store
        if len(store) > 0:
            store.clear()
        codec = run.codec
        digest_of = {}
        if checkpoint.packed_order is not None:
            for state, packed in zip(checkpoint.order, checkpoint.packed_order):
                digest = digest_of_packed(packed, self.digest_size)
                if digest not in store:
                    store.add(digest, packed)
                digest_of.setdefault(id(state), digest)
        else:
            for state in checkpoint.order:
                packed, digest = codec.encode_digest(state)
                if digest not in store:
                    store.add(digest, packed)
                digest_of.setdefault(id(state), digest)

        def digest_for(state) -> bytes:
            digest = digest_of.get(id(state))
            if digest is None:
                digest = digest_of[id(state)] = codec.encode_digest(state)[1]
            return digest

        task_slot = run.task_slot
        for state, rows in checkpoint.edges.items():
            store.append_expansion(
                digest_for(state),
                [
                    (
                        task_slot[task],
                        store.action_slot(action),
                        digest_for(successor),
                    )
                    for task, action, successor in rows
                ],
            )
        for state in checkpoint.frontier:
            store.push(digest_for(state))
        run.transitions = checkpoint.transitions
        run.elapsed_prior = checkpoint.elapsed_seconds
        run.expanded = len(checkpoint.edges)

    def _close_store(self, run: _Run) -> None:
        if not run.store_mode or run.store is None:
            return
        if run.owns_store:
            run.store.close()
        else:
            run.store.flush()

    def _materialize_graph(self, run: _Run) -> StateGraph:
        """Decode the store back into a classic :class:`StateGraph`.

        Positions are keyed by digest, never by ``==`` — two ==-equal
        states with distinct encodings are distinct graph nodes (the
        same invariant the packed checkpoint format documents).
        """
        store = run.store
        codec = run.codec
        order: list = []
        index_of: dict[bytes, int] = {}
        for packed in store.iter_packed():
            digest = digest_of_packed(packed, self.digest_size)
            index_of.setdefault(digest, len(order))
            order.append(codec.decode(packed))
        tasks = run.view.tasks
        actions = store.actions()
        edges: dict = {}
        for parent_digest, rows in store.iter_expansions():
            edges[order[index_of[parent_digest]]] = [
                (tasks[task], actions[action], order[index_of[succ]])
                for task, action, succ in rows
            ]
        return StateGraph(root=run.root, states=StateSet(order), edges=edges)

    # -- drivers --------------------------------------------------------------

    def _drive_sequential(self, run: _Run) -> None:
        budget = self.budget
        cancel = self.cancel
        deadline_enabled = run.deadline.enabled
        polling = deadline_enabled or cancel is not None
        timing = run.metrics.enabled
        progress = self.progress
        handle = self.run_handle
        while run.frontier:
            if polling and run.expanded % _DEADLINE_STRIDE == 0:
                if cancel is not None and cancel():
                    raise _Exhausted("cancelled", 0.0)
                if deadline_enabled and run.deadline.expired():
                    raise _Exhausted("deadline", budget.deadline_seconds)
            if progress is not None and run.expanded % 256 == 0:
                progress.update(
                    states=len(run.order),
                    frontier=len(run.frontier),
                    workers=1,
                    elapsed=run.elapsed(),
                    budget=budget,
                )
            if handle is not None and run.expanded % 256 == 0:
                self._heartbeat(run)
            state, digest = run.frontier.popleft()
            if run.prune is not None and run.prune(state):
                self._commit_pruned(run, state)
            elif timing:
                before = time.perf_counter()
                out = run.view.successors(state)
                run.phase["expand_seconds"] = run.phase.get(
                    "expand_seconds", 0.0
                ) + (time.perf_counter() - before)
                self._commit(run, state, digest, out, None)
            else:
                self._commit(run, state, digest, run.view.successors(state), None)
            self._maybe_checkpoint(run)

    def _drive_parallel(self, run: _Run) -> None:
        budget = self.budget
        pool = WorkerPool(
            self.workers,
            run.view,
            run.prune,
            self.digest_size,
            self.audit,
            expected_states=budget.max_states,
            max_worker_restarts=self.max_worker_restarts,
            restart_backoff_seconds=self.restart_backoff_seconds,
            max_partition_retries=self.max_partition_retries,
            max_state_retries=self.max_state_retries,
            quarantine=self.quarantine,
            fault_plan=self.fault_plan,
            heartbeat_seconds=self.heartbeat_seconds,
            tracer=run.tracer,
            metrics=run.metrics,
        ).start()
        run.pool = pool
        codec = run.codec
        # Coordinator-side tables for the packed wire protocol.
        # ``packed_of`` (digest -> canonical bytes) is the primary one:
        # every digest in the index has an entry — seeded here from the
        # root / the checkpoint, maintained from the novel lists in
        # worker replies, consulted for bootstrap pairs and checkpoints.
        # ``state_of`` (digest -> decoded state) is the coordinator's
        # decode memo: each distinct state is decoded exactly once, at
        # first discovery in the merge loop.
        packed_of: dict = run.packed_of
        state_of: dict = {run.root_digest: run.root}
        if run.resumed:
            if run.resumed_packed is not None:
                for state, packed in zip(run.order, run.resumed_packed):
                    digest = digest_of_packed(packed, self.digest_size)
                    packed_of.setdefault(digest, packed)
                    state_of.setdefault(digest, state)
            else:
                for state in run.order:
                    packed, digest = codec.encode_digest(state)
                    packed_of.setdefault(digest, packed)
                    state_of.setdefault(digest, state)
        if pool.visited is not None:
            # Seed global membership so workers do not re-ship states the
            # coordinator already holds (the root, a resumed graph).
            for digest in packed_of:
                pool.visited.add(digest)
        tasks = run.view.tasks
        intern_action = run.action_intern
        cancel = self.cancel
        try:
            while run.frontier:
                if cancel is not None and cancel():
                    raise _Exhausted("cancelled", 0.0)
                if run.deadline.expired():
                    raise _Exhausted("deadline", budget.deadline_seconds)
                items = []
                for state, digest in run.frontier:
                    if digest is None:
                        digest = run.index.digest(state)
                        state_of.setdefault(digest, state)
                    items.append((state, digest))
                run.frontier.clear()
                round_span = start_span(
                    run.tracer, "round", round=run.rounds + 1, states=len(items)
                )
                results = pool.run_round(
                    run.rounds + 1,
                    items,
                    packed_of,
                    run.phase,
                    round_span_id=None if round_span is None else round_span.span_id,
                )
                # Merge in exact frontier order: this loop — not the
                # workers — is where states are discovered, which is what
                # keeps the graph identical to the sequential one.
                merge_started = time.perf_counter()
                position = 0
                try:
                    for position, (state, digest) in enumerate(items):
                        result = results[position]
                        if result == PRUNED:
                            self._commit_pruned(run, state)
                            continue
                        if result == QUARANTINED:
                            self._commit_quarantined(run, state)
                            continue
                        out = []
                        digests = []
                        if self.audit:
                            # Audit rows carry packed bytes per edge, and
                            # each is decoded on its own (never resolved
                            # through the digest-keyed memo) so the
                            # audited index still compares full *values*
                            # and a digest collision cannot hide behind
                            # the wire format.
                            for task_index, action, succ_digest, succ_packed in result:
                                out.append(
                                    (
                                        tasks[task_index],
                                        intern_action.setdefault(action, action),
                                        codec.decode(succ_packed),
                                    )
                                )
                                digests.append(succ_digest)
                        else:
                            for task_index, action, succ_digest in result:
                                succ = state_of.get(succ_digest)
                                if succ is None:
                                    packed = packed_of.get(succ_digest)
                                    if packed is None:
                                        packed = self._recover_packed(
                                            run, state, succ_digest
                                        )
                                    succ = codec.decode(packed)
                                    state_of[succ_digest] = succ
                                out.append(
                                    (
                                        tasks[task_index],
                                        intern_action.setdefault(action, action),
                                        succ,
                                    )
                                )
                                digests.append(succ_digest)
                        self._commit(run, state, digest, out, digests)
                except _Exhausted:
                    # _commit repaired the frontier as [state, *partial-adds,
                    # *earlier-discoveries]; slot the round's unmerged tail in
                    # right after the offending state to preserve BFS order.
                    state_entry = run.frontier.popleft()
                    run.frontier.extendleft(reversed(items[position + 1 :]))
                    run.frontier.appendleft(state_entry)
                    end_span(run.tracer, round_span, status="exhausted")
                    raise
                finally:
                    run.phase["merge_seconds"] = run.phase.get(
                        "merge_seconds", 0.0
                    ) + (time.perf_counter() - merge_started)
                run.rounds += 1
                if run.tracing:
                    run.tracer.emit(
                        WORKER_ROUND,
                        round=run.rounds,
                        expanded=len(items),
                        shards=pool.last_round_producers,
                        frontier=len(run.frontier),
                    )
                end_span(run.tracer, round_span, frontier=len(run.frontier))
                if self.progress is not None:
                    self.progress.update(
                        states=len(run.order),
                        frontier=len(run.frontier),
                        workers=self.workers,
                        elapsed=run.elapsed(),
                        budget=budget,
                    )
                self._heartbeat(run)
                self._maybe_checkpoint(run)
        finally:
            pool.stop()

    # -- store-backed (digest-native) drivers ---------------------------------
    #
    # These mirror _drive_sequential/_drive_parallel with one structural
    # difference: no decoded state outlives its own expansion.  The
    # frontier, visited set, and edges live in the StateStore keyed by
    # digest; a state is decoded exactly when it is expanded (or, in
    # parallel runs, inside a worker) and dropped immediately after, so
    # RSS is bounded by the frontier window instead of the state count.
    # Discovery still happens in exact frontier order — same BFS, same
    # graph.

    def _drive_store_sequential(self, run: _Run) -> None:
        budget = self.budget
        cancel = self.cancel
        store = run.store
        codec = run.codec
        view = run.view
        prune = run.prune
        task_slot = run.task_slot
        deadline_enabled = run.deadline.enabled
        polling = deadline_enabled or cancel is not None
        timing = run.metrics.enabled
        progress = self.progress
        handle = self.run_handle
        while store.frontier_len():
            if polling and run.expanded % _DEADLINE_STRIDE == 0:
                if cancel is not None and cancel():
                    raise _Exhausted("cancelled", 0.0)
                if deadline_enabled and run.deadline.expired():
                    raise _Exhausted("deadline", budget.deadline_seconds)
            if progress is not None and run.expanded % 256 == 0:
                progress.update(
                    states=len(store),
                    frontier=store.frontier_len(),
                    workers=1,
                    elapsed=run.elapsed(),
                    budget=budget,
                    spilled=store.stats().spilled_states,
                    flush_ms=run.last_flush_ms,
                )
            if handle is not None and run.expanded % 256 == 0:
                self._heartbeat(run)
            digest = store.pop()
            state = codec.decode(store.get(digest))
            if prune is not None and prune(state):
                self._commit_external_empty(run, digest)
            else:
                if timing:
                    before = time.perf_counter()
                    out = view.successors(state)
                    run.phase["expand_seconds"] = run.phase.get(
                        "expand_seconds", 0.0
                    ) + (time.perf_counter() - before)
                else:
                    out = view.successors(state)
                rows = []
                for task, action, successor in out:
                    packed, succ_digest = codec.encode_digest(successor)
                    rows.append((task_slot[task], action, succ_digest, packed))
                self._commit_external(run, digest, rows)
            self._maybe_checkpoint(run)

    def _drive_store_parallel(self, run: _Run) -> None:
        budget = self.budget
        store = run.store
        pool = WorkerPool(
            self.workers,
            run.view,
            run.prune,
            self.digest_size,
            self.audit,
            expected_states=budget.max_states,
            max_worker_restarts=self.max_worker_restarts,
            restart_backoff_seconds=self.restart_backoff_seconds,
            max_partition_retries=self.max_partition_retries,
            max_state_retries=self.max_state_retries,
            quarantine=self.quarantine,
            fault_plan=self.fault_plan,
            heartbeat_seconds=self.heartbeat_seconds,
            tracer=run.tracer,
            metrics=run.metrics,
        ).start()
        run.pool = pool
        codec = run.codec
        # The wire protocol's packed_of table, backed by the store: the
        # store serves every already-discovered digest; novel bytes from
        # worker replies stage in an in-RAM overlay for the duration of
        # one round's merge (they must transit RAM anyway — the reply
        # pipe just delivered them) and reach the store via _commit.
        # The shared visited filter starts cold on purpose: it is a
        # filter, never truth, and re-seeding it with 10^7 digests would
        # cost more than the duplicate shipping it avoids.
        packed_of = _StorePackedMap(store)
        cancel = self.cancel
        try:
            while store.frontier_len():
                if cancel is not None and cancel():
                    raise _Exhausted("cancelled", 0.0)
                if run.deadline.expired():
                    raise _Exhausted("deadline", budget.deadline_seconds)
                items = []
                while True:
                    digest = store.pop()
                    if digest is None:
                        break
                    items.append((None, digest))
                round_span = start_span(
                    run.tracer, "round", round=run.rounds + 1, states=len(items)
                )
                results = pool.run_round(
                    run.rounds + 1,
                    items,
                    packed_of,
                    run.phase,
                    round_span_id=None if round_span is None else round_span.span_id,
                )
                merge_started = time.perf_counter()
                position = 0
                try:
                    for position, (_, digest) in enumerate(items):
                        result = results[position]
                        if result == PRUNED:
                            self._commit_external_empty(run, digest)
                            continue
                        if result == QUARANTINED:
                            self._commit_external_empty(run, digest)
                            run.quarantined.append(codec.decode(store.get(digest)))
                            continue
                        rows = []
                        for task_index, action, succ_digest in result:
                            packed = packed_of.get(succ_digest)
                            if packed is None:
                                packed = self._recover_packed_external(
                                    run, digest, succ_digest, packed_of
                                )
                            rows.append((task_index, action, succ_digest, packed))
                        self._commit_external(run, digest, rows)
                except _Exhausted:
                    # _commit_external re-queued the offending digest at
                    # the head; slot the round's unmerged tail right
                    # after it to preserve BFS order.
                    state_digest = store.pop()
                    for _, tail_digest in reversed(items[position + 1 :]):
                        store.push_front(tail_digest)
                    store.push_front(state_digest)
                    end_span(run.tracer, round_span, status="exhausted")
                    raise
                finally:
                    packed_of.pending.clear()
                    run.phase["merge_seconds"] = run.phase.get(
                        "merge_seconds", 0.0
                    ) + (time.perf_counter() - merge_started)
                run.rounds += 1
                if run.tracing:
                    run.tracer.emit(
                        WORKER_ROUND,
                        round=run.rounds,
                        expanded=len(items),
                        shards=pool.last_round_producers,
                        frontier=store.frontier_len(),
                    )
                end_span(run.tracer, round_span, frontier=store.frontier_len())
                if self.progress is not None:
                    self.progress.update(
                        states=len(store),
                        frontier=store.frontier_len(),
                        workers=self.workers,
                        elapsed=run.elapsed(),
                        budget=budget,
                        spilled=store.stats().spilled_states,
                        flush_ms=run.last_flush_ms,
                    )
                self._heartbeat(run)
                self._maybe_checkpoint(run)
        finally:
            pool.stop()

    def _commit_external_empty(self, run: _Run, digest: bytes) -> None:
        """A pruned or quarantined expansion: node kept, no outgoing edges."""
        run.store.append_expansion(digest, [])
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(STATE_EXPLORED, edges=0, pruned=True)

    def _commit_external(self, run: _Run, digest: bytes, out) -> None:
        """The store-backed merge step: discover successors, log the expansion.

        ``out`` rows are ``(task_slot, action, succ_digest, packed)``.
        Budget breaches leave the identical checkpoint-consistent shape
        the classic :meth:`_commit` documents: the offending state back
        at the frontier's head (expansion record withheld) with any
        successors discovered before the breach already in the store and
        queued behind it.
        """
        budget = self.budget
        store = run.store
        if (
            budget.max_transitions is not None
            and run.transitions + len(out) > budget.max_transitions
        ):
            store.push_front(digest)
            raise _Exhausted("transitions", budget.max_transitions)
        intern_action = run.action_intern
        rows = []
        for task_slot, action, succ_digest, packed in out:
            if succ_digest not in store:
                if budget.max_states is not None and len(store) >= budget.max_states:
                    store.push_front(digest)
                    raise _Exhausted("states", budget.max_states)
                store.add(succ_digest, packed)
                store.push(succ_digest)
            rows.append(
                (
                    task_slot,
                    store.action_slot(intern_action.setdefault(action, action)),
                    succ_digest,
                )
            )
        store.append_expansion(digest, rows)
        run.transitions += len(out)
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(
                STATE_EXPLORED, edges=len(out), frontier=store.frontier_len()
            )

    def _recover_packed_external(
        self, run: _Run, parent_digest: bytes, digest: bytes, packed_of
    ) -> bytes:
        """Store-mode twin of :meth:`_recover_packed`: re-derive lost bytes
        by re-expanding the parent (decoded from the store) in-process."""
        parent = run.codec.decode(run.store.get(parent_digest))
        recovered = None
        for _task, _action, post in run.view.successors(parent):
            packed, post_digest = run.codec.encode_digest(post)
            packed_of.setdefault(post_digest, packed)
            if post_digest == digest:
                recovered = packed
        if recovered is None:
            raise EngineError(
                f"worker reply referenced digest {digest.hex()} that is not "
                "a successor of its parent state; the exploration is "
                "corrupt (please report this)"
            )
        run.recovered += 1
        if run.metrics.enabled:
            run.metrics.counter("engine.recovered_states").inc()
        return recovered

    # -- the single merge step ------------------------------------------------

    def _commit_pruned(self, run: _Run, state) -> None:
        run.edges[state] = []
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(STATE_EXPLORED, edges=0, pruned=True)

    def _commit_quarantined(self, run: _Run, state) -> None:
        # The state keeps its node but loses its outgoing edges — the
        # documented breach of the identical-graph guarantee, surfaced
        # via run.quarantined -> EngineReport (the pool already emitted
        # the state_quarantined trace event at detection time).
        run.edges[state] = []
        run.expanded += 1
        run.since_checkpoint += 1
        run.quarantined.append(state)

    def _commit(self, run: _Run, state, digest, out, succ_digests) -> None:
        """Discover ``out``'s successors and record the expansion.

        On a budget breach the method leaves the run in the documented
        checkpoint-consistent shape — the offending state is requeued at
        the frontier's head (its edges entry withheld) with any
        partially-added successors behind it — then signals the driver.
        """
        budget = self.budget
        if (
            budget.max_transitions is not None
            and run.transitions + len(out) > budget.max_transitions
        ):
            run.frontier.appendleft((state, digest))
            raise _Exhausted("transitions", budget.max_transitions)
        # With a state-keyed index the visited set doubles as an intern
        # table: edges reference the first-seen object per state (and per
        # action), so the retained graph holds one object per distinct
        # value instead of one per discovery.
        resolve = getattr(run.index, "resolve", None)
        intern_action = run.action_intern
        rebuilt = [] if resolve is not None else None
        added = []
        for position, (task, action, successor) in enumerate(out):
            known, succ_digest = run.index.check(
                successor, succ_digests[position] if succ_digests else None
            )
            if known:
                if rebuilt is not None:
                    rebuilt.append(
                        (
                            task,
                            intern_action.setdefault(action, action),
                            resolve(successor),
                        )
                    )
                continue
            if budget.max_states is not None and len(run.index) >= budget.max_states:
                run.frontier.extend(added)
                run.frontier.appendleft((state, digest))
                raise _Exhausted("states", budget.max_states)
            succ_digest = run.index.add(successor, succ_digest)
            run.order.append(successor)
            added.append((successor, succ_digest))
            if rebuilt is not None:
                rebuilt.append(
                    (task, intern_action.setdefault(action, action), successor)
                )
        run.frontier.extend(added)
        run.edges[state] = out if rebuilt is None else rebuilt
        run.transitions += len(out)
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(
                STATE_EXPLORED, edges=len(out), frontier=len(run.frontier)
            )

    # -- missing-bytes recovery ----------------------------------------------

    def _recover_packed(self, run: _Run, parent, digest: bytes) -> bytes:
        """Re-derive packed bytes a worker reply referenced but never shipped.

        Two rare paths get here: the first inserter of ``digest`` into
        the shared visited table died before its reply left (and no
        retried chunk re-shipped it), or a torn table slot answered
        "present" to a digest nobody holds.  Either way the parent state
        is already known and the view is deterministic, so recomputing
        ``successors(parent)`` in-process reproduces the exact successor
        — the identical-graph guarantee never rests on the table.
        """
        recovered = None
        packed_of = run.packed_of
        for _task, _action, post in run.view.successors(parent):
            packed, post_digest = run.codec.encode_digest(post)
            packed_of.setdefault(post_digest, packed)
            if post_digest == digest:
                recovered = packed
        if recovered is None:
            raise EngineError(
                f"worker reply referenced digest {digest.hex()} that is not "
                "a successor of its parent state; the exploration is "
                "corrupt (please report this)"
            )
        run.recovered += 1
        if run.metrics.enabled:
            run.metrics.counter("engine.recovered_states").inc()
        return recovered

    # -- run ledger heartbeats ------------------------------------------------

    def _heartbeat(self, run: _Run, force: bool = False) -> None:
        """Refresh the run-ledger heartbeat file (throttled by the handle).

        Called on the progress cadence, never per expansion; with no
        ledger handle attached this is one attribute test.
        """
        handle = self.run_handle
        if handle is None:
            return
        flush_ms = run.last_flush_ms
        spilled = None
        if run.store_mode:
            stats = run.store.stats()
            spilled = stats.spilled_states
            if flush_ms is None and stats.flushes:
                # The engine has not driven a flush yet, but the backend
                # has flushed on its own buffer cadence: report its last
                # flush so the latency shows up within one heartbeat
                # interval of any flush happening at all.
                flush_ms = (
                    stats.last_flush_seconds
                    or stats.flush_seconds / stats.flushes
                ) * 1000.0
        handle.heartbeat(
            force=force,
            states=run.states_count(),
            frontier=run.frontier_count(),
            workers=self.workers,
            elapsed=run.elapsed(),
            transitions=run.transitions,
            rounds=run.rounds,
            flush_ms=None if flush_ms is None else round(flush_ms, 3),
            spilled=spilled,
            phases={name: round(value, 3) for name, value in run.phase.items()},
        )

    # -- store flush instrumentation ------------------------------------------

    def _flush_store(self, run: _Run) -> None:
        """Flush the store and publish the flush live (latency, spill depth).

        Before this the store counters surfaced only in the end-of-run
        :class:`EngineReport`; a stalled disk backend was invisible until
        the run finished.  The flush cadence is the natural publication
        point — it is already off the hot loop.
        """
        before = time.perf_counter()
        run.store.flush()
        run.last_flush_ms = (time.perf_counter() - before) * 1000.0
        metrics = run.metrics
        if metrics.enabled:
            metrics.histogram("engine.store.flush_ms").observe(run.last_flush_ms)
            metrics.gauge("engine.store.spill_depth").set(
                run.store.stats().spilled_states
            )
            self._publish_cache_counters(run)

    def _publish_cache_counters(self, run: _Run) -> None:
        """Publish codec decode-cache hits/misses accumulated since last time.

        Idempotent against :meth:`_publish`: ``run.cache_published``
        remembers what already reached the registry, so live flushes and
        the end-of-run publication never double-count.
        """
        hits, misses = run.codec.stats()
        if run.pool is not None:
            hits += run.pool.cache_hits
            misses += run.pool.cache_misses
        published_hits, published_misses = run.cache_published
        metrics = run.metrics
        if hits > published_hits:
            metrics.counter("engine.codec.cache_hits").inc(hits - published_hits)
        if misses > published_misses:
            metrics.counter("engine.codec.cache_misses").inc(misses - published_misses)
        run.cache_published = (max(hits, published_hits), max(misses, published_misses))

    # -- checkpointing --------------------------------------------------------

    def _maybe_checkpoint(self, run: _Run) -> None:
        if run.store_mode:
            # The view memoizes every (state, task) transition it
            # computes — useful for analysis passes that re-walk a
            # materialized graph, but an unbounded decoded-state cache
            # that defeats the store's RSS ceiling.  Trimming only on
            # the flush cadence is not enough: between flushes the memo
            # window alone (flush_interval parents x branching entries,
            # each pinning a decoded composite state) reaches hundreds
            # of MB on 10^5-state instances.  So cap it by entry count
            # on every expansion — an O(1) length check.  BFS expands
            # each parent exactly once, so dropping the memo costs at
            # most a recompute of in-flight states.
            trim = getattr(run.view, "trim_step_cache", None)
            if trim is not None:
                trim(STEP_CACHE_LIMIT)
            # Same story for the codec's interning caches: they pin
            # every distinct component object ever encoded or decoded,
            # which for a streaming run is the whole history.
            run.codec.trim(CODEC_CACHE_LIMIT)
        if run.since_checkpoint < self.flush_interval:
            return
        if self.checkpoint_dir is not None:
            self._write_checkpoint(run)
        elif run.store_mode:
            # No checkpointing, but the store's write buffers must still
            # drain on the flush cadence or a disk backend quietly grows
            # an unbounded pending list in RAM.
            self._flush_store(run)
            run.since_checkpoint = 0

    def _checkpoint_meta(self, run: _Run) -> dict:
        """Checkpoint/segment metadata: progress marks plus run identity."""
        meta = {"expanded": run.expanded}
        if self.run_id is not None:
            meta["run_id"] = self.run_id
        return meta

    def _write_checkpoint(self, run: _Run) -> Path | None:
        if self.checkpoint_dir is None:
            return None
        states = run.states_count()
        checkpoint_span = start_span(run.tracer, "checkpoint", states=states)
        if run.store_mode and run.store.durable:
            path = self._write_segment(run)
        elif run.store_mode:
            # A memory store is not durable, so delta segments would
            # reference states that die with the process: snapshot
            # monolithically (decoding through the store), exactly as a
            # classic run would.
            path = self._write_monolithic_from_store(run)
        else:
            path = save_checkpoint(
                self.checkpoint_dir,
                Checkpoint(
                    root=run.root,
                    root_digest=run.root_digest,
                    order=run.order,
                    edges=run.edges,
                    frontier=[state for state, _ in run.frontier],
                    transitions=run.transitions,
                    elapsed_seconds=run.elapsed(),
                    digest_size=self.digest_size,
                    workers=self.workers,
                    meta=self._checkpoint_meta(run),
                ),
                codec=run.codec,
            )
        run.since_checkpoint = 0
        if run.metrics.enabled:
            run.metrics.counter("engine.checkpoints_written").inc()
        if run.tracing:
            run.tracer.emit(CHECKPOINT_SAVED, states=states, path=str(path))
        end_span(run.tracer, checkpoint_span, path=str(path))
        return path

    def _write_segment(self, run: _Run) -> Path:
        """One streaming delta segment: flush the store, snapshot the rest."""
        store = run.store
        self._flush_store(run)
        save_segment(
            self.checkpoint_dir,
            Segment(
                root_digest=run.root_digest,
                digest_size=self.digest_size,
                seq=run.segment_seq,
                states=len(store),
                transitions=run.transitions,
                elapsed_seconds=run.elapsed(),
                workers=self.workers,
                marks=store.marks(),
                frontier_blob=store.frontier_snapshot(),
                store_uri=store.config.to_uri(),
                meta=self._checkpoint_meta(run),
            ),
        )
        run.segment_seq += 1
        return segment_dir(self.checkpoint_dir, run.root_digest)

    def _write_monolithic_from_store(self, run: _Run) -> Path:
        graph = self._materialize_graph(run)
        frontier_digests = run.store.frontier_snapshot()
        size = self.digest_size
        codec = run.codec
        store = run.store
        frontier = [
            codec.decode(store.get(frontier_digests[offset : offset + size]))
            for offset in range(0, len(frontier_digests), size)
        ]
        return save_checkpoint(
            self.checkpoint_dir,
            Checkpoint(
                root=run.root,
                root_digest=run.root_digest,
                order=list(graph.states),
                edges=graph.edges,
                frontier=frontier,
                transitions=run.transitions,
                elapsed_seconds=run.elapsed(),
                digest_size=self.digest_size,
                workers=self.workers,
                meta=self._checkpoint_meta(run),
            ),
            codec=codec,
        )

    # -- reporting ------------------------------------------------------------

    def _build_report(self, run: _Run) -> EngineReport:
        pool = run.pool
        stats = run.store.stats() if run.store_mode else None
        peak_rss_kb = 0
        if _resource is not None:
            peak_rss_kb = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        return EngineReport(
            states=run.states_count(),
            transitions=run.transitions,
            rounds=run.rounds,
            elapsed_seconds=run.elapsed(),
            workers=self.workers,
            degraded=bool(pool is not None and pool.local and self.workers > 1),
            worker_failures=0 if pool is None else pool.worker_failures,
            worker_respawns=0 if pool is None else pool.worker_respawns,
            partitions_reassigned=0 if pool is None else pool.partitions_reassigned,
            quarantined=(
                ()
                if pool is None
                else tuple(digest.hex() for _, digest in pool.quarantined)
            ),
            quarantined_states=(
                tuple(run.quarantined)
                if run.store_mode
                else (
                    ()
                    if pool is None
                    else tuple(state for state, _ in pool.quarantined)
                )
            ),
            worker_rss_kb=(
                ()
                if pool is None
                else tuple(
                    pool.worker_rss_kb.get(worker, 0)
                    for worker in range(pool.workers)
                )
            ),
            recovered_states=run.recovered,
            store_backend="memory" if stats is None else stats.backend,
            spilled_states=0 if stats is None else stats.spilled_states,
            store_flushes=0 if stats is None else stats.flushes,
            store_flush_seconds=0.0 if stats is None else stats.flush_seconds,
            peak_rss_kb=peak_rss_kb,
            rss_limit_mb=self.rss_limit_mb,
            phase_seconds={
                name: round(value, 6) for name, value in run.phase.items()
            },
        )

    # -- metrics --------------------------------------------------------------

    def _publish(self, run: _Run) -> None:
        # Reduction stats gathered by the pool (worker replies) belong to
        # the run, metrics or not.
        if run.pool is not None:
            run.orbit_hits += run.pool.orbit_hits
            run.pruned_tasks += run.pool.pruned_tasks
            run.pool.orbit_hits = run.pool.pruned_tasks = 0
        metrics = run.metrics
        if not metrics.enabled:
            return
        metrics.counter("explore.runs").inc()
        metrics.counter("explore.states").inc(run.states_count())
        metrics.counter("explore.transitions").inc(run.transitions)
        metrics.gauge("explore.last_run_states").set(run.states_count())
        metrics.counter("engine.runs").inc()
        metrics.counter("engine.expanded").inc(run.expanded)
        metrics.gauge("engine.workers").set(self.workers)
        # Codec component-cache effectiveness, coordinator + workers
        # combined (the scaling bench asserts on the hit rate).  Delta
        # published: live store flushes already pushed a prefix.
        self._publish_cache_counters(run)
        if run.pool is not None and run.pool.visited_overflows:
            metrics.counter("engine.visited.overflows").inc(
                run.pool.visited_overflows
            )
        if run.rounds:
            metrics.counter("engine.rounds").inc(run.rounds)
        if run.resumed:
            metrics.gauge("engine.resumed_states").set(run.states_count())
        if run.store_mode:
            stats = run.store.stats()
            metrics.counter("engine.store.flushes").inc(stats.flushes)
            if stats.spilled_states:
                metrics.counter("engine.store.spilled").inc(stats.spilled_states)
        for name, seconds in run.phase.items():
            if seconds:
                metrics.counter(f"engine.phase.{name}").inc(seconds)
        # Sequential runs accumulate reduction stats inside the view
        # itself; drain them here.  (The drain is inside the
        # metrics-enabled guard on purpose: engines running with
        # NULL_METRICS — e.g. the audit/compare helpers — must leave the
        # view's counters for their caller to read.)
        drain = getattr(run.view, "drain_stats", None)
        if drain is not None:
            orbit_hits, pruned_tasks = drain()
            run.orbit_hits += orbit_hits
            run.pruned_tasks += pruned_tasks
        if run.orbit_hits:
            metrics.counter("engine.reduction.orbit_hits").inc(run.orbit_hits)
        if run.pruned_tasks:
            metrics.counter("engine.reduction.pruned_tasks").inc(run.pruned_tasks)
