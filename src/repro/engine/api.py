"""The :class:`ExplorationEngine` facade.

The engine supersedes :func:`repro.analysis.explorer.explore` as the
default way to exhaust failure-free state spaces: same graph, same
semantics, plus worker-pool parallelism, fingerprint-based visited sets,
disk checkpoints with resume, and a unified :class:`~repro.engine.budget.Budget`
(states / transitions / wall-clock deadline) in place of the bare
``max_states`` int.  ``explore()`` itself remains as a thin wrapper over
a one-worker engine, so nothing downstream had to change.

Identical-graph guarantee
-------------------------

For a run that completes (no budget raise), the engine returns a
:class:`~repro.analysis.explorer.StateGraph` **identical to the
sequential one, including discovery order**, at every worker count.
Why: breadth-first search over a deterministic view is a pure function
of the root once three choices are fixed — the expansion order of the
frontier, the successor order within an expansion, and the dedup
relation.  The engine fixes all three identically in both drivers:

* the frontier is FIFO, and the parallel driver *merges* worker results
  in exact frontier order (workers only precompute expansions; the
  single-threaded merge loop is the one that discovers states), so the
  concatenation of rounds replays the sequential queue;
* successor order is ``view.successors`` order, computed per state
  either way;
* dedup is "first discovery wins", applied in merge order.

Parallelism therefore changes *where* ``successors()`` runs, never
*what* the search sees.  The only caveat is dedup by digest (used by the
parallel driver and opt-in sequentially): a fingerprint collision would
merge two distinct states.  The default 16-byte digests make that
probability ~``n^2/2^129``; collision-audit mode
(:class:`~repro.engine.fingerprint.FingerprintIndex`) upgrades the
guarantee to a checked one.  Interrupted runs may differ from a
sequential interrupt in *which* prefix they explored, but resuming any
checkpoint converges to the same completed graph.
"""

from __future__ import annotations

import time
from collections import deque
from pathlib import Path
from typing import Callable, Hashable

from ..analysis.explorer import StateGraph, StateSet
from ..analysis.view import DeterministicSystemView
from ..obs.events import CHECKPOINT_SAVED, STATE_EXPLORED, WORKER_ROUND
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from .budget import DEFAULT_BUDGET, Budget, BudgetExhausted, Deadline
from .checkpoint import (
    Checkpoint,
    discard_checkpoint,
    find_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from .fingerprint import DIGEST_SIZE, FingerprintIndex, StateIndex, fingerprint, shard_of
from .parallel import (
    PRUNED,
    expand_batch,
    expand_batches_inline,
    worker_pool,
)

#: Sequential deadline checks happen every this many expansions.
_DEADLINE_STRIDE = 512


class _Exhausted(Exception):
    """Internal signal: a budget limit was hit (frontier already repaired)."""

    def __init__(self, resource: str, limit: float) -> None:
        self.resource = resource
        self.limit = limit


class _Run:
    """Mutable working state of one exploration."""

    __slots__ = (
        "view",
        "root",
        "root_digest",
        "prune",
        "tracer",
        "tracing",
        "metrics",
        "index",
        "order",
        "edges",
        "frontier",
        "transitions",
        "expanded",
        "rounds",
        "since_checkpoint",
        "resumed",
        "started",
        "elapsed_prior",
        "deadline",
    )

    def elapsed(self) -> float:
        return self.elapsed_prior + (time.monotonic() - self.started)


class ExplorationEngine:
    """Parallel, checkpointed, budgeted exploration of failure-free graphs.

    Parameters
    ----------
    workers:
        Expansion processes.  ``1`` (the default) runs in-process; so
        does any value when the platform lacks the ``fork`` start method
        (the system under analysis is not picklable, so workers must
        inherit it — see :mod:`repro.engine.parallel`).
    budget:
        The :class:`Budget`; defaults to the explorer's historical
        ``Budget(max_states=200_000)``.
    checkpoint_dir:
        When set, the engine snapshots frontier + visited set + edges
        into this directory every ``checkpoint_interval`` expansions and
        on budget exhaustion; files are named by the root state's digest
        and deleted when their exploration completes.
    resume:
        When true (and ``checkpoint_dir`` holds a checkpoint for this
        root), continue from the snapshot instead of starting over.
    fingerprints:
        ``"auto"`` (digests for parallel runs, full states
        sequentially), or a bool to force either visited-set
        representation.  Parallel runs always shard by digest.
    audit:
        Collision-audit mode: keep full states per digest and raise
        :class:`~repro.engine.fingerprint.FingerprintCollision` if two
        unequal states ever hash alike.  Implies digest dedup.
    """

    def __init__(
        self,
        workers: int = 1,
        budget: Budget | None = None,
        *,
        checkpoint_dir: str | Path | None = None,
        checkpoint_interval: int = 50_000,
        resume: bool = False,
        fingerprints: bool | str = "auto",
        audit: bool = False,
        digest_size: int = DIGEST_SIZE,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.workers = workers
        self.budget = DEFAULT_BUDGET if budget is None else budget
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.checkpoint_interval = checkpoint_interval
        self.resume = resume
        self.fingerprints = fingerprints
        self.audit = audit
        self.digest_size = digest_size
        self.tracer = tracer
        self.metrics = metrics

    # -- public API -----------------------------------------------------------

    def explore(
        self,
        view: DeterministicSystemView,
        root: Hashable,
        prune: Callable[[Hashable], bool] | None = None,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> StateGraph:
        """Exhaust the failure-free graph reachable from ``root``.

        Raises :class:`~repro.engine.budget.BudgetExhausted` (an
        :class:`~repro.analysis.explorer.ExplorationBudget`) when a
        budget limit is hit, with progress stats and — when
        checkpointing is on — the snapshot to resume from.
        """
        tracer = self.tracer if tracer is None else tracer
        metrics = self.metrics if metrics is None else metrics
        run = self._start_run(view, root, prune, tracer, metrics)
        try:
            try:
                if self.workers > 1:
                    self._drive_parallel(run)
                else:
                    self._drive_sequential(run)
            except _Exhausted as signal:
                path = self._write_checkpoint(run)
                if metrics.enabled:
                    metrics.counter("explore.budget_exhausted").inc()
                    metrics.counter("engine.budget_exhausted").inc()
                raise BudgetExhausted(
                    resource=signal.resource,
                    limit=signal.limit,
                    states=len(run.order),
                    transitions=run.transitions,
                    elapsed_seconds=run.elapsed(),
                    checkpoint=path,
                ) from None
        finally:
            self._publish(run)
        if self.checkpoint_dir is not None:
            discard_checkpoint(self.checkpoint_dir, run.root_digest)
        return StateGraph(root=root, states=StateSet(run.order), edges=run.edges)

    # -- run setup ------------------------------------------------------------

    def _make_index(self):
        if self.audit:
            return FingerprintIndex(self.digest_size, audit=True)
        if self.fingerprints is True or (
            self.fingerprints == "auto" and self.workers > 1
        ):
            return FingerprintIndex(self.digest_size)
        return StateIndex(self.digest_size)

    def _start_run(self, view, root, prune, tracer, metrics) -> _Run:
        run = _Run()
        run.view = view
        run.root = root
        run.root_digest = fingerprint(root, self.digest_size)
        run.prune = prune
        run.tracer = tracer
        run.tracing = tracer.enabled
        run.metrics = metrics
        run.index = self._make_index()
        run.transitions = 0
        run.expanded = 0
        run.rounds = 0
        run.since_checkpoint = 0
        run.resumed = False
        run.elapsed_prior = 0.0
        checkpoint = self._load_resumable(run)
        if checkpoint is not None:
            run.order = checkpoint.order
            run.edges = checkpoint.edges
            run.frontier = deque((state, None) for state in checkpoint.frontier)
            run.transitions = checkpoint.transitions
            run.elapsed_prior = checkpoint.elapsed_seconds
            run.resumed = True
            if isinstance(run.index, StateIndex):
                run.index.add_states(run.order)
            else:
                for state in run.order:
                    run.index.add(state)
            if metrics.enabled:
                metrics.counter("engine.resumes").inc()
        else:
            run.order = [root]
            run.edges = {}
            run.frontier = deque([(root, run.index.add(root, run.root_digest))])
        run.started = time.monotonic()
        run.deadline = Deadline(
            self.budget.deadline_seconds, already_elapsed=run.elapsed_prior
        )
        return run

    def _load_resumable(self, run: _Run) -> Checkpoint | None:
        if not self.resume or self.checkpoint_dir is None:
            return None
        path = find_checkpoint(self.checkpoint_dir, run.root_digest)
        if path is None:
            return None
        return load_checkpoint(path)

    # -- drivers --------------------------------------------------------------

    def _drive_sequential(self, run: _Run) -> None:
        budget = self.budget
        deadline_enabled = run.deadline.enabled
        while run.frontier:
            if (
                deadline_enabled
                and run.expanded % _DEADLINE_STRIDE == 0
                and run.deadline.expired()
            ):
                raise _Exhausted("deadline", budget.deadline_seconds)
            state, digest = run.frontier.popleft()
            if run.prune is not None and run.prune(state):
                self._commit_pruned(run, state)
            else:
                self._commit(run, state, digest, run.view.successors(state), None)
            self._maybe_checkpoint(run)

    def _drive_parallel(self, run: _Run) -> None:
        budget = self.budget
        pool = worker_pool(self.workers, run.view, run.prune, self.digest_size)
        if pool is None and run.metrics.enabled:
            run.metrics.counter("engine.inprocess_fallbacks").inc()
        try:
            while run.frontier:
                if run.deadline.expired():
                    raise _Exhausted("deadline", budget.deadline_seconds)
                items = [
                    (state, digest if digest is not None else run.index.digest(state))
                    for state, digest in run.frontier
                ]
                run.frontier.clear()
                buckets: list[list] = [[] for _ in range(self.workers)]
                for entry in items:
                    buckets[shard_of(entry[1], self.workers)].append(entry)
                occupied = [(k, bucket) for k, bucket in enumerate(buckets) if bucket]
                batches = [[state for state, _ in bucket] for _, bucket in occupied]
                if pool is not None:
                    results = pool.map(expand_batch, batches, chunksize=1)
                else:
                    results = expand_batches_inline(
                        batches, run.view, run.prune, self.digest_size
                    )
                queues = {}
                for (shard, bucket), result in zip(occupied, results):
                    queues[shard] = deque(result)
                    if run.metrics.enabled:
                        run.metrics.counter(f"engine.worker{shard}.expanded").inc(
                            len(bucket)
                        )
                        run.metrics.counter(f"engine.worker{shard}.transitions").inc(
                            sum(len(r) for r in result if r != PRUNED)
                        )
                # Merge in exact frontier order: this loop — not the
                # workers — is where states are discovered, which is what
                # keeps the graph identical to the sequential one.
                position = 0
                try:
                    for position, (state, digest) in enumerate(items):
                        result = queues[shard_of(digest, self.workers)].popleft()
                        if result == PRUNED:
                            self._commit_pruned(run, state)
                            continue
                        out = [(task, action, succ) for task, action, succ, _ in result]
                        digests = [entry[3] for entry in result]
                        self._commit(run, state, digest, out, digests)
                except _Exhausted:
                    # _commit repaired the frontier as [state, *partial-adds,
                    # *earlier-discoveries]; slot the round's unmerged tail in
                    # right after the offending state to preserve BFS order.
                    state_entry = run.frontier.popleft()
                    run.frontier.extendleft(reversed(items[position + 1 :]))
                    run.frontier.appendleft(state_entry)
                    raise
                run.rounds += 1
                if run.tracing:
                    run.tracer.emit(
                        WORKER_ROUND,
                        round=run.rounds,
                        expanded=len(items),
                        shards=len(occupied),
                        frontier=len(run.frontier),
                    )
                self._maybe_checkpoint(run)
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

    # -- the single merge step ------------------------------------------------

    def _commit_pruned(self, run: _Run, state) -> None:
        run.edges[state] = []
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(STATE_EXPLORED, edges=0, pruned=True)

    def _commit(self, run: _Run, state, digest, out, succ_digests) -> None:
        """Discover ``out``'s successors and record the expansion.

        On a budget breach the method leaves the run in the documented
        checkpoint-consistent shape — the offending state is requeued at
        the frontier's head (its edges entry withheld) with any
        partially-added successors behind it — then signals the driver.
        """
        budget = self.budget
        if (
            budget.max_transitions is not None
            and run.transitions + len(out) > budget.max_transitions
        ):
            run.frontier.appendleft((state, digest))
            raise _Exhausted("transitions", budget.max_transitions)
        added = []
        for position, (_, _, successor) in enumerate(out):
            known, succ_digest = run.index.check(
                successor, succ_digests[position] if succ_digests else None
            )
            if known:
                continue
            if budget.max_states is not None and len(run.index) >= budget.max_states:
                run.frontier.extend(added)
                run.frontier.appendleft((state, digest))
                raise _Exhausted("states", budget.max_states)
            succ_digest = run.index.add(successor, succ_digest)
            run.order.append(successor)
            added.append((successor, succ_digest))
        run.frontier.extend(added)
        run.edges[state] = out
        run.transitions += len(out)
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(
                STATE_EXPLORED, edges=len(out), frontier=len(run.frontier)
            )

    # -- checkpointing --------------------------------------------------------

    def _maybe_checkpoint(self, run: _Run) -> None:
        if (
            self.checkpoint_dir is not None
            and run.since_checkpoint >= self.checkpoint_interval
        ):
            self._write_checkpoint(run)

    def _write_checkpoint(self, run: _Run) -> Path | None:
        if self.checkpoint_dir is None:
            return None
        path = save_checkpoint(
            self.checkpoint_dir,
            Checkpoint(
                root=run.root,
                root_digest=run.root_digest,
                order=run.order,
                edges=run.edges,
                frontier=[state for state, _ in run.frontier],
                transitions=run.transitions,
                elapsed_seconds=run.elapsed(),
                digest_size=self.digest_size,
                workers=self.workers,
            ),
        )
        run.since_checkpoint = 0
        if run.metrics.enabled:
            run.metrics.counter("engine.checkpoints_written").inc()
        if run.tracing:
            run.tracer.emit(
                CHECKPOINT_SAVED, states=len(run.order), path=str(path)
            )
        return path

    # -- metrics --------------------------------------------------------------

    def _publish(self, run: _Run) -> None:
        metrics = run.metrics
        if not metrics.enabled:
            return
        metrics.counter("explore.runs").inc()
        metrics.counter("explore.states").inc(len(run.order))
        metrics.counter("explore.transitions").inc(run.transitions)
        metrics.gauge("explore.last_run_states").set(len(run.order))
        metrics.counter("engine.runs").inc()
        metrics.counter("engine.expanded").inc(run.expanded)
        metrics.gauge("engine.workers").set(self.workers)
        if run.rounds:
            metrics.counter("engine.rounds").inc(run.rounds)
        if run.resumed:
            metrics.gauge("engine.resumed_states").set(len(run.order))
