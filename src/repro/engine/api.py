"""The :class:`ExplorationEngine` facade.

The engine supersedes :func:`repro.analysis.explorer.explore` as the
default way to exhaust failure-free state spaces: same graph, same
semantics, plus worker-pool parallelism, fingerprint-based visited sets,
disk checkpoints with resume, and a unified :class:`~repro.engine.budget.Budget`
(states / transitions / wall-clock deadline) in place of the bare
``max_states`` int.  ``explore()`` itself remains as a thin wrapper over
a one-worker engine, so nothing downstream had to change.

Identical-graph guarantee
-------------------------

For a run that completes (no budget raise), the engine returns a
:class:`~repro.analysis.explorer.StateGraph` **identical to the
sequential one, including discovery order**, at every worker count.
Why: breadth-first search over a deterministic view is a pure function
of the root once three choices are fixed — the expansion order of the
frontier, the successor order within an expansion, and the dedup
relation.  The engine fixes all three identically in both drivers:

* the frontier is FIFO, and the parallel driver *merges* worker results
  in exact frontier order (workers only precompute expansions; the
  single-threaded merge loop is the one that discovers states), so the
  concatenation of rounds replays the sequential queue;
* successor order is ``view.successors`` order, computed per state
  either way;
* dedup is "first discovery wins", applied in merge order.

Parallelism therefore changes *where* ``successors()`` runs, never
*what* the search sees.  The only caveat is dedup by digest (used by the
parallel driver and opt-in sequentially): a fingerprint collision would
merge two distinct states.  The default 16-byte digests make that
probability ~``n^2/2^129``; collision-audit mode
(:class:`~repro.engine.fingerprint.FingerprintIndex`) upgrades the
guarantee to a checked one.  Interrupted runs may differ from a
sequential interrupt in *which* prefix they explored, but resuming any
checkpoint converges to the same completed graph.
"""

from __future__ import annotations

import time
from collections import deque
from pathlib import Path
from typing import Callable, Hashable

from ..analysis.explorer import StateGraph, StateSet
from ..analysis.view import DeterministicSystemView
from ..obs.events import CHECKPOINT_SAVED, STATE_EXPLORED, WORKER_ROUND
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from .budget import DEFAULT_BUDGET, Budget, BudgetExhausted, Deadline
from .checkpoint import (
    Checkpoint,
    discard_checkpoint,
    find_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from .fingerprint import DIGEST_SIZE, FingerprintIndex, StateIndex, fingerprint, shard_of
from .parallel import (
    CHUNK_DIGESTS,
    CHUNK_STATES,
    PRUNED,
    WINDOW,
    LocalExpander,
    start_workers,
    stop_workers,
    wait_ready,
)

#: Sequential deadline checks happen every this many expansions.
_DEADLINE_STRIDE = 512


class _Exhausted(Exception):
    """Internal signal: a budget limit was hit (frontier already repaired)."""

    def __init__(self, resource: str, limit: float) -> None:
        self.resource = resource
        self.limit = limit


class _Run:
    """Mutable working state of one exploration."""

    __slots__ = (
        "view",
        "root",
        "root_digest",
        "prune",
        "tracer",
        "tracing",
        "metrics",
        "index",
        "order",
        "edges",
        "frontier",
        "transitions",
        "expanded",
        "rounds",
        "since_checkpoint",
        "resumed",
        "started",
        "elapsed_prior",
        "deadline",
        "action_intern",
        "phase",
        "orbit_hits",
        "pruned_tasks",
    )

    def elapsed(self) -> float:
        return self.elapsed_prior + (time.monotonic() - self.started)


class ExplorationEngine:
    """Parallel, checkpointed, budgeted exploration of failure-free graphs.

    Parameters
    ----------
    workers:
        Expansion processes.  ``1`` (the default) runs in-process; so
        does any value when the platform lacks the ``fork`` start method
        (the system under analysis is not picklable, so workers must
        inherit it — see :mod:`repro.engine.parallel`).
    budget:
        The :class:`Budget`; defaults to the explorer's historical
        ``Budget(max_states=200_000)``.
    checkpoint_dir:
        When set, the engine snapshots frontier + visited set + edges
        into this directory every ``checkpoint_interval`` expansions and
        on budget exhaustion; files are named by the root state's digest
        and deleted when their exploration completes.
    resume:
        When true (and ``checkpoint_dir`` holds a checkpoint for this
        root), continue from the snapshot instead of starting over.
    fingerprints:
        ``"auto"`` (digests for parallel runs, full states
        sequentially), or a bool to force either visited-set
        representation.  Parallel runs always shard by digest.
    audit:
        Collision-audit mode: keep full states per digest and raise
        :class:`~repro.engine.fingerprint.FingerprintCollision` if two
        unequal states ever hash alike.  Implies digest dedup.
    """

    def __init__(
        self,
        workers: int = 1,
        budget: Budget | None = None,
        *,
        checkpoint_dir: str | Path | None = None,
        checkpoint_interval: int = 50_000,
        resume: bool = False,
        fingerprints: bool | str = "auto",
        audit: bool = False,
        digest_size: int = DIGEST_SIZE,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.workers = workers
        self.budget = DEFAULT_BUDGET if budget is None else budget
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.checkpoint_interval = checkpoint_interval
        self.resume = resume
        self.fingerprints = fingerprints
        self.audit = audit
        self.digest_size = digest_size
        self.tracer = tracer
        self.metrics = metrics

    # -- public API -----------------------------------------------------------

    def explore(
        self,
        view: DeterministicSystemView,
        root: Hashable,
        prune: Callable[[Hashable], bool] | None = None,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> StateGraph:
        """Exhaust the failure-free graph reachable from ``root``.

        Raises :class:`~repro.engine.budget.BudgetExhausted` (an
        :class:`~repro.analysis.explorer.ExplorationBudget`) when a
        budget limit is hit, with progress stats and — when
        checkpointing is on — the snapshot to resume from.
        """
        tracer = self.tracer if tracer is None else tracer
        metrics = self.metrics if metrics is None else metrics
        run = self._start_run(view, root, prune, tracer, metrics)
        try:
            try:
                if self.workers > 1:
                    self._drive_parallel(run)
                else:
                    self._drive_sequential(run)
            except _Exhausted as signal:
                path = self._write_checkpoint(run)
                if metrics.enabled:
                    metrics.counter("explore.budget_exhausted").inc()
                    metrics.counter("engine.budget_exhausted").inc()
                raise BudgetExhausted(
                    resource=signal.resource,
                    limit=signal.limit,
                    states=len(run.order),
                    transitions=run.transitions,
                    elapsed_seconds=run.elapsed(),
                    checkpoint=path,
                ) from None
        finally:
            self._publish(run)
        if self.checkpoint_dir is not None:
            discard_checkpoint(self.checkpoint_dir, run.root_digest)
        return StateGraph(root=root, states=StateSet(run.order), edges=run.edges)

    # -- run setup ------------------------------------------------------------

    def _make_index(self):
        if self.audit:
            return FingerprintIndex(self.digest_size, audit=True)
        if self.fingerprints is True or (
            self.fingerprints == "auto" and self.workers > 1
        ):
            return FingerprintIndex(self.digest_size)
        return StateIndex(self.digest_size)

    def _start_run(self, view, root, prune, tracer, metrics) -> _Run:
        run = _Run()
        run.view = view
        run.root = root
        run.root_digest = fingerprint(root, self.digest_size)
        run.prune = prune
        run.tracer = tracer
        run.tracing = tracer.enabled
        run.metrics = metrics
        run.index = self._make_index()
        run.transitions = 0
        run.expanded = 0
        run.rounds = 0
        run.since_checkpoint = 0
        run.resumed = False
        run.elapsed_prior = 0.0
        run.action_intern = {}
        run.phase = {}
        run.orbit_hits = 0
        run.pruned_tasks = 0
        checkpoint = self._load_resumable(run)
        if checkpoint is not None:
            run.order = checkpoint.order
            run.edges = checkpoint.edges
            run.frontier = deque((state, None) for state in checkpoint.frontier)
            run.transitions = checkpoint.transitions
            run.elapsed_prior = checkpoint.elapsed_seconds
            run.resumed = True
            if isinstance(run.index, StateIndex):
                run.index.add_states(run.order)
            else:
                for state in run.order:
                    run.index.add(state)
            if metrics.enabled:
                metrics.counter("engine.resumes").inc()
        else:
            run.order = [root]
            run.edges = {}
            run.frontier = deque([(root, run.index.add(root, run.root_digest))])
        run.started = time.monotonic()
        run.deadline = Deadline(
            self.budget.deadline_seconds, already_elapsed=run.elapsed_prior
        )
        return run

    def _load_resumable(self, run: _Run) -> Checkpoint | None:
        if not self.resume or self.checkpoint_dir is None:
            return None
        path = find_checkpoint(self.checkpoint_dir, run.root_digest)
        if path is None:
            return None
        return load_checkpoint(path)

    # -- drivers --------------------------------------------------------------

    def _drive_sequential(self, run: _Run) -> None:
        budget = self.budget
        deadline_enabled = run.deadline.enabled
        timing = run.metrics.enabled
        while run.frontier:
            if (
                deadline_enabled
                and run.expanded % _DEADLINE_STRIDE == 0
                and run.deadline.expired()
            ):
                raise _Exhausted("deadline", budget.deadline_seconds)
            state, digest = run.frontier.popleft()
            if run.prune is not None and run.prune(state):
                self._commit_pruned(run, state)
            elif timing:
                before = time.perf_counter()
                out = run.view.successors(state)
                run.phase["expand_seconds"] = run.phase.get(
                    "expand_seconds", 0.0
                ) + (time.perf_counter() - before)
                self._commit(run, state, digest, out, None)
            else:
                self._commit(run, state, digest, run.view.successors(state), None)
            self._maybe_checkpoint(run)

    def _drive_parallel(self, run: _Run) -> None:
        budget = self.budget
        workers = self.workers
        handles = start_workers(
            workers, run.view, run.prune, self.digest_size, self.audit
        )
        local = handles is None
        if local:
            if run.metrics.enabled:
                run.metrics.counter("engine.inprocess_fallbacks").inc()
            handles = [
                LocalExpander(run.view, run.prune, self.digest_size, self.audit)
                for _ in range(workers)
            ]
        # Coordinator-side resolution tables for the fingerprint wire
        # protocol: the interned state per digest (every digest in the
        # index has an entry — seeded here, maintained by the novel
        # lists in worker replies), the digests each worker holds (so
        # frontier entries ship as bare digests after the first time),
        # and each worker's action table.
        state_of: dict = {run.root_digest: run.root}
        if run.resumed:
            for state in run.order:
                state_of.setdefault(run.index.digest(state), state)
        seen_by: list[set] = [set() for _ in range(workers)]
        actions_of: list[list] = [[] for _ in range(workers)]
        tasks = run.view.tasks
        intern_action = run.action_intern
        try:
            while run.frontier:
                if run.deadline.expired():
                    raise _Exhausted("deadline", budget.deadline_seconds)
                items = []
                for state, digest in run.frontier:
                    if digest is None:
                        digest = run.index.digest(state)
                        state_of.setdefault(digest, state)
                    items.append((state, digest))
                run.frontier.clear()
                assignment, results_by_worker = self._exchange(
                    run, handles, local, items, state_of, seen_by, actions_of
                )
                queues = [deque(rows) for rows in results_by_worker]
                if run.metrics.enabled:
                    for shard, rows in enumerate(results_by_worker):
                        if not rows:
                            continue
                        run.metrics.counter(f"engine.worker{shard}.expanded").inc(
                            len(rows)
                        )
                        run.metrics.counter(f"engine.worker{shard}.transitions").inc(
                            sum(len(row) for row in rows if row != PRUNED)
                        )
                # Merge in exact frontier order: this loop — not the
                # workers — is where states are discovered, which is what
                # keeps the graph identical to the sequential one.
                merge_started = time.perf_counter()
                position = 0
                try:
                    for position, (state, digest) in enumerate(items):
                        result = queues[assignment[position]].popleft()
                        if result == PRUNED:
                            self._commit_pruned(run, state)
                            continue
                        worker_actions = actions_of[assignment[position]]
                        out = []
                        digests = []
                        if self.audit:
                            for task_index, action_index, succ_digest, succ in result:
                                action = worker_actions[action_index]
                                out.append(
                                    (
                                        tasks[task_index],
                                        intern_action.setdefault(action, action),
                                        succ,
                                    )
                                )
                                digests.append(succ_digest)
                        else:
                            for task_index, action_index, succ_digest in result:
                                action = worker_actions[action_index]
                                out.append(
                                    (
                                        tasks[task_index],
                                        intern_action.setdefault(action, action),
                                        state_of[succ_digest],
                                    )
                                )
                                digests.append(succ_digest)
                        self._commit(run, state, digest, out, digests)
                except _Exhausted:
                    # _commit repaired the frontier as [state, *partial-adds,
                    # *earlier-discoveries]; slot the round's unmerged tail in
                    # right after the offending state to preserve BFS order.
                    state_entry = run.frontier.popleft()
                    run.frontier.extendleft(reversed(items[position + 1 :]))
                    run.frontier.appendleft(state_entry)
                    raise
                finally:
                    run.phase["merge_seconds"] = run.phase.get(
                        "merge_seconds", 0.0
                    ) + (time.perf_counter() - merge_started)
                run.rounds += 1
                if run.tracing:
                    run.tracer.emit(
                        WORKER_ROUND,
                        round=run.rounds,
                        expanded=len(items),
                        shards=sum(1 for rows in results_by_worker if rows),
                        frontier=len(run.frontier),
                    )
                self._maybe_checkpoint(run)
        finally:
            if not local:
                stop_workers(handles)

    def _exchange(self, run, handles, local, items, state_of, seen_by, actions_of):
        """Ship one round's frontier and collect every worker reply.

        Returns ``(assignment, results_by_worker)``: the owning worker
        per item, and each worker's result rows in its items order (so
        the merge loop can replay global frontier order by popping from
        per-worker FIFO queues).
        """
        workers = len(handles)
        assignment = []
        buckets: list[list] = [[] for _ in range(workers)]
        for state, digest in items:
            shard = shard_of(digest, workers)
            assignment.append(shard)
            buckets[shard].append((state, digest))
        pending: list[deque] = [deque() for _ in range(workers)]
        for shard, bucket in enumerate(buckets):
            known = seen_by[shard]
            chunk: list = []
            stateful = False
            for state, digest in bucket:
                if digest in known:
                    entry = digest
                    entry_stateful = False
                else:
                    entry = (digest, state)
                    entry_stateful = True
                    known.add(digest)
                cap = CHUNK_STATES if (stateful or entry_stateful) else CHUNK_DIGESTS
                if chunk and len(chunk) >= cap:
                    pending[shard].append((chunk, stateful))
                    chunk = []
                    stateful = False
                chunk.append(entry)
                stateful = stateful or entry_stateful
            if chunk:
                pending[shard].append((chunk, stateful))
        results_by_worker: list[list] = [[] for _ in range(workers)]
        outstanding = [0] * workers

        def pump() -> None:
            # Digest-only chunks ride the pipe buffer (WINDOW in flight);
            # a state-carrying chunk of unbounded pickle size goes only
            # to an idle worker whose blocking recv drains the pipe.
            for shard, handle in enumerate(handles):
                queue = pending[shard]
                while queue:
                    chunk, stateful = queue[0]
                    if stateful:
                        if outstanding[shard] > 0:
                            break
                    elif outstanding[shard] >= WINDOW:
                        break
                    queue.popleft()
                    before = time.perf_counter()
                    handle.send(chunk)
                    run.phase["serialize_seconds"] = run.phase.get(
                        "serialize_seconds", 0.0
                    ) + (time.perf_counter() - before)
                    outstanding[shard] += 1

        pump()
        while any(outstanding):
            if local:
                ready = [shard for shard, count in enumerate(outstanding) if count]
            else:
                ready = wait_ready(handles, outstanding)
            for shard in ready:
                reply = handles[shard].recv()
                outstanding[shard] -= 1
                self._ingest(
                    run, reply, shard, state_of, seen_by, actions_of, results_by_worker
                )
            pump()
        return assignment, results_by_worker

    def _ingest(
        self, run, reply, shard, state_of, seen_by, actions_of, results_by_worker
    ) -> None:
        """Fold one worker reply into the coordinator tables."""
        results, novel, new_actions, stats = reply
        expand_seconds, fingerprint_seconds, send_seconds, orbit_hits, pruned = stats
        for digest, state in novel:
            state_of.setdefault(digest, state)
        known = seen_by[shard]
        if self.audit:
            for row in results:
                if row == PRUNED:
                    continue
                for _, _, digest, state in row:
                    known.add(digest)
                    state_of.setdefault(digest, state)
        else:
            for row in results:
                if row == PRUNED:
                    continue
                for _, _, digest in row:
                    known.add(digest)
        results_by_worker[shard].extend(results)
        actions_of[shard].extend(new_actions)
        phase = run.phase
        phase["expand_seconds"] = phase.get("expand_seconds", 0.0) + expand_seconds
        phase["fingerprint_seconds"] = (
            phase.get("fingerprint_seconds", 0.0) + fingerprint_seconds
        )
        phase["serialize_seconds"] = phase.get("serialize_seconds", 0.0) + send_seconds
        run.orbit_hits += orbit_hits
        run.pruned_tasks += pruned

    # -- the single merge step ------------------------------------------------

    def _commit_pruned(self, run: _Run, state) -> None:
        run.edges[state] = []
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(STATE_EXPLORED, edges=0, pruned=True)

    def _commit(self, run: _Run, state, digest, out, succ_digests) -> None:
        """Discover ``out``'s successors and record the expansion.

        On a budget breach the method leaves the run in the documented
        checkpoint-consistent shape — the offending state is requeued at
        the frontier's head (its edges entry withheld) with any
        partially-added successors behind it — then signals the driver.
        """
        budget = self.budget
        if (
            budget.max_transitions is not None
            and run.transitions + len(out) > budget.max_transitions
        ):
            run.frontier.appendleft((state, digest))
            raise _Exhausted("transitions", budget.max_transitions)
        # With a state-keyed index the visited set doubles as an intern
        # table: edges reference the first-seen object per state (and per
        # action), so the retained graph holds one object per distinct
        # value instead of one per discovery.
        resolve = getattr(run.index, "resolve", None)
        intern_action = run.action_intern
        rebuilt = [] if resolve is not None else None
        added = []
        for position, (task, action, successor) in enumerate(out):
            known, succ_digest = run.index.check(
                successor, succ_digests[position] if succ_digests else None
            )
            if known:
                if rebuilt is not None:
                    rebuilt.append(
                        (
                            task,
                            intern_action.setdefault(action, action),
                            resolve(successor),
                        )
                    )
                continue
            if budget.max_states is not None and len(run.index) >= budget.max_states:
                run.frontier.extend(added)
                run.frontier.appendleft((state, digest))
                raise _Exhausted("states", budget.max_states)
            succ_digest = run.index.add(successor, succ_digest)
            run.order.append(successor)
            added.append((successor, succ_digest))
            if rebuilt is not None:
                rebuilt.append(
                    (task, intern_action.setdefault(action, action), successor)
                )
        run.frontier.extend(added)
        run.edges[state] = out if rebuilt is None else rebuilt
        run.transitions += len(out)
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(
                STATE_EXPLORED, edges=len(out), frontier=len(run.frontier)
            )

    # -- checkpointing --------------------------------------------------------

    def _maybe_checkpoint(self, run: _Run) -> None:
        if (
            self.checkpoint_dir is not None
            and run.since_checkpoint >= self.checkpoint_interval
        ):
            self._write_checkpoint(run)

    def _write_checkpoint(self, run: _Run) -> Path | None:
        if self.checkpoint_dir is None:
            return None
        path = save_checkpoint(
            self.checkpoint_dir,
            Checkpoint(
                root=run.root,
                root_digest=run.root_digest,
                order=run.order,
                edges=run.edges,
                frontier=[state for state, _ in run.frontier],
                transitions=run.transitions,
                elapsed_seconds=run.elapsed(),
                digest_size=self.digest_size,
                workers=self.workers,
            ),
        )
        run.since_checkpoint = 0
        if run.metrics.enabled:
            run.metrics.counter("engine.checkpoints_written").inc()
        if run.tracing:
            run.tracer.emit(
                CHECKPOINT_SAVED, states=len(run.order), path=str(path)
            )
        return path

    # -- metrics --------------------------------------------------------------

    def _publish(self, run: _Run) -> None:
        metrics = run.metrics
        if not metrics.enabled:
            return
        metrics.counter("explore.runs").inc()
        metrics.counter("explore.states").inc(len(run.order))
        metrics.counter("explore.transitions").inc(run.transitions)
        metrics.gauge("explore.last_run_states").set(len(run.order))
        metrics.counter("engine.runs").inc()
        metrics.counter("engine.expanded").inc(run.expanded)
        metrics.gauge("engine.workers").set(self.workers)
        if run.rounds:
            metrics.counter("engine.rounds").inc(run.rounds)
        if run.resumed:
            metrics.gauge("engine.resumed_states").set(len(run.order))
        for name, seconds in run.phase.items():
            if seconds:
                metrics.counter(f"engine.phase.{name}").inc(seconds)
        # Sequential runs accumulate reduction stats inside the view
        # itself; drain them here.  (The drain is inside the
        # metrics-enabled guard on purpose: engines running with
        # NULL_METRICS — e.g. the audit/compare helpers — must leave the
        # view's counters for their caller to read.)
        drain = getattr(run.view, "drain_stats", None)
        if drain is not None:
            orbit_hits, pruned_tasks = drain()
            run.orbit_hits += orbit_hits
            run.pruned_tasks += pruned_tasks
        if run.orbit_hits:
            metrics.counter("engine.reduction.orbit_hits").inc(run.orbit_hits)
        if run.pruned_tasks:
            metrics.counter("engine.reduction.pruned_tasks").inc(run.pruned_tasks)
