"""The :class:`ExplorationEngine` facade.

The engine supersedes :func:`repro.analysis.explorer.explore` as the
default way to exhaust failure-free state spaces: same graph, same
semantics, plus worker-pool parallelism, fingerprint-based visited sets,
disk checkpoints with resume, and a unified :class:`~repro.engine.budget.Budget`
(states / transitions / wall-clock deadline) in place of the bare
``max_states`` int.  ``explore()`` itself remains as a thin wrapper over
a one-worker engine, so nothing downstream had to change.

Identical-graph guarantee
-------------------------

For a run that completes (no budget raise), the engine returns a
:class:`~repro.analysis.explorer.StateGraph` **identical to the
sequential one, including discovery order**, at every worker count.
Why: breadth-first search over a deterministic view is a pure function
of the root once three choices are fixed — the expansion order of the
frontier, the successor order within an expansion, and the dedup
relation.  The engine fixes all three identically in both drivers:

* the frontier is FIFO, and the parallel driver *merges* worker results
  in exact frontier order (workers only precompute expansions; the
  single-threaded merge loop is the one that discovers states), so the
  concatenation of rounds replays the sequential queue;
* successor order is ``view.successors`` order, computed per state
  either way;
* dedup is "first discovery wins", applied in merge order.

Parallelism therefore changes *where* ``successors()`` runs, never
*what* the search sees.  The only caveat is dedup by digest (used by the
parallel driver and opt-in sequentially): a fingerprint collision would
merge two distinct states.  The default 16-byte digests make that
probability ~``n^2/2^129``; collision-audit mode
(:class:`~repro.engine.fingerprint.FingerprintIndex`) upgrades the
guarantee to a checked one.  Interrupted runs may differ from a
sequential interrupt in *which* prefix they explored, but resuming any
checkpoint converges to the same completed graph.

Fault tolerance
---------------

Worker crashes do not abort a run: the
:class:`~repro.engine.parallel.WorkerPool` detects dead workers,
re-dispatches their frontier partitions (re-expansion is idempotent, so
the guarantee above survives), respawns crashed slots with bounded
backoff, and degrades to in-process expansion when the whole pool dies.
The one escape hatch is **quarantine**: a state that repeatedly kills
whoever expands it is skipped — keeping its node, dropping its outgoing
edges — and surfaced in :attr:`ExplorationEngine.last_report` (an
:class:`EngineReport`), never silently.  A run with a non-empty
``quarantined`` list is the one case where the produced graph is *not*
the full sequential graph.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable

from ..analysis.explorer import StateGraph, StateSet
from ..analysis.view import DeterministicSystemView
from ..obs.events import CHECKPOINT_SAVED, STATE_EXPLORED, WORKER_ROUND
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.progress import ProgressReporter, progress_from_env
from ..obs.sinks import NULL_TRACER, Tracer
from ..obs.spans import end_span, start_span
from .budget import DEFAULT_BUDGET, Budget, BudgetExhausted, Deadline
from .chaos import FaultPlan
from .checkpoint import (
    Checkpoint,
    discard_checkpoint,
    find_checkpoint,
    load_checkpoint,
    resume_hint,
    save_checkpoint,
)
from .codec import Codec, digest_of_packed
from .errors import EngineError
from .fingerprint import DIGEST_SIZE, FingerprintIndex, StateIndex
from .parallel import PRUNED, QUARANTINED, WorkerPool

#: Sequential deadline checks happen every this many expansions.
_DEADLINE_STRIDE = 512


class _Exhausted(Exception):
    """Internal signal: a budget limit was hit (frontier already repaired)."""

    def __init__(self, resource: str, limit: float) -> None:
        self.resource = resource
        self.limit = limit


class _Run:
    """Mutable working state of one exploration."""

    __slots__ = (
        "view",
        "root",
        "root_digest",
        "prune",
        "tracer",
        "tracing",
        "metrics",
        "codec",
        "index",
        "order",
        "edges",
        "frontier",
        "packed_of",
        "resumed_packed",
        "transitions",
        "expanded",
        "rounds",
        "since_checkpoint",
        "resumed",
        "recovered",
        "started",
        "elapsed_prior",
        "deadline",
        "action_intern",
        "phase",
        "orbit_hits",
        "pruned_tasks",
        "quarantined",
        "pool",
    )

    def elapsed(self) -> float:
        return self.elapsed_prior + (time.monotonic() - self.started)


@dataclass(frozen=True)
class EngineReport:
    """Progress and fault-tolerance summary of one completed exploration.

    Exposed as :attr:`ExplorationEngine.last_report` after every
    ``explore()`` call (including ones that raised
    :class:`~repro.engine.budget.BudgetExhausted`).  ``degraded`` is
    true when the run finished on in-process expanders despite multiple
    workers being requested — either fork was unavailable or the pool
    collapsed; ``quarantined`` lists the digests of states skipped
    because they repeatedly killed workers (``quarantined_states`` holds
    the states themselves), the one case where the produced graph is
    not the full one.
    """

    states: int
    transitions: int
    rounds: int
    elapsed_seconds: float
    workers: int
    degraded: bool
    worker_failures: int
    worker_respawns: int
    partitions_reassigned: int
    quarantined: tuple = ()
    quarantined_states: tuple = ()
    #: Peak RSS per worker slot in KiB, as self-reported over the reply
    #: pipe (forked pools only; empty for in-process runs).  The honest
    #: memory number for a parallel run is the coordinator's own
    #: ``ru_maxrss`` *plus* the sum of these — ``RUSAGE_CHILDREN`` only
    #: folds in children that already exited.
    worker_rss_kb: tuple = ()
    #: Successors whose packed bytes were recomputed coordinator-side
    #: after being lost with a crashed worker (see the engine's
    #: missing-bytes recovery).
    recovered_states: int = 0

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        line = (
            f"engine: {self.states} states / {self.transitions} transitions"
            f" in {self.elapsed_seconds:.3f}s"
            f" ({self.workers} worker{'s' if self.workers != 1 else ''}"
            f", {self.rounds} rounds)"
        )
        if self.worker_failures:
            line += (
                f"; {self.worker_failures} worker failure"
                f"{'s' if self.worker_failures != 1 else ''}"
                f" ({self.worker_respawns} respawned,"
                f" {self.partitions_reassigned} partitions re-dispatched)"
            )
        if self.quarantined:
            line += f"; {len(self.quarantined)} state(s) QUARANTINED"
        if self.degraded:
            line += "; degraded to in-process expansion"
        return line

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "states": self.states,
            "transitions": self.transitions,
            "rounds": self.rounds,
            "elapsed_seconds": self.elapsed_seconds,
            "workers": self.workers,
            "degraded": self.degraded,
            "worker_failures": self.worker_failures,
            "worker_respawns": self.worker_respawns,
            "partitions_reassigned": self.partitions_reassigned,
            "quarantined": list(self.quarantined),
            "worker_rss_kb": list(self.worker_rss_kb),
            "recovered_states": self.recovered_states,
        }


class ExplorationEngine:
    """Parallel, checkpointed, budgeted exploration of failure-free graphs.

    Parameters
    ----------
    workers:
        Expansion processes.  ``1`` (the default) runs in-process; so
        does any value when the platform lacks the ``fork`` start method
        (the system under analysis is not picklable, so workers must
        inherit it — see :mod:`repro.engine.parallel`).
    budget:
        The :class:`Budget`; defaults to the explorer's historical
        ``Budget(max_states=200_000)``.
    checkpoint_dir:
        When set, the engine snapshots frontier + visited set + edges
        into this directory every ``checkpoint_interval`` expansions and
        on budget exhaustion; files are named by the root state's digest
        and deleted when their exploration completes.
    resume:
        When true (and ``checkpoint_dir`` holds a checkpoint for this
        root), continue from the snapshot instead of starting over.
    fingerprints:
        ``"auto"`` (digests for parallel runs, full states
        sequentially), or a bool to force either visited-set
        representation.  Parallel runs always shard by digest.
    audit:
        Collision-audit mode: keep full states per digest and raise
        :class:`~repro.engine.fingerprint.FingerprintCollision` if two
        unequal states ever hash alike.  Implies digest dedup.
    max_worker_restarts:
        How many times a crashed worker slot is respawned (with
        exponential backoff) before its partitions are redistributed to
        survivors.  ``None`` (the default) reads
        ``REPRO_ENGINE_MAX_RESTARTS`` from the environment, falling back
        to 3.
    restart_backoff_seconds:
        Base of the exponential respawn backoff (doubles per restart of
        the same slot, capped at 2s per sleep).
    max_partition_retries:
        Hard ceiling on how often one frontier partition may be
        re-dispatched after worker losses before the run raises
        :class:`~repro.engine.errors.PartitionRetryExhausted`.
    max_state_retries:
        Worker losses a *single* state may cause before it is
        quarantined (skipped and surfaced in :attr:`last_report`).
    quarantine:
        When false, a state hitting ``max_state_retries`` raises
        :class:`~repro.engine.errors.StateQuarantined` instead of being
        skipped (for runs that must not give up the identical-graph
        guarantee).
    fault_plan:
        A :class:`~repro.engine.chaos.FaultPlan` scheduling
        deterministic worker kills (testing the recovery paths).
        ``None`` reads the ``REPRO_CHAOS`` environment variable.
    heartbeat_seconds:
        Liveness-check interval: when no worker replies for this long,
        every waited-on worker's process is checked (catches deaths the
        pipe has not reported yet).
    progress:
        A :class:`~repro.obs.progress.ProgressReporter` for live
        ``states/s`` lines on stderr (driven per round in parallel runs,
        every few hundred expansions sequentially).  ``None`` (the
        default) consults the ``REPRO_PROGRESS`` environment variable;
        pass ``False`` to force it off regardless of the environment.
    cancel:
        A cooperative stop signal: a zero-argument callable (or a
        :class:`threading.Event`, whose ``is_set`` is used) polled at
        the same cadence as the deadline.  When it reports true, the
        run exits through the budget machinery —
        :class:`~repro.engine.budget.BudgetExhausted` with
        ``resource="cancelled"``, checkpoint written when checkpointing
        is on — so a cancelled exploration is resumable, not lost.
        This is how ``repro serve`` aborts jobs on DELETE and drains
        in-flight work at shutdown.
    """

    def __init__(
        self,
        workers: int = 1,
        budget: Budget | None = None,
        *,
        checkpoint_dir: str | Path | None = None,
        checkpoint_interval: int = 50_000,
        resume: bool = False,
        fingerprints: bool | str = "auto",
        audit: bool = False,
        digest_size: int = DIGEST_SIZE,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
        max_worker_restarts: int | None = None,
        restart_backoff_seconds: float = 0.05,
        max_partition_retries: int = 5,
        max_state_retries: int = 2,
        quarantine: bool = True,
        fault_plan: FaultPlan | None = None,
        heartbeat_seconds: float = 5.0,
        progress: ProgressReporter | bool | None = None,
        cancel=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if max_worker_restarts is None:
            max_worker_restarts = int(os.environ.get("REPRO_ENGINE_MAX_RESTARTS", "3"))
        if max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, got {max_worker_restarts}"
            )
        if max_partition_retries < 0:
            raise ValueError(
                f"max_partition_retries must be >= 0, got {max_partition_retries}"
            )
        if max_state_retries < 1:
            raise ValueError(f"max_state_retries must be >= 1, got {max_state_retries}")
        self.workers = workers
        self.budget = DEFAULT_BUDGET if budget is None else budget
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.checkpoint_interval = checkpoint_interval
        self.resume = resume
        self.fingerprints = fingerprints
        self.audit = audit
        self.digest_size = digest_size
        self.tracer = tracer
        self.metrics = metrics
        self.max_worker_restarts = max_worker_restarts
        self.restart_backoff_seconds = restart_backoff_seconds
        self.max_partition_retries = max_partition_retries
        self.max_state_retries = max_state_retries
        self.quarantine = quarantine
        self.fault_plan = FaultPlan.from_env() if fault_plan is None else fault_plan
        self.heartbeat_seconds = heartbeat_seconds
        if progress is None:
            self.progress = progress_from_env()
        elif progress is False:
            self.progress = None
        elif progress is True:
            self.progress = ProgressReporter()
        else:
            self.progress = progress
        self.cancel = getattr(cancel, "is_set", cancel)
        if self.cancel is not None and not callable(self.cancel):
            raise TypeError("cancel must be callable or carry is_set()")
        #: :class:`EngineReport` of the most recent ``explore()`` call.
        self.last_report: EngineReport | None = None

    # -- public API -----------------------------------------------------------

    def explore(
        self,
        view: DeterministicSystemView,
        root: Hashable,
        prune: Callable[[Hashable], bool] | None = None,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> StateGraph:
        """Exhaust the failure-free graph reachable from ``root``.

        Raises :class:`~repro.engine.budget.BudgetExhausted` (an
        :class:`~repro.analysis.explorer.ExplorationBudget`) when a
        budget limit is hit, with progress stats and — when
        checkpointing is on — the snapshot to resume from.
        """
        tracer = self.tracer if tracer is None else tracer
        metrics = self.metrics if metrics is None else metrics
        run = self._start_run(view, root, prune, tracer, metrics)
        run_span = start_span(
            tracer, "engine.run", workers=self.workers, resumed=run.resumed
        )
        status = "ok"
        try:
            try:
                if self.workers > 1:
                    self._drive_parallel(run)
                else:
                    self._drive_sequential(run)
            except _Exhausted as signal:
                status = "exhausted"
                path = self._write_checkpoint(run)
                if metrics.enabled:
                    metrics.counter("explore.budget_exhausted").inc()
                    metrics.counter("engine.budget_exhausted").inc()
                raise BudgetExhausted(
                    resource=signal.resource,
                    limit=signal.limit,
                    states=len(run.order),
                    transitions=run.transitions,
                    elapsed_seconds=run.elapsed(),
                    checkpoint=path,
                    resume_command=(
                        None if path is None else resume_hint(self.checkpoint_dir)
                    ),
                ) from None
        finally:
            end_span(
                tracer,
                run_span,
                status=status,
                states=len(run.order),
                transitions=run.transitions,
                rounds=run.rounds,
            )
            if self.progress is not None:
                self.progress.update(
                    states=len(run.order),
                    frontier=len(run.frontier),
                    workers=self.workers,
                    elapsed=run.elapsed(),
                    budget=self.budget,
                    force=True,
                )
                self.progress.finish()
            self._publish(run)
            self.last_report = self._build_report(run)
        if self.checkpoint_dir is not None:
            discard_checkpoint(self.checkpoint_dir, run.root_digest)
        return StateGraph(root=root, states=StateSet(run.order), edges=run.edges)

    # -- run setup ------------------------------------------------------------

    def _make_index(self, codec: Codec):
        if self.audit:
            return FingerprintIndex(self.digest_size, audit=True, codec=codec)
        if self.fingerprints is True or (
            self.fingerprints == "auto" and self.workers > 1
        ):
            return FingerprintIndex(self.digest_size, codec=codec)
        return StateIndex(self.digest_size)

    def _start_run(self, view, root, prune, tracer, metrics) -> _Run:
        run = _Run()
        run.view = view
        run.root = root
        run.codec = Codec(self.digest_size)
        packed_root, run.root_digest = run.codec.encode_digest(root)
        run.prune = prune
        run.tracer = tracer
        run.tracing = tracer.enabled
        run.metrics = metrics
        run.index = self._make_index(run.codec)
        run.packed_of = {run.root_digest: packed_root}
        run.resumed_packed = None
        run.transitions = 0
        run.expanded = 0
        run.rounds = 0
        run.since_checkpoint = 0
        run.resumed = False
        run.recovered = 0
        run.elapsed_prior = 0.0
        run.action_intern = {}
        run.phase = {}
        run.orbit_hits = 0
        run.pruned_tasks = 0
        run.quarantined = []
        run.pool = None
        checkpoint = self._load_resumable(run)
        if checkpoint is not None:
            run.order = checkpoint.order
            run.edges = checkpoint.edges
            run.frontier = deque((state, None) for state in checkpoint.frontier)
            run.transitions = checkpoint.transitions
            run.elapsed_prior = checkpoint.elapsed_seconds
            run.resumed = True
            run.resumed_packed = checkpoint.packed_order
            if isinstance(run.index, StateIndex):
                run.index.add_states(run.order)
            elif run.resumed_packed is not None and not self.audit:
                # A packed (v2) checkpoint restores the digest set from
                # bytes alone — no state is re-encoded on resume.
                run.index.add_digests(
                    digest_of_packed(packed, self.digest_size)
                    for packed in run.resumed_packed
                )
            else:
                for state in run.order:
                    run.index.add(state)
            if metrics.enabled:
                metrics.counter("engine.resumes").inc()
        else:
            run.order = [root]
            run.edges = {}
            run.frontier = deque([(root, run.index.add(root, run.root_digest))])
        run.started = time.monotonic()
        run.deadline = Deadline(
            self.budget.deadline_seconds, already_elapsed=run.elapsed_prior
        )
        return run

    def _load_resumable(self, run: _Run) -> Checkpoint | None:
        if not self.resume or self.checkpoint_dir is None:
            return None
        path = find_checkpoint(self.checkpoint_dir, run.root_digest)
        if path is None:
            return None
        return load_checkpoint(path)

    # -- drivers --------------------------------------------------------------

    def _drive_sequential(self, run: _Run) -> None:
        budget = self.budget
        cancel = self.cancel
        deadline_enabled = run.deadline.enabled
        polling = deadline_enabled or cancel is not None
        timing = run.metrics.enabled
        progress = self.progress
        while run.frontier:
            if polling and run.expanded % _DEADLINE_STRIDE == 0:
                if cancel is not None and cancel():
                    raise _Exhausted("cancelled", 0.0)
                if deadline_enabled and run.deadline.expired():
                    raise _Exhausted("deadline", budget.deadline_seconds)
            if progress is not None and run.expanded % 256 == 0:
                progress.update(
                    states=len(run.order),
                    frontier=len(run.frontier),
                    workers=1,
                    elapsed=run.elapsed(),
                    budget=budget,
                )
            state, digest = run.frontier.popleft()
            if run.prune is not None and run.prune(state):
                self._commit_pruned(run, state)
            elif timing:
                before = time.perf_counter()
                out = run.view.successors(state)
                run.phase["expand_seconds"] = run.phase.get(
                    "expand_seconds", 0.0
                ) + (time.perf_counter() - before)
                self._commit(run, state, digest, out, None)
            else:
                self._commit(run, state, digest, run.view.successors(state), None)
            self._maybe_checkpoint(run)

    def _drive_parallel(self, run: _Run) -> None:
        budget = self.budget
        pool = WorkerPool(
            self.workers,
            run.view,
            run.prune,
            self.digest_size,
            self.audit,
            expected_states=budget.max_states,
            max_worker_restarts=self.max_worker_restarts,
            restart_backoff_seconds=self.restart_backoff_seconds,
            max_partition_retries=self.max_partition_retries,
            max_state_retries=self.max_state_retries,
            quarantine=self.quarantine,
            fault_plan=self.fault_plan,
            heartbeat_seconds=self.heartbeat_seconds,
            tracer=run.tracer,
            metrics=run.metrics,
        ).start()
        run.pool = pool
        codec = run.codec
        # Coordinator-side tables for the packed wire protocol.
        # ``packed_of`` (digest -> canonical bytes) is the primary one:
        # every digest in the index has an entry — seeded here from the
        # root / the checkpoint, maintained from the novel lists in
        # worker replies, consulted for bootstrap pairs and checkpoints.
        # ``state_of`` (digest -> decoded state) is the coordinator's
        # decode memo: each distinct state is decoded exactly once, at
        # first discovery in the merge loop.
        packed_of: dict = run.packed_of
        state_of: dict = {run.root_digest: run.root}
        if run.resumed:
            if run.resumed_packed is not None:
                for state, packed in zip(run.order, run.resumed_packed):
                    digest = digest_of_packed(packed, self.digest_size)
                    packed_of.setdefault(digest, packed)
                    state_of.setdefault(digest, state)
            else:
                for state in run.order:
                    packed, digest = codec.encode_digest(state)
                    packed_of.setdefault(digest, packed)
                    state_of.setdefault(digest, state)
        if pool.visited is not None:
            # Seed global membership so workers do not re-ship states the
            # coordinator already holds (the root, a resumed graph).
            for digest in packed_of:
                pool.visited.add(digest)
        tasks = run.view.tasks
        intern_action = run.action_intern
        cancel = self.cancel
        try:
            while run.frontier:
                if cancel is not None and cancel():
                    raise _Exhausted("cancelled", 0.0)
                if run.deadline.expired():
                    raise _Exhausted("deadline", budget.deadline_seconds)
                items = []
                for state, digest in run.frontier:
                    if digest is None:
                        digest = run.index.digest(state)
                        state_of.setdefault(digest, state)
                    items.append((state, digest))
                run.frontier.clear()
                round_span = start_span(
                    run.tracer, "round", round=run.rounds + 1, states=len(items)
                )
                results = pool.run_round(
                    run.rounds + 1,
                    items,
                    packed_of,
                    run.phase,
                    round_span_id=None if round_span is None else round_span.span_id,
                )
                # Merge in exact frontier order: this loop — not the
                # workers — is where states are discovered, which is what
                # keeps the graph identical to the sequential one.
                merge_started = time.perf_counter()
                position = 0
                try:
                    for position, (state, digest) in enumerate(items):
                        result = results[position]
                        if result == PRUNED:
                            self._commit_pruned(run, state)
                            continue
                        if result == QUARANTINED:
                            self._commit_quarantined(run, state)
                            continue
                        out = []
                        digests = []
                        if self.audit:
                            # Audit rows carry packed bytes per edge, and
                            # each is decoded on its own (never resolved
                            # through the digest-keyed memo) so the
                            # audited index still compares full *values*
                            # and a digest collision cannot hide behind
                            # the wire format.
                            for task_index, action, succ_digest, succ_packed in result:
                                out.append(
                                    (
                                        tasks[task_index],
                                        intern_action.setdefault(action, action),
                                        codec.decode(succ_packed),
                                    )
                                )
                                digests.append(succ_digest)
                        else:
                            for task_index, action, succ_digest in result:
                                succ = state_of.get(succ_digest)
                                if succ is None:
                                    packed = packed_of.get(succ_digest)
                                    if packed is None:
                                        packed = self._recover_packed(
                                            run, state, succ_digest
                                        )
                                    succ = codec.decode(packed)
                                    state_of[succ_digest] = succ
                                out.append(
                                    (
                                        tasks[task_index],
                                        intern_action.setdefault(action, action),
                                        succ,
                                    )
                                )
                                digests.append(succ_digest)
                        self._commit(run, state, digest, out, digests)
                except _Exhausted:
                    # _commit repaired the frontier as [state, *partial-adds,
                    # *earlier-discoveries]; slot the round's unmerged tail in
                    # right after the offending state to preserve BFS order.
                    state_entry = run.frontier.popleft()
                    run.frontier.extendleft(reversed(items[position + 1 :]))
                    run.frontier.appendleft(state_entry)
                    end_span(run.tracer, round_span, status="exhausted")
                    raise
                finally:
                    run.phase["merge_seconds"] = run.phase.get(
                        "merge_seconds", 0.0
                    ) + (time.perf_counter() - merge_started)
                run.rounds += 1
                if run.tracing:
                    run.tracer.emit(
                        WORKER_ROUND,
                        round=run.rounds,
                        expanded=len(items),
                        shards=pool.last_round_producers,
                        frontier=len(run.frontier),
                    )
                end_span(run.tracer, round_span, frontier=len(run.frontier))
                if self.progress is not None:
                    self.progress.update(
                        states=len(run.order),
                        frontier=len(run.frontier),
                        workers=self.workers,
                        elapsed=run.elapsed(),
                        budget=budget,
                    )
                self._maybe_checkpoint(run)
        finally:
            pool.stop()

    # -- the single merge step ------------------------------------------------

    def _commit_pruned(self, run: _Run, state) -> None:
        run.edges[state] = []
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(STATE_EXPLORED, edges=0, pruned=True)

    def _commit_quarantined(self, run: _Run, state) -> None:
        # The state keeps its node but loses its outgoing edges — the
        # documented breach of the identical-graph guarantee, surfaced
        # via run.quarantined -> EngineReport (the pool already emitted
        # the state_quarantined trace event at detection time).
        run.edges[state] = []
        run.expanded += 1
        run.since_checkpoint += 1
        run.quarantined.append(state)

    def _commit(self, run: _Run, state, digest, out, succ_digests) -> None:
        """Discover ``out``'s successors and record the expansion.

        On a budget breach the method leaves the run in the documented
        checkpoint-consistent shape — the offending state is requeued at
        the frontier's head (its edges entry withheld) with any
        partially-added successors behind it — then signals the driver.
        """
        budget = self.budget
        if (
            budget.max_transitions is not None
            and run.transitions + len(out) > budget.max_transitions
        ):
            run.frontier.appendleft((state, digest))
            raise _Exhausted("transitions", budget.max_transitions)
        # With a state-keyed index the visited set doubles as an intern
        # table: edges reference the first-seen object per state (and per
        # action), so the retained graph holds one object per distinct
        # value instead of one per discovery.
        resolve = getattr(run.index, "resolve", None)
        intern_action = run.action_intern
        rebuilt = [] if resolve is not None else None
        added = []
        for position, (task, action, successor) in enumerate(out):
            known, succ_digest = run.index.check(
                successor, succ_digests[position] if succ_digests else None
            )
            if known:
                if rebuilt is not None:
                    rebuilt.append(
                        (
                            task,
                            intern_action.setdefault(action, action),
                            resolve(successor),
                        )
                    )
                continue
            if budget.max_states is not None and len(run.index) >= budget.max_states:
                run.frontier.extend(added)
                run.frontier.appendleft((state, digest))
                raise _Exhausted("states", budget.max_states)
            succ_digest = run.index.add(successor, succ_digest)
            run.order.append(successor)
            added.append((successor, succ_digest))
            if rebuilt is not None:
                rebuilt.append(
                    (task, intern_action.setdefault(action, action), successor)
                )
        run.frontier.extend(added)
        run.edges[state] = out if rebuilt is None else rebuilt
        run.transitions += len(out)
        run.expanded += 1
        run.since_checkpoint += 1
        if run.tracing:
            run.tracer.emit(
                STATE_EXPLORED, edges=len(out), frontier=len(run.frontier)
            )

    # -- missing-bytes recovery ----------------------------------------------

    def _recover_packed(self, run: _Run, parent, digest: bytes) -> bytes:
        """Re-derive packed bytes a worker reply referenced but never shipped.

        Two rare paths get here: the first inserter of ``digest`` into
        the shared visited table died before its reply left (and no
        retried chunk re-shipped it), or a torn table slot answered
        "present" to a digest nobody holds.  Either way the parent state
        is already known and the view is deterministic, so recomputing
        ``successors(parent)`` in-process reproduces the exact successor
        — the identical-graph guarantee never rests on the table.
        """
        recovered = None
        packed_of = run.packed_of
        for _task, _action, post in run.view.successors(parent):
            packed, post_digest = run.codec.encode_digest(post)
            packed_of.setdefault(post_digest, packed)
            if post_digest == digest:
                recovered = packed
        if recovered is None:
            raise EngineError(
                f"worker reply referenced digest {digest.hex()} that is not "
                "a successor of its parent state; the exploration is "
                "corrupt (please report this)"
            )
        run.recovered += 1
        if run.metrics.enabled:
            run.metrics.counter("engine.recovered_states").inc()
        return recovered

    # -- checkpointing --------------------------------------------------------

    def _maybe_checkpoint(self, run: _Run) -> None:
        if (
            self.checkpoint_dir is not None
            and run.since_checkpoint >= self.checkpoint_interval
        ):
            self._write_checkpoint(run)

    def _write_checkpoint(self, run: _Run) -> Path | None:
        if self.checkpoint_dir is None:
            return None
        checkpoint_span = start_span(run.tracer, "checkpoint", states=len(run.order))
        path = save_checkpoint(
            self.checkpoint_dir,
            Checkpoint(
                root=run.root,
                root_digest=run.root_digest,
                order=run.order,
                edges=run.edges,
                frontier=[state for state, _ in run.frontier],
                transitions=run.transitions,
                elapsed_seconds=run.elapsed(),
                digest_size=self.digest_size,
                workers=self.workers,
            ),
            codec=run.codec,
        )
        run.since_checkpoint = 0
        if run.metrics.enabled:
            run.metrics.counter("engine.checkpoints_written").inc()
        if run.tracing:
            run.tracer.emit(
                CHECKPOINT_SAVED, states=len(run.order), path=str(path)
            )
        end_span(run.tracer, checkpoint_span, path=str(path))
        return path

    # -- reporting ------------------------------------------------------------

    def _build_report(self, run: _Run) -> EngineReport:
        pool = run.pool
        return EngineReport(
            states=len(run.order),
            transitions=run.transitions,
            rounds=run.rounds,
            elapsed_seconds=run.elapsed(),
            workers=self.workers,
            degraded=bool(pool is not None and pool.local and self.workers > 1),
            worker_failures=0 if pool is None else pool.worker_failures,
            worker_respawns=0 if pool is None else pool.worker_respawns,
            partitions_reassigned=0 if pool is None else pool.partitions_reassigned,
            quarantined=(
                ()
                if pool is None
                else tuple(digest.hex() for _, digest in pool.quarantined)
            ),
            quarantined_states=(
                () if pool is None else tuple(state for state, _ in pool.quarantined)
            ),
            worker_rss_kb=(
                ()
                if pool is None
                else tuple(
                    pool.worker_rss_kb.get(worker, 0)
                    for worker in range(pool.workers)
                )
            ),
            recovered_states=run.recovered,
        )

    # -- metrics --------------------------------------------------------------

    def _publish(self, run: _Run) -> None:
        # Reduction stats gathered by the pool (worker replies) belong to
        # the run, metrics or not.
        if run.pool is not None:
            run.orbit_hits += run.pool.orbit_hits
            run.pruned_tasks += run.pool.pruned_tasks
            run.pool.orbit_hits = run.pool.pruned_tasks = 0
        metrics = run.metrics
        if not metrics.enabled:
            return
        metrics.counter("explore.runs").inc()
        metrics.counter("explore.states").inc(len(run.order))
        metrics.counter("explore.transitions").inc(run.transitions)
        metrics.gauge("explore.last_run_states").set(len(run.order))
        metrics.counter("engine.runs").inc()
        metrics.counter("engine.expanded").inc(run.expanded)
        metrics.gauge("engine.workers").set(self.workers)
        # Codec component-cache effectiveness, coordinator + workers
        # combined (the scaling bench asserts on the hit rate).
        hits, misses = run.codec.stats()
        if run.pool is not None:
            hits += run.pool.cache_hits
            misses += run.pool.cache_misses
        if hits:
            metrics.counter("engine.codec.cache_hits").inc(hits)
        if misses:
            metrics.counter("engine.codec.cache_misses").inc(misses)
        if run.pool is not None and run.pool.visited_overflows:
            metrics.counter("engine.visited.overflows").inc(
                run.pool.visited_overflows
            )
        if run.rounds:
            metrics.counter("engine.rounds").inc(run.rounds)
        if run.resumed:
            metrics.gauge("engine.resumed_states").set(len(run.order))
        for name, seconds in run.phase.items():
            if seconds:
                metrics.counter(f"engine.phase.{name}").inc(seconds)
        # Sequential runs accumulate reduction stats inside the view
        # itself; drain them here.  (The drain is inside the
        # metrics-enabled guard on purpose: engines running with
        # NULL_METRICS — e.g. the audit/compare helpers — must leave the
        # view's counters for their caller to read.)
        drain = getattr(run.view, "drain_stats", None)
        if drain is not None:
            orbit_hits, pruned_tasks = drain()
            run.orbit_hits += orbit_hits
            run.pruned_tasks += pruned_tasks
        if run.orbit_hits:
            metrics.counter("engine.reduction.orbit_hits").inc(run.orbit_hits)
        if run.pruned_tasks:
            metrics.counter("engine.reduction.pruned_tasks").inc(run.pruned_tasks)
