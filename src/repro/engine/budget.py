"""Unified exploration budgets and structured exhaustion.

:class:`Budget` bundles the three resources an exploration can run out
of — states, transitions, and wall-clock time — replacing the bare
``max_states`` int threaded through the original explorer.  When a limit
is hit the engine raises :class:`BudgetExhausted`, which

* subclasses :class:`~repro.analysis.explorer.ExplorationBudget`, so
  every existing ``except ExplorationBudget`` (the CLI's exit-code-2
  path, the fall-back to the bounded adversary) keeps working;
* carries the **partial-progress stats** — states and transitions
  explored, elapsed seconds, and the checkpoint the engine wrote on the
  way out — so a budget failure reports how much work was done and where
  to resume it, instead of only the limit that was hit.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

from ..analysis.explorer import ExplorationBudget


@dataclass(frozen=True)
class Budget:
    """Resource limits for one exploration.

    ``None`` disables a limit.  ``deadline_seconds`` is wall-clock time
    per exploration (measured from the start of the run, or from the
    original start for resumed runs — a resumed exploration does not get
    its spent time back).
    """

    max_states: int | None = None
    max_transitions: int | None = None
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        for name in ("max_states", "max_transitions", "deadline_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return (
            self.max_states is None
            and self.max_transitions is None
            and self.deadline_seconds is None
        )

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "max_states": self.max_states,
            "max_transitions": self.max_transitions,
            "deadline_seconds": self.deadline_seconds,
        }

    @classmethod
    def from_json(cls, document: object) -> "Budget":
        """The inverse of :meth:`to_json`, for budgets arriving over a wire.

        Accepts exactly the keys ``to_json`` emits (each optional,
        ``None`` meaning unlimited) and validates types before handing
        off to the constructor's positivity checks, so a malformed
        document fails with a :class:`ValueError`/:class:`TypeError`
        naming the offending field rather than surfacing later as an
        engine crash.
        """
        if not isinstance(document, dict):
            raise TypeError(
                f"Budget.from_json expects a dict, got {type(document).__name__}"
            )
        unknown = set(document) - {
            "max_states",
            "max_transitions",
            "deadline_seconds",
        }
        if unknown:
            raise ValueError(f"unknown Budget field(s): {', '.join(sorted(unknown))}")
        for name in ("max_states", "max_transitions"):
            value = document.get(name)
            if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
                raise TypeError(f"{name} must be an int or None, got {value!r}")
        deadline = document.get("deadline_seconds")
        if deadline is not None and (
            isinstance(deadline, bool) or not isinstance(deadline, (int, float))
        ):
            raise TypeError(
                f"deadline_seconds must be a number or None, got {deadline!r}"
            )
        return cls(
            max_states=document.get("max_states"),
            max_transitions=document.get("max_transitions"),
            deadline_seconds=None if deadline is None else float(deadline),
        )


#: The default budget, matching the original explorer's ``max_states``.
DEFAULT_BUDGET = Budget(max_states=200_000)


def resolve_budget(
    budget: Budget | None,
    max_states: int | None,
    *,
    default: Budget | None = DEFAULT_BUDGET,
    stacklevel: int = 3,
) -> Budget | None:
    """Resolve the ``budget=`` / legacy ``max_states=`` pair of an entry point.

    Every analysis entry point accepts ``budget=Budget(...)`` as the one
    way to bound an exploration; ``max_states=`` survives as a
    deprecated alias.  This helper implements the shared contract:

    * both given — :class:`TypeError` (they would contradict);
    * ``max_states`` given — emit exactly one :class:`DeprecationWarning`
      and return ``Budget(max_states=max_states)``;
    * ``budget`` given — return it unchanged;
    * neither — return ``default``.

    Callers resolve once at the outermost entry point and pass
    ``budget=`` downstream, so a deprecated call warns exactly once.
    """
    if budget is not None and max_states is not None:
        raise TypeError(
            "pass budget=Budget(...) or the deprecated max_states=, not both"
        )
    if max_states is not None:
        warnings.warn(
            "max_states= is deprecated; pass budget=Budget(max_states=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return Budget(max_states=max_states)
    if budget is not None:
        return budget
    return default


class BudgetExhausted(ExplorationBudget):
    """A budget limit was hit; carries partial-progress statistics.

    ``resource`` is ``"states"``, ``"transitions"``, ``"deadline"``, or
    ``"cancelled"`` (a cooperative stop via the engine's ``cancel``
    hook — same checkpoint-consistent exit as a deadline);
    ``checkpoint`` is the path of the snapshot written on exhaustion
    (``None`` when checkpointing was off), from which
    :meth:`~repro.engine.api.ExplorationEngine.explore` can resume;
    ``resume_command`` is the ready-to-run recipe for doing so (set
    whenever ``checkpoint`` is), so the exit-2 path is actionable.
    """

    def __init__(
        self,
        resource: str,
        limit: float,
        states: int,
        transitions: int,
        elapsed_seconds: float,
        checkpoint: object = None,
        resume_command: str | None = None,
    ) -> None:
        self.resource = resource
        self.limit = limit
        self.states = states
        self.transitions = transitions
        self.elapsed_seconds = elapsed_seconds
        self.checkpoint = checkpoint
        self.resume_command = resume_command
        noun = {
            "states": f"reachable state space exceeds {limit:g} states",
            "transitions": f"transition budget of {limit:g} exceeded",
            "deadline": f"deadline of {limit:g}s exceeded",
            "cancelled": "exploration cancelled",
        }.get(resource, f"{resource} budget of {limit:g} exceeded")
        suffix = (
            f" (explored {states} states / {transitions} transitions "
            f"in {elapsed_seconds:.3f}s before exhaustion"
        )
        suffix += f"; checkpoint: {checkpoint})" if checkpoint else ")"
        if resume_command:
            suffix += f"; resume: {resume_command}"
        super().__init__(noun + suffix)

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        return str(self)

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "error": "budget_exhausted",
            "resource": self.resource,
            "limit": self.limit,
            "states": self.states,
            "transitions": self.transitions,
            "elapsed_seconds": self.elapsed_seconds,
            "checkpoint": None if self.checkpoint is None else str(self.checkpoint),
            "resume_command": self.resume_command,
        }


class Deadline:
    """A reusable wall-clock guard over a :class:`Budget`'s deadline.

    Loops that are not explorations (the Fig. 3 hook search, the
    Lemma 6/7 silencing runs) thread one of these and call
    :meth:`check` periodically; it raises :class:`BudgetExhausted` with
    whatever progress numbers the caller reports.
    """

    __slots__ = ("seconds", "_expires")

    def __init__(self, seconds: float | None, already_elapsed: float = 0.0) -> None:
        self.seconds = seconds
        self._expires = (
            None if seconds is None else time.monotonic() + seconds - already_elapsed
        )

    @property
    def enabled(self) -> bool:
        return self._expires is not None

    def remaining(self) -> float | None:
        if self._expires is None:
            return None
        return self._expires - time.monotonic()

    def expired(self) -> bool:
        return self._expires is not None and time.monotonic() >= self._expires

    def check(self, states: int = 0, transitions: int = 0) -> None:
        if self.expired():
            assert self.seconds is not None
            raise BudgetExhausted(
                resource="deadline",
                limit=self.seconds,
                states=states,
                transitions=transitions,
                elapsed_seconds=self.seconds - (self.remaining() or 0.0),
            )
