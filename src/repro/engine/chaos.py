"""Deterministic fault injection for the parallel engine.

The recovery paths of :mod:`repro.engine.parallel` — crash detection,
partition reassignment, bounded respawn, quarantine, pool collapse —
only matter when workers actually die, which they conveniently refuse
to do under test.  A :class:`FaultPlan` makes worker death a
*deterministic, scheduled* event:

* ``kills`` — a set of ``(round, worker)`` pairs; at the start of the
  named exchange round (1-based), the coordinator SIGKILLs that
  worker's process after the round's first chunks are in flight, so the
  loss is detected mid-round exactly like a real OOM kill;
* ``poison`` — a set of state digests; any forked worker asked to
  expand a poisoned state exits hard (``os._exit``) *before* expanding,
  which makes the same state kill every worker it is re-dispatched to —
  the scenario quarantine exists for.

Plans are plain data, so a chaos test and the production engine run the
very same recovery code; nothing is mocked.  The ``REPRO_CHAOS``
environment variable carries a plan into CLI runs (the chaos-smoke CI
job), with the grammar::

    REPRO_CHAOS="kill=ROUND:WORKER[,ROUND:WORKER...] poison=HEX[,HEX...]"

e.g. ``REPRO_CHAOS="kill=2:0"`` kills worker 0 in round 2.  Directives
are whitespace- or semicolon-separated; unknown directives are errors
(a typo silently disabling chaos would defeat the point).

In-process expanders (the no-fork fallback, or a collapsed pool) ignore
fault plans: there is no process to kill.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

#: Environment variable consulted by :meth:`FaultPlan.from_env`.
REPRO_CHAOS = "REPRO_CHAOS"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of worker faults.

    ``kills`` holds ``(round, worker)`` pairs (rounds are 1-based,
    matching the engine's ``worker_round`` trace events); ``poison``
    holds state digests whose expansion hard-exits the worker.
    """

    kills: frozenset = field(default_factory=frozenset)
    poison: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for pair in self.kills:
            if (
                not isinstance(pair, tuple)
                or len(pair) != 2
                or not all(isinstance(part, int) and part >= 0 for part in pair)
            ):
                raise ValueError(
                    f"kills entries must be (round, worker) int pairs, got {pair!r}"
                )
        for digest in self.poison:
            if not isinstance(digest, bytes):
                raise ValueError(f"poison entries must be digest bytes, got {digest!r}")
        object.__setattr__(self, "kills", frozenset(self.kills))
        object.__setattr__(self, "poison", frozenset(self.poison))

    @property
    def enabled(self) -> bool:
        """True when the plan schedules any fault at all."""
        return bool(self.kills) or bool(self.poison)

    def victims_at(self, round_index: int) -> tuple[int, ...]:
        """The workers to kill at the start of ``round_index`` (sorted)."""
        return tuple(
            sorted(worker for round_, worker in self.kills if round_ == round_index)
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_CHAOS`` grammar into a plan.

        Raises :class:`ValueError` on malformed or unknown directives.
        """
        kills = set()
        poison = set()
        for directive in spec.replace(";", " ").split():
            key, _, value = directive.partition("=")
            if not value:
                raise ValueError(f"malformed chaos directive {directive!r}")
            if key == "kill":
                for pair in value.split(","):
                    round_text, _, worker_text = pair.partition(":")
                    try:
                        kills.add((int(round_text), int(worker_text)))
                    except ValueError:
                        raise ValueError(
                            f"malformed kill entry {pair!r} (want ROUND:WORKER)"
                        ) from None
            elif key == "poison":
                for hex_text in value.split(","):
                    try:
                        poison.add(bytes.fromhex(hex_text))
                    except ValueError:
                        raise ValueError(
                            f"malformed poison digest {hex_text!r} (want hex)"
                        ) from None
            else:
                raise ValueError(f"unknown chaos directive {key!r}")
        return cls(kills=frozenset(kills), poison=frozenset(poison))

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The plan from ``REPRO_CHAOS``, or ``None`` when unset/empty."""
        spec = (environ if environ is not None else os.environ).get(REPRO_CHAOS, "")
        if not spec.strip():
            return None
        return cls.parse(spec)
