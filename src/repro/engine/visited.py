"""A shared-memory, lock-free visited table for the worker pool.

Before this table existed, every worker shipped every successor it had
not seen *locally* back to the coordinator, and the coordinator's merge
loop was the only place global membership was known — on wide graphs
most of the reply volume was states some other worker had already
produced.  :class:`SharedVisitedTable` moves the membership test to the
workers: an open-addressing table of fixed-size digests in one
``multiprocessing.shared_memory`` segment, inherited by every forked
worker, where :meth:`test_and_set` answers "has anyone, anywhere,
already produced this digest?" without a message or a lock.

Design constraints, in order:

* **correctness never depends on the table.**  The engine treats the
  table as a *filter* for reply traffic, not as the visited set (the
  coordinator's index remains the single source of truth for what is in
  the graph).  A false "present" answer — possible from a torn 16-byte
  write observed half-written, or from a worker that inserted a digest
  and then died before shipping the bytes — at worst suppresses a
  shipment, and the coordinator recovers by recomputing the successor
  from its already-known parent (the view is deterministic).  A false
  "absent" answer merely ships a duplicate, which the coordinator
  dedupes as it always has.  This is what buys the next property:
* **no locks.**  The pool's chaos model allows SIGKILL at any
  instruction (see :mod:`repro.engine.chaos`); a worker killed while
  holding a cross-process lock would deadlock the pool.  Slot writes
  are plain 16-byte stores — atomic in practice on CPython (one
  ``memcpy`` under the GIL-released buffer copy), but *assumed tearable*
  by the recovery story above, so nothing breaks if they are not;
* **bounded memory.**  The table is sized once from the run's state
  budget (two slots per expected state, clamped to sane powers of two)
  and never grows.  When a probe sequence exhausts :data:`PROBE_LIMIT`
  slots the insert is dropped and the query answers "absent" — degrading
  to pre-table behavior (ship and let the coordinator dedupe) exactly
  when the table gets crowded.

An all-zero slot means empty, so the (astronomically unlikely) all-zero
digest is special-cased as "always absent" rather than given a marker.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised by presence on every CPython >= 3.8
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    shared_memory = None

#: Probes before an insert/query gives up and reports "absent".
PROBE_LIMIT = 128

#: Slot-count clamps: never below 2^14 (256 KiB at 16-byte digests),
#: never above 2^23 (128 MiB) — past that, run against a disk-backed
#: :class:`~repro.engine.store.StateStore` (``store="sqlite:..."``),
#: whose exact visited set replaces this table as the source of truth
#: while the table keeps its filter role per round.
MIN_SLOTS = 1 << 14
MAX_SLOTS = 1 << 23


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can back a table."""
    return shared_memory is not None


def _slot_count(expected_states: int | None) -> int:
    target = MIN_SLOTS if expected_states is None else 2 * expected_states
    slots = MIN_SLOTS
    while slots < target and slots < MAX_SLOTS:
        slots <<= 1
    return slots


class SharedVisitedTable:
    """Fixed-size open-addressing digest table in shared memory.

    One table serves one exploration run: the coordinator creates it
    (seeding the root and any resumed states), forked workers inherit
    the object and probe the same segment, and the coordinator unlinks
    it when the pool stops.  All methods are safe to call from any
    process at any time; see the module docstring for why the lock-free
    races are benign.
    """

    __slots__ = ("slots", "digest_size", "_shm", "_buf", "_mask", "overflows")

    def __init__(
        self, digest_size: int, expected_states: int | None = None
    ) -> None:
        if shared_memory is None:  # pragma: no cover - exotic builds only
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.digest_size = digest_size
        self.slots = _slot_count(expected_states)
        self._mask = self.slots - 1
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.slots * digest_size
        )
        # A fresh segment is zero-filled by the OS; zero slot == empty.
        self._buf = self._shm.buf
        self.overflows = 0

    # -- the one operation ---------------------------------------------------

    def test_and_set(self, digest: bytes) -> bool:
        """Insert ``digest``; returns True when it was already present.

        Probes linearly from a position derived from the digest's own
        bits (digests are uniform, so no second hash is needed).  On
        table overflow (:data:`PROBE_LIMIT` full slots) the digest is
        *not* inserted and the answer is False — "absent" — so callers
        fall back to shipping, never to dropping.
        """
        size = self.digest_size
        buf = self._buf
        mask = self._mask
        index = int.from_bytes(digest[:8], "little") & mask
        empty = b"\x00" * size
        if digest == empty:
            return False
        for _ in range(PROBE_LIMIT):
            offset = index * size
            slot = bytes(buf[offset : offset + size])
            if slot == digest:
                return True
            if slot == empty:
                buf[offset : offset + size] = digest
                return False
            index = (index + 1) & mask
        self.overflows += 1
        return False

    def __contains__(self, digest: bytes) -> bool:
        size = self.digest_size
        buf = self._buf
        mask = self._mask
        index = int.from_bytes(digest[:8], "little") & mask
        empty = b"\x00" * size
        if digest == empty:
            return False
        for _ in range(PROBE_LIMIT):
            offset = index * size
            slot = bytes(buf[offset : offset + size])
            if slot == digest:
                return True
            if slot == empty:
                return False
            index = (index + 1) & mask
        return False

    def add(self, digest: bytes) -> None:
        """Insert without caring about prior membership (seeding)."""
        self.test_and_set(digest)

    # -- lifecycle -----------------------------------------------------------

    def close(self, unlink: bool = False) -> None:
        """Detach from the segment; ``unlink`` destroys it (creator only)."""
        self._buf = None
        try:
            self._shm.close()
            if unlink:
                self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


class LocalVisitedFilter:
    """Plain-set stand-in for :class:`SharedVisitedTable`.

    Used by in-process pools (one address space, no sharing needed) and
    as the fallback when shared memory cannot be allocated.  Exact — no
    probe limit, no overflow.
    """

    __slots__ = ("_digests", "overflows")

    slots = 0

    def __init__(self) -> None:
        self._digests: set[bytes] = set()
        self.overflows = 0

    def test_and_set(self, digest: bytes) -> bool:
        if digest in self._digests:
            return True
        self._digests.add(digest)
        return False

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._digests

    def add(self, digest: bytes) -> None:
        self._digests.add(digest)

    def close(self, unlink: bool = False) -> None:
        self._digests = set()
