"""repro.engine — parallel state-space exploration with budgets and resume.

The engine is the scalable successor of
:func:`repro.analysis.explorer.explore` (which now delegates here):

* :mod:`repro.engine.codec`       — the canonical packed-bytes state
  representation (:class:`Codec`): one TLV encoding that is both the
  fingerprint preimage and the wire/checkpoint format, with a verified
  decode path and component/string interning;
* :mod:`repro.engine.fingerprint` — hash-seed-independent state digests
  (``blake2b`` over the packed bytes); the visited set stores 8-16-byte
  digests instead of full states, with an optional collision-audit mode;
* :mod:`repro.engine.visited`     — the lock-free shared-memory visited
  table (:class:`SharedVisitedTable`) forked workers consult before
  shipping successors back to the coordinator;
* :mod:`repro.engine.budget`      — the unified :class:`Budget`
  (``max_states`` / ``max_transitions`` / ``deadline_seconds``) and the
  structured :class:`BudgetExhausted` carrying partial-progress stats;
* :mod:`repro.engine.checkpoint`  — periodic frontier + visited-set
  snapshots so interrupted or budget-exhausted runs resume instead of
  restarting (monolithic files for in-RAM runs, streaming delta
  segments for store-backed ones);
* :mod:`repro.engine.store`       — the pluggable :class:`StateStore`
  backends (``memory`` / ``sqlite`` / ``mmap``) behind external-memory
  exploration: digest-keyed state storage, a prefix-sharded visited
  set, and a spillable FIFO frontier, so 10^6+-state runs hold packed
  bytes on disk instead of decoded states in RAM;
* :mod:`repro.engine.parallel`    — the fork-based worker pool doing
  frontier-partitioned parallel BFS (states sharded by digest), with an
  in-process fallback when ``workers=1`` or fork is unavailable;
* :mod:`repro.engine.api`         — the :class:`ExplorationEngine`
  facade the analysis layer and the CLI drive, with a documented
  guarantee that the produced graph is identical to the sequential one;
* :mod:`repro.engine.errors`      — the structured :class:`EngineError`
  taxonomy for worker failures (:class:`WorkerLost`,
  :class:`PartitionRetryExhausted`, :class:`StateQuarantined`);
* :mod:`repro.engine.chaos`       — the deterministic fault-injection
  harness (:class:`FaultPlan`, the ``REPRO_CHAOS`` environment
  variable) used to test the pool's crash recovery;
* :mod:`repro.engine.reduction`   — symmetry (orbit-quotient) and
  ample-set partial-order reduction, shrinking the explored graph while
  preserving the queries the analysis layer asks (see
  ``docs/reduction.md`` for the soundness argument and limits).
"""

from .api import EngineReport, ExplorationEngine
from .budget import (
    DEFAULT_BUDGET,
    Budget,
    BudgetExhausted,
    Deadline,
    resolve_budget,
)
from .chaos import FaultPlan
from .codec import (
    Codec,
    CodecError,
    decode_bytes,
    digest_of_packed,
    register_codec_type,
    registered_codec_types,
)
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    Segment,
    checkpoint_meta,
    checkpoint_path,
    compact_segments,
    discard_checkpoint,
    find_checkpoint,
    list_checkpoints,
    load_checkpoint,
    load_segment,
    resume_hint,
    save_checkpoint,
    save_segment,
    segment_dir,
)
from .errors import (
    EngineError,
    PartitionRetryExhausted,
    StateQuarantined,
    WorkerLost,
)
from .fingerprint import (
    DIGEST_SIZE,
    FingerprintCollision,
    FingerprintIndex,
    StateIndex,
    canonical_bytes,
    fingerprint,
    fingerprint_components,
    shard_of,
)
from .parallel import WorkerPool, fork_available
from .store import (
    MemoryStore,
    MmapStore,
    SQLiteStore,
    StateStore,
    StoreConfig,
    StoreError,
    StoreStats,
    open_store,
    resolve_flush_interval,
    resolve_store,
)
from .visited import (
    LocalVisitedFilter,
    SharedVisitedTable,
    shared_memory_available,
)
from .reduction import (
    Canonicalizer,
    ReducedView,
    ReductionAuditError,
    ReductionComparison,
    ReductionConfig,
    audit_reduction,
    build_reduced_view,
    compare_reduction,
)

__all__ = [
    "Budget",
    "BudgetExhausted",
    "Canonicalizer",
    "Checkpoint",
    "CheckpointError",
    "Codec",
    "CodecError",
    "DEFAULT_BUDGET",
    "DIGEST_SIZE",
    "Deadline",
    "EngineError",
    "EngineReport",
    "ExplorationEngine",
    "FaultPlan",
    "FingerprintCollision",
    "FingerprintIndex",
    "LocalVisitedFilter",
    "MemoryStore",
    "MmapStore",
    "PartitionRetryExhausted",
    "ReducedView",
    "ReductionAuditError",
    "ReductionComparison",
    "ReductionConfig",
    "SQLiteStore",
    "Segment",
    "SharedVisitedTable",
    "StateIndex",
    "StateQuarantined",
    "StateStore",
    "StoreConfig",
    "StoreError",
    "StoreStats",
    "WorkerLost",
    "WorkerPool",
    "audit_reduction",
    "build_reduced_view",
    "canonical_bytes",
    "checkpoint_meta",
    "checkpoint_path",
    "compact_segments",
    "compare_reduction",
    "decode_bytes",
    "digest_of_packed",
    "discard_checkpoint",
    "find_checkpoint",
    "fingerprint",
    "fingerprint_components",
    "fork_available",
    "list_checkpoints",
    "load_checkpoint",
    "load_segment",
    "open_store",
    "register_codec_type",
    "registered_codec_types",
    "resolve_budget",
    "resolve_flush_interval",
    "resolve_store",
    "resume_hint",
    "save_checkpoint",
    "save_segment",
    "segment_dir",
    "shard_of",
    "shared_memory_available",
]
