"""Canonical, stable state fingerprinting.

The engine's visited set stores fixed-size digests (8-16 bytes) instead
of full ``State`` objects: workers dedupe and shard by digest, and
checkpoints identify explorations by the digest of their root.  Two
properties make a digest usable for that:

* **canonical** — equal states yield equal digests no matter how their
  parts were built.  Python's builtin ``hash`` fails this across
  *processes* (string hashing is salted per interpreter via
  ``PYTHONHASHSEED``), and ``pickle`` fails it for ``frozenset`` (dump
  order follows salted iteration order).  The canonical encoding
  therefore encodes values itself: a tag-length-value scheme in which
  unordered collections are serialized in sorted-encoding order, so the
  encoding is a pure function of the value;
* **stable** — the encoding depends only on the value's structure, never
  on interpreter state, so digests computed in a worker process, the
  coordinator, or a later resume of a checkpointed run all agree.

The encoding itself lives in :mod:`repro.engine.codec` — since the
packed-bytes refactor it is the engine's *primary* state representation
(shipped over worker pipes and stored in checkpoints), not just hash
input, and the codec adds the decode path and interning caches.  This
module keeps the digest-level API on top of it: :func:`fingerprint`,
:func:`shard_of`, and the visited-set indexes.

Soundness: a digest collision would make the engine silently identify
two distinct states (dropping one subtree of the graph).  With the
default 16-byte BLAKE2b digest, the collision probability over an
``n``-state exploration is about ``n^2 / 2^129`` — below ``10^-28`` even
at a billion states.  For certification-grade runs,
:class:`FingerprintIndex` offers a **collision-audit mode** that
additionally keeps the full state per digest and raises
:class:`FingerprintCollision` the moment two unequal states hash alike,
turning the probabilistic argument into a checked one (at the memory
cost fingerprinting was meant to avoid — audit is a verification mode,
not a production mode).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from .codec import (  # noqa: F401  (canonical_bytes re-exported for compat)
    DIGEST_SIZE,
    _TUPLE,
    Codec,
    _cached_bytes,
    canonical_bytes,
    digest_of_packed,
)

try:  # pragma: no cover - blake2b is part of CPython's hashlib
    from hashlib import blake2b
except ImportError:  # pragma: no cover - exotic builds only
    blake2b = None
    from hashlib import sha256


class FingerprintCollision(RuntimeError):
    """Two unequal states produced the same digest (audit mode only)."""


def fingerprint(value: Any, digest_size: int = DIGEST_SIZE) -> bytes:
    """The ``digest_size``-byte canonical digest of ``value``."""
    return digest_of_packed(canonical_bytes(value), digest_size)


def fingerprint_components(
    state: Any, cache: dict, digest_size: int = DIGEST_SIZE
) -> bytes:
    """:func:`fingerprint` of a tuple state via a per-component cache.

    Bit-identical to ``fingerprint(state, digest_size)``: the tuple
    encoding is tag + length + concatenated component encodings, so the
    digest can be assembled from cached ``canonical_bytes`` of the
    components.  Composite states share component states massively
    (expanding one transition changes one or two components), which
    makes the amortized encoding cost near zero on the engine's hot
    path.  Non-tuple states fall back to plain :func:`fingerprint`.

    :class:`repro.engine.codec.Codec` is the stateful form of this
    helper (it owns the cache, counts hits, and also produces the packed
    bytes); this function remains for callers that manage their own
    cache dict.  Treat that dict as opaque: it is strictly keyed (never
    by plain ``==``, which would conflate ``True``/``1``-style values
    whose canonical encodings differ — see
    :func:`repro.engine.codec._cached_bytes`).
    """
    if type(state) is not tuple:
        return fingerprint(state, digest_size)
    out = bytearray()
    out += _TUPLE
    out += len(state).to_bytes(4, "big")
    for component in state:
        out += _cached_bytes(cache, component)[0]
    return digest_of_packed(bytes(out), digest_size)


def shard_of(digest: bytes, shards: int) -> int:
    """The worker shard owning ``digest`` (frontier partitioning)."""
    return int.from_bytes(digest[:8], "big") % shards


# ---------------------------------------------------------------------------
# The visited set
# ---------------------------------------------------------------------------


class FingerprintIndex:
    """A digest-keyed visited set with an optional collision audit.

    In normal mode only digests are retained; in ``audit`` mode the full
    state is kept per digest and every membership hit is verified by
    value equality, raising :class:`FingerprintCollision` on mismatch.

    Digests are computed through a :class:`~repro.engine.codec.Codec`,
    so the sequential fingerprinting path gets the same per-component
    encode cache as the parallel workers: checking a successor that
    shares most components with its parent re-encodes only the changed
    components.  Pass a shared ``codec`` to pool the cache with other
    participants in the same process (the engine shares one codec
    between its index and its merge loop).
    """

    __slots__ = ("digest_size", "codec", "_digests", "_audit")

    def __init__(
        self,
        digest_size: int = DIGEST_SIZE,
        audit: bool = False,
        codec: Codec | None = None,
    ) -> None:
        self.digest_size = digest_size
        self.codec = codec if codec is not None else Codec(digest_size)
        self._digests: set[bytes] = set()
        self._audit: dict[bytes, Hashable] | None = {} if audit else None

    @property
    def audit(self) -> bool:
        return self._audit is not None

    def __len__(self) -> int:
        return len(self._digests)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._digests

    def digest(self, state: Hashable) -> bytes:
        """The digest of ``state`` under this index's width."""
        return self.codec.digest(state)

    def check(self, state: Hashable, digest: bytes | None = None) -> tuple[bool, bytes]:
        """``(known, digest)`` for ``state``; audits collisions when on."""
        if digest is None:
            digest = self.codec.digest(state)
        known = digest in self._digests
        if known and self._audit is not None:
            stored = self._audit[digest]
            if stored != state:
                raise FingerprintCollision(
                    f"digest {digest.hex()} identifies two distinct states:\n"
                    f"  {stored!r}\n  {state!r}\n"
                    "(raise digest_size, or report if at the default width)"
                )
        return known, digest

    def add(self, state: Hashable, digest: bytes | None = None) -> bytes:
        """Record ``state`` as visited; returns its digest."""
        if digest is None:
            digest = self.codec.digest(state)
        self._digests.add(digest)
        if self._audit is not None:
            self._audit[digest] = state
        return digest

    def add_digests(self, digests: Iterable[bytes]) -> None:
        """Bulk-restore digests (checkpoint resume; audit table not kept)."""
        self._digests.update(digests)


class StateIndex:
    """Exact visited set keyed by full states (the sequential default).

    Same interface as :class:`FingerprintIndex`; dedupes by state
    equality (no collision risk, no encoding cost) and computes digests
    only on demand — the right trade for single-process exploration,
    where the graph retains references to every state anyway.

    The set is stored as a state-to-state mapping so it doubles as an
    **interning table**: :meth:`resolve` maps any state equal to a
    visited one onto the first-seen object, letting the engine store one
    object per distinct state in the graph instead of one per discovery
    (deep composite tuples arrive as fresh objects from every
    expansion).
    """

    __slots__ = ("digest_size", "_states")

    audit = False

    def __init__(self, digest_size: int = DIGEST_SIZE) -> None:
        self.digest_size = digest_size
        self._states: dict[Hashable, Hashable] = {}

    def __len__(self) -> int:
        return len(self._states)

    def digest(self, state: Hashable) -> bytes:
        return fingerprint(state, self.digest_size)

    def check(self, state: Hashable, digest: bytes | None = None) -> tuple[bool, bytes | None]:
        return state in self._states, digest

    def add(self, state: Hashable, digest: bytes | None = None) -> bytes | None:
        self._states[state] = state
        return digest

    def add_states(self, states: Iterable[Hashable]) -> None:
        for state in states:
            self._states[state] = state

    def resolve(self, state: Hashable) -> Hashable:
        """The interned object for ``state`` (``state`` itself if novel)."""
        return self._states.get(state, state)
