"""Symmetry and partial-order reduction for the exploration engine.

Every verdict in this library — valence classification, the Lemma 4
chain, the Fig. 3 hook search, the bounded adversary — is decided by
exhaustive reachability over the failure-free task-transition graph, so
the size of that graph is the cost of everything.  This module shrinks
it two ways, both provably verdict-preserving for the queries actually
asked (full argument in ``docs/reduction.md``):

**Symmetry reduction.**  The paper's own similarity arguments (Lemma 8)
lean on process interchangeability; this module makes it operational.
Automata declare their interchangeability class via
``Automaton.symmetry_key`` (``None`` opts out), and services opt in to
endpoint relabeling via ``supports_endpoint_symmetry`` plus the
``permute_state`` hook.  From those declarations
:func:`_symmetry_permutations` builds the group of endpoint
permutations under which the *composition* is invariant, and
:class:`Canonicalizer` restricts it to the stabilizer of the root (the
permutations fixing the inputs-so-far) and maps every state to the
orbit member with the least :func:`~repro.engine.fingerprint.canonical_bytes`
encoding.  Because each permutation is a strong bisimulation of the
task-transition graph that preserves ``decision_values`` (decisions are
collected endpoint-free), exploring the quotient preserves valence,
``reachable_decision_sets``, hook existence, and the refutation
verdicts.  Canonical representatives are genuinely reachable states
(apply the permutation to the path from the root), so every downstream
consumer still sees real states of the system.

**Partial-order reduction.**  An ample-set style task filter built from
a static independence relation: tasks touching disjoint components
commute (``Composition.enabled`` routes a task's writes to its owner
plus the participants of its action), and buffer operations at disjoint
endpoints of one service touch disjoint FIFO slots.  Only two
conservatively-sound ample shapes are used (see ``_ample``): the
pipeline ``compute`` singleton of a declared FIFO-delivery service, and
an endpoint-local invoke/response set.  Both contain only invisible
actions (no decision change), and every ample transition strictly
consumes or produces service-buffer entries that no other ample
transition replenishes, which rules out ample-only cycles (the C3
"ignoring" proviso) by buffer conservation.  The reduction is sound for
reachability/decision-set queries, **not** for general LTL, and must be
off for hook search, which walks raw interleavings; ``find_hook``
refuses a POR-reduced analysis.

``audit_reduction`` is the executable soundness argument: explore both
graphs on a small instance and assert per-state decision-set equality
across the quotient map.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from math import factorial
from typing import Hashable, Sequence

from ..analysis.explorer import reachable_decision_sets
from ..analysis.view import DeterministicSystemView
from ..ioa.actions import Action
from ..ioa.automaton import State, Task
from .codec import Codec

#: Candidate symmetry groups larger than this (= 7!) are not enumerated;
#: the group degenerates to the identity with a recorded reason instead
#: of stalling — reduction is an optimization, never a prerequisite.
MAX_GROUP_SIZE = 5040


class ReductionAuditError(AssertionError):
    """The reduced graph disagreed with the full graph (audit mode)."""


@dataclass(frozen=True)
class ReductionConfig:
    """Which reductions to apply; see ``--reduction {none,symmetry,por,full}``."""

    symmetry: bool = False
    por: bool = False

    @property
    def enabled(self) -> bool:
        return self.symmetry or self.por

    @classmethod
    def from_name(cls, name: str) -> "ReductionConfig":
        """Parse the CLI spelling of a configuration."""
        try:
            return {
                "none": cls(),
                "symmetry": cls(symmetry=True),
                "por": cls(por=True),
                "full": cls(symmetry=True, por=True),
            }[name]
        except KeyError:
            raise ValueError(
                f"unknown reduction {name!r}; expected none, symmetry, por, or full"
            ) from None


# ---------------------------------------------------------------------------
# Symmetry: the permutation group and the canonicalizer
# ---------------------------------------------------------------------------


class _StatePermuter:
    """One endpoint permutation, applied to composite states.

    The action on a composite state follows the renaming semantics: the
    permuted state's component at ``P_{pi(i)}``'s position is the
    original state of ``P_i`` (sound because a non-``None``
    ``symmetry_key`` asserts process locals never embed the endpoint
    identity), and each service state is relabeled via its
    ``permute_state`` hook.
    """

    __slots__ = ("mapping", "_process_moves", "_service_ops")

    def __init__(self, system, mapping: dict) -> None:
        self.mapping = dict(mapping)
        moves = []
        for endpoint, image in self.mapping.items():
            if image == endpoint:
                continue
            source = system.component_index(system.process(endpoint).name)
            target = system.component_index(system.process(image).name)
            moves.append((source, target))
        self._process_moves = tuple(moves)
        ops = []
        for component in system.services + system.registers:
            if any(self.mapping.get(e, e) != e for e in component.endpoints):
                ops.append((system.component_index(component.name), component))
        self._service_ops = tuple(ops)

    def apply(self, state: State) -> State:
        post = list(state)
        for source, target in self._process_moves:
            post[target] = state[source]
        for index, component in self._service_ops:
            post[index] = component.permute_state(state[index], self.mapping)
        return tuple(post)


def _respected_by_services(system, mapping: dict) -> bool:
    """True iff every service tolerates the permutation.

    A service whose endpoint set is moved must both declare
    ``supports_endpoint_symmetry`` and have its endpoint set preserved
    *as a set* — a permutation mixing endpoints across two different
    services (or out of a service's endpoint set) is refused here, which
    is what keeps, e.g., cross-group permutations of
    ``grouped_delegation_system`` out of the group.
    """
    for component in system.services + system.registers:
        endpoints = component.endpoints
        if all(mapping.get(e, e) == e for e in endpoints):
            continue
        if not getattr(component, "supports_endpoint_symmetry", False):
            return False
        if {mapping.get(e, e) for e in endpoints} != set(endpoints):
            return False
    return True


def _symmetry_permutations(system):
    """The declared symmetry group: ``(non-identity permuters, size, reason)``.

    Processes are grouped into interchangeability classes by
    ``(type, symmetry_key(), input_values)`` — a ``None`` key opts the
    process out entirely.  Candidate permutations permute endpoints
    within each class; each candidate must then be respected by every
    service.  The surviving set (plus the identity) is closed under
    composition and inverse: class membership and per-service endpoint
    invariance are both preserved by composing, so it is a genuine
    permutation group and orbits partition the state space.
    """
    classes: dict = {}
    for process in system.processes:
        key = process.symmetry_key()
        if key is None:
            continue
        classes.setdefault(
            (type(process).__name__, key, process.input_values), []
        ).append(process.endpoint)
    orbits = [endpoints for endpoints in classes.values() if len(endpoints) > 1]
    if not orbits:
        return [], 1, "no interchangeable processes declared"
    size = 1
    for endpoints in orbits:
        size *= factorial(len(endpoints))
    if size > MAX_GROUP_SIZE:
        return [], 1, f"candidate group of size {size} exceeds cap {MAX_GROUP_SIZE}"
    mappings = []
    for images in itertools.product(
        *(itertools.permutations(endpoints) for endpoints in orbits)
    ):
        mapping: dict = {}
        for endpoints, image in zip(orbits, images):
            mapping.update(zip(endpoints, image))
        if all(image == endpoint for endpoint, image in mapping.items()):
            continue
        if _respected_by_services(system, mapping):
            mappings.append(mapping)
    reason = "" if mappings else "no candidate permutation respected by every service"
    return [_StatePermuter(system, m) for m in mappings], len(mappings) + 1, reason


class Canonicalizer:
    """Maps each state to its orbit's canonical representative.

    The group is restricted to the **stabilizer of the root**: only
    permutations with ``pi(root) == root`` are kept, i.e. those fixing
    the inputs-so-far.  This guarantees ``canon(root) == root`` and that
    every state of the quotient graph is reachable from the same root by
    a permuted task sequence.  The representative is the orbit member
    with the least componentwise ``canonical_bytes`` key — a pure
    function of the orbit, so coordinator and forked workers always
    agree.  (Component states repeat across vast numbers of composite
    states, so the key is assembled from a
    :class:`~repro.engine.codec.Codec` per-component encoding cache
    rather than re-encoding whole composites.)

    ``orbit_hits`` counts canonicalizations that returned a different
    representative than their argument (published as the
    ``engine.reduction.orbit_hits`` counter).
    """

    __slots__ = (
        "permuters",
        "group_size",
        "stabilizer_size",
        "reason",
        "orbit_hits",
        "_cache",
        "_codec",
    )

    def __init__(self, system, root: State, codec: Codec | None = None) -> None:
        permuters, group_size, reason = _symmetry_permutations(system)
        self.permuters = tuple(p for p in permuters if p.apply(root) == root)
        self.group_size = group_size
        self.stabilizer_size = len(self.permuters) + 1
        self.reason = reason
        self.orbit_hits = 0
        self._cache: dict = {}
        self._codec = codec or Codec()

    def _key(self, state: State) -> tuple:
        component_bytes = self._codec.component_bytes
        return tuple(component_bytes(c) for c in state)

    def canon(self, state: State) -> State:
        cached = self._cache.get(state)
        if cached is None:
            best, best_key = state, self._key(state)
            images = [state]
            for permuter in self.permuters:
                image = permuter.apply(state)
                images.append(image)
                key = self._key(image)
                if key < best_key:
                    best, best_key = image, key
            # Pre-cache every orbit image: the sibling raw states the
            # exploration is about to produce resolve without re-walking
            # the orbit.
            for image in images:
                self._cache[image] = best
            cached = best
        if cached is not state and cached != state:
            self.orbit_hits += 1
        return cached


# ---------------------------------------------------------------------------
# Partial-order reduction: the two sound ample shapes
# ---------------------------------------------------------------------------


def _por_tables(system):
    """Static POR tables: pipeline compute tasks and endpoint-local sets.

    ``pipeline`` lists the single global ``compute`` task of each service
    declaring ``por_queue_pipeline`` (FIFO delivery, performs enqueue
    without responding).  ``locals_table`` lists, per process whose every
    connected service declares ``por_responses_to_invoker_only``, the
    process's step task plus its per-connection ``(component index,
    endpoint position, output task)`` triples for the buffer guards.
    """
    pipeline = []
    for component in system.services + system.registers:
        if not getattr(component, "por_queue_pipeline", False):
            continue
        names = component.global_task_names()
        if len(names) != 1:
            continue
        pipeline.append(Task(component.name, ("compute", names[0])))
    locals_table = []
    for process in system.processes:
        connections = []
        eligible = True
        for service_id in sorted(process.connections, key=repr):
            component = system.service(service_id)
            if not getattr(component, "por_responses_to_invoker_only", False):
                eligible = False
                break
            connections.append(
                (
                    system.component_index(component.name),
                    component.endpoint_position(process.endpoint),
                    Task(component.name, ("output", process.endpoint)),
                )
            )
        if eligible:
            locals_table.append((Task(process.name, "step"), tuple(connections)))
    return tuple(pipeline), tuple(locals_table)


# ---------------------------------------------------------------------------
# The reduced view
# ---------------------------------------------------------------------------


class ReducedView:
    """A drop-in exploration view applying symmetry/POR over a raw view.

    ``successors`` — the only method the engine's expansion loop calls —
    filters the raw successor list down to an ample set (when ``por``)
    and canonicalizes the successor states (when a canonicalizer is
    set).  Everything else delegates to the raw view: ``step``,
    ``apply``, replay, and decision bookkeeping keep raw semantics, so
    consumers holding raw states (the hook search, Lemma 8, the
    refutation engine) work unchanged.

    ``tasks`` is aliased to the base view's tuple: reduced successor
    triples carry base tasks, and the parallel wire protocol indexes
    into this shared tuple.
    """

    def __init__(self, base, canonicalizer=None, por: bool = False) -> None:
        self.base = base
        self.system = base.system
        self.tasks = base.tasks
        self.canonicalizer = canonicalizer
        self.por = bool(por)
        self.pruned_tasks = 0
        self._pipeline: tuple = ()
        self._locals: tuple = ()
        if self.por:
            self._pipeline, self._locals = _por_tables(base.system)

    def trim_step_cache(self, limit: int | None = None) -> int:
        """Drop the decoded-state memos (base view + orbit cache).

        The store-backed engine calls this on every expansion with a
        cap so a reduced disk-backed run keeps the same RSS ceiling as
        a raw one; see :meth:`DeterministicSystemView.trim_step_cache`.
        The orbit cache is capped independently — its entries hold full
        decoded states too, one per orbit image.
        """
        freed = 0
        trim = getattr(self.base, "trim_step_cache", None)
        if trim is not None:
            freed += trim(limit)
        if self.canonicalizer is not None:
            cache = self.canonicalizer._cache
            if cache and (limit is None or len(cache) > limit):
                freed += len(cache)
                cache.clear()
        return freed

    # -- the reduced expansion ----------------------------------------------

    def successors(self, state: State) -> list[tuple[Task, Action, State]]:
        out = self.base.successors(state)
        if self.por:
            ample = self._ample(state, out)
            if ample is not out:
                self.pruned_tasks += len(out) - len(ample)
                out = ample
        if self.canonicalizer is not None:
            canon = self.canonicalizer.canon
            out = [(task, action, canon(post)) for task, action, post in out]
        return out

    def _ample(self, state, successors):
        """Select an ample subset of ``successors``, or return it unchanged.

        Two shapes, first match wins; both are invisible and satisfy the
        C3 proviso by buffer conservation (see module docstring and
        ``docs/reduction.md``):

        1. The pipeline ``compute`` singleton: a FIFO-delivery service's
           global task with a nonempty queue (progress excludes the
           empty-queue self-loop).  Delivery commutes with every
           non-``compute`` action, and an ample-only cycle would have to
           strictly shrink the queue forever.
        2. The endpoint-local set: a process about to **invoke** (or
           spinning on a pure self-loop) together with the pending
           ``output`` tasks of its connections.  Guards: every connected
           service responds only to its invoker; an endpoint with a
           pending invocation but no pending response is ineligible (a
           deferred ``perform`` would newly enable a dependent
           ``output``); a ``decide`` or a locals-changing non-invoke
           step forces full expansion (visible, or a local cycle could
           starve the rest of the system).
        """
        if len(successors) <= 1:
            return successors
        task_map = {triple[0]: triple for triple in successors}
        for gtask in self._pipeline:
            triple = task_map.get(gtask)
            if triple is not None and triple[2] != state:
                return [triple]
        for ptask, connections in self._locals:
            ptriple = task_map.get(ptask)
            if ptriple is None:
                continue
            self_loop = ptriple[2] == state
            if not self_loop and ptriple[1].kind != "invoke":
                continue
            ample = []
            eligible = True
            for index, position, otask in connections:
                service_state = state[index]
                has_response = bool(service_state.resp_buffers[position])
                if service_state.inv_buffers[position] and not has_response:
                    eligible = False
                    break
                if has_response:
                    otriple = task_map.get(otask)
                    if otriple is None:
                        eligible = False
                        break
                    ample.append(otriple)
            if not eligible:
                continue
            if not self_loop:
                ample.append(ptriple)
            if ample and len(ample) < len(successors):
                return ample
        return successors

    # -- helpers for the analysis layer --------------------------------------

    def canonical(self, state: State) -> State:
        """The canonical representative of ``state`` (identity without symmetry)."""
        if self.canonicalizer is None:
            return state
        return self.canonicalizer.canon(state)

    def drain_stats(self) -> tuple[int, int]:
        """Return and reset ``(orbit_hits, pruned_tasks)`` since the last drain."""
        orbit = 0
        if self.canonicalizer is not None:
            orbit = self.canonicalizer.orbit_hits
            self.canonicalizer.orbit_hits = 0
        pruned = self.pruned_tasks
        self.pruned_tasks = 0
        return orbit, pruned

    # -- raw-semantics delegation --------------------------------------------

    def step(self, state, task):
        return self.base.step(state, task)

    def apply(self, state, task):
        return self.base.apply(state, task)

    def action_of(self, state, task):
        return self.base.action_of(state, task)

    def applicable(self, state, task):
        return self.base.applicable(state, task)

    def applicable_tasks(self, state):
        return self.base.applicable_tasks(state)

    def participants(self, state, task):
        return self.base.participants(state, task)

    def run_task_sequence(self, start, task_sequence, strict=True):
        return self.base.run_task_sequence(start, task_sequence, strict=strict)

    def decisions(self, state):
        return self.base.decisions(state)

    def decision_values(self, state):
        return self.base.decision_values(state)

    def check_failure_free(self, state):
        return self.base.check_failure_free(state)


def build_reduced_view(
    view: DeterministicSystemView, root: State, config: ReductionConfig
) -> ReducedView:
    """A :class:`ReducedView` over ``view`` for exploration from ``root``.

    The canonicalizer's group is the stabilizer of ``root``, so the
    engine may explore directly from ``root`` (``canon(root) == root``).
    """
    canonicalizer = Canonicalizer(view.system, root) if config.symmetry else None
    return ReducedView(view, canonicalizer=canonicalizer, por=config.por)


# ---------------------------------------------------------------------------
# Audit and comparison
# ---------------------------------------------------------------------------


@dataclass
class ReductionComparison:
    """Full-vs-reduced exploration sizes plus the reduction's own stats."""

    full_states: int
    full_transitions: int
    reduced_states: int
    reduced_transitions: int
    state_ratio: float
    transition_ratio: float
    group_size: int
    stabilizer_size: int
    orbit_hits: int
    pruned_tasks: int


def _explore_graph(view, root, max_states):
    from .api import ExplorationEngine
    from .budget import Budget

    engine = ExplorationEngine(workers=1, budget=Budget(max_states=max_states))
    return engine.explore(view, root)


def _run_both(system, root, config, max_states):
    view = DeterministicSystemView(system)
    view.check_failure_free(root)
    full_graph = _explore_graph(view, root, max_states)
    reduced_view = build_reduced_view(view, root, config)
    reduced_graph = _explore_graph(reduced_view, root, max_states)
    return view, full_graph, reduced_view, reduced_graph


def _make_comparison(full_graph, reduced_graph, reduced_view) -> ReductionComparison:
    canonicalizer = reduced_view.canonicalizer
    full_states, full_transitions = len(full_graph), full_graph.edge_count()
    reduced_states, reduced_transitions = len(reduced_graph), reduced_graph.edge_count()
    return ReductionComparison(
        full_states=full_states,
        full_transitions=full_transitions,
        reduced_states=reduced_states,
        reduced_transitions=reduced_transitions,
        state_ratio=full_states / reduced_states if reduced_states else 0.0,
        transition_ratio=(
            full_transitions / reduced_transitions if reduced_transitions else 0.0
        ),
        group_size=canonicalizer.group_size if canonicalizer else 1,
        stabilizer_size=canonicalizer.stabilizer_size if canonicalizer else 1,
        orbit_hits=canonicalizer.orbit_hits if canonicalizer else 0,
        pruned_tasks=reduced_view.pruned_tasks,
    )


def compare_reduction(
    system,
    root: State,
    config: ReductionConfig,
    max_states: int = 200_000,
) -> ReductionComparison:
    """Explore both graphs and report sizes/ratios without asserting."""
    _, full_graph, reduced_view, reduced_graph = _run_both(
        system, root, config, max_states
    )
    return _make_comparison(full_graph, reduced_graph, reduced_view)


def audit_reduction(
    system,
    root: State,
    config: ReductionConfig,
    max_states: int = 200_000,
) -> ReductionComparison:
    """Explore both graphs and assert the reduction preserved every verdict.

    Checks, for every reduced-graph state, that it is reachable in the
    full graph (canonical representatives are genuine states) with an
    identical reachable decision set.  Without POR the check also runs
    the other way: every full-graph state's canonical image must be in
    the reduced graph with the same decision set (the quotient is a
    bisimulation image).  With POR the reduced graph legitimately visits
    fewer states, so only the forward containment applies.  Raises
    :class:`ReductionAuditError` on any mismatch.
    """
    if not config.enabled:
        raise ValueError("audit_reduction requires symmetry or POR to be enabled")
    view, full_graph, reduced_view, reduced_graph = _run_both(
        system, root, config, max_states
    )
    full_sets = reachable_decision_sets(full_graph, view)
    reduced_sets = reachable_decision_sets(reduced_graph, view)
    for state in reduced_graph.states:
        if state not in full_sets:
            raise ReductionAuditError(
                f"reduced graph explored a state unreachable in the full "
                f"graph: {state!r}"
            )
        if reduced_sets[state] != full_sets[state]:
            raise ReductionAuditError(
                f"decision-set mismatch at {state!r}: reduced "
                f"{sorted(reduced_sets[state], key=repr)!r} != full "
                f"{sorted(full_sets[state], key=repr)!r}"
            )
    if not config.por:
        for state in full_graph.states:
            image = reduced_view.canonical(state)
            if image not in reduced_sets:
                raise ReductionAuditError(
                    f"canonical image of full-graph state missing from the "
                    f"reduced graph: {state!r} -> {image!r}"
                )
            if full_sets[state] != reduced_sets[image]:
                raise ReductionAuditError(
                    f"decision-set mismatch across the quotient at {state!r}: "
                    f"full {sorted(full_sets[state], key=repr)!r} != reduced "
                    f"{sorted(reduced_sets[image], key=repr)!r}"
                )
    return _make_comparison(full_graph, reduced_graph, reduced_view)
