"""Exploration snapshots: write, load, locate, and retire checkpoints.

A checkpoint captures everything needed to continue a breadth-first
exploration exactly where it stopped:

* ``order``    — every discovered state, in discovery order (this *is*
  the visited set; the digest set is rebuilt from it on load);
* ``edges``    — the expansions committed so far (``state -> [(task,
  action, successor), ...]``);
* ``frontier`` — discovered-but-not-expanded states, in expansion order;
* ``transitions`` / ``elapsed_seconds`` — progress counters, so resumed
  runs keep honest budgets and reports.

The invariant linking them (maintained by the engine even when a budget
raise interrupts a half-merged expansion): every state is in ``order``;
a state is either a key of ``edges`` or queued in ``frontier``; and
every successor referenced by ``edges`` is in ``order``.  Resuming is
therefore just "rebuild the visited set, continue the loop".

Files are written atomically (temp file + ``os.replace``) and named by
the digest of the exploration's **root** state, so a pipeline that runs
several explorations against one checkpoint directory resumes exactly
the interrupted one and starts the others fresh.  A checkpoint is
deleted when its exploration completes.

The payload is a pickle (states contain arbitrary user values, and every
state already crossed a pickle boundary if workers were involved),
wrapped in a tagged dict so format or version mismatches fail loudly via
:class:`CheckpointError` rather than as attribute errors downstream.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable

from .fingerprint import DIGEST_SIZE, fingerprint

CHECKPOINT_FORMAT = "repro-engine-checkpoint"
CHECKPOINT_VERSION = 1
CHECKPOINT_SUFFIX = ".ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or from another format."""


@dataclass
class Checkpoint:
    """One resumable snapshot of an in-progress exploration."""

    root: Hashable
    root_digest: bytes
    order: list
    edges: dict
    frontier: list
    transitions: int
    elapsed_seconds: float
    digest_size: int = DIGEST_SIZE
    workers: int = 1
    meta: dict = field(default_factory=dict)


def root_digest(root: Hashable, digest_size: int = DIGEST_SIZE) -> bytes:
    """The digest identifying the exploration rooted at ``root``."""
    return fingerprint(root, digest_size)


def checkpoint_path(directory: str | os.PathLike, digest: bytes) -> Path:
    """The canonical checkpoint file for a root digest."""
    return Path(directory) / f"engine-{digest.hex()}{CHECKPOINT_SUFFIX}"


def save_checkpoint(directory: str | os.PathLike, checkpoint: Checkpoint) -> Path:
    """Atomically write ``checkpoint`` into ``directory``; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = checkpoint_path(directory, checkpoint.root_digest)
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "checkpoint": checkpoint,
    }
    temporary = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    try:
        with open(temporary, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temporary, path)
    finally:
        if temporary.exists():  # pragma: no cover - failed write cleanup
            temporary.unlink()
    return path


def load_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Load and validate a checkpoint file."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (pickle.UnpicklingError, EOFError, AttributeError) as error:
        raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a {CHECKPOINT_FORMAT} file")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint version {payload.get('version')!r}, "
            f"this engine reads version {CHECKPOINT_VERSION}"
        )
    checkpoint = payload["checkpoint"]
    if not isinstance(checkpoint, Checkpoint):  # pragma: no cover - corrupt payload
        raise CheckpointError(f"{path} payload is not a Checkpoint")
    return checkpoint


def find_checkpoint(
    directory: str | os.PathLike, digest: bytes
) -> Path | None:
    """The checkpoint file for ``digest`` under ``directory``, if present."""
    path = checkpoint_path(directory, digest)
    return path if path.exists() else None


def list_checkpoints(directory: str | os.PathLike) -> list[Path]:
    """Every checkpoint file under ``directory``, sorted by root digest.

    The serving layer uses this at restart to discover which
    explorations were in flight when the process died: each returned
    path names its root digest (``engine-<digest>.ckpt``), so in-flight
    jobs can be matched to their snapshots without loading payloads.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"engine-*{CHECKPOINT_SUFFIX}"))


def resume_hint(directory: str | os.PathLike) -> str:
    """The ready-to-run recipe for resuming checkpoints under ``directory``.

    Attached to :class:`~repro.engine.budget.BudgetExhausted` whenever
    the engine writes a checkpoint on the way out, so the exit-2 path
    tells the caller *how* to continue, not just that a snapshot exists.
    """
    return (
        f"ExplorationEngine(checkpoint_dir={str(directory)!r}, resume=True)"
        f" (CLI: --resume {directory})"
    )


def discard_checkpoint(directory: str | os.PathLike, digest: bytes) -> None:
    """Remove a completed exploration's checkpoint, if any."""
    path = checkpoint_path(directory, digest)
    try:
        path.unlink()
    except FileNotFoundError:
        pass
