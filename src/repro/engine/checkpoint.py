"""Exploration snapshots: write, load, locate, and retire checkpoints.

A checkpoint captures everything needed to continue a breadth-first
exploration exactly where it stopped:

* ``order``    — every discovered state, in discovery order (this *is*
  the visited set; the digest set is rebuilt from it on load);
* ``edges``    — the expansions committed so far (``state -> [(task,
  action, successor), ...]``);
* ``frontier`` — discovered-but-not-expanded states, in expansion order;
* ``transitions`` / ``elapsed_seconds`` — progress counters, so resumed
  runs keep honest budgets and reports.

The invariant linking them (maintained by the engine even when a budget
raise interrupts a half-merged expansion): every state is in ``order``;
a state is either a key of ``edges`` or queued in ``frontier``; and
every successor referenced by ``edges`` is in ``order``.  Resuming is
therefore just "rebuild the visited set, continue the loop".

Files are written atomically (temp file + ``os.replace``) and named by
the digest of the exploration's **root** state, so a pipeline that runs
several explorations against one checkpoint directory resumes exactly
the interrupted one and starts the others fresh.  A checkpoint is
deleted when its exploration completes.

Format v2 (packed)
------------------

Since the packed-bytes refactor the payload stores each state **once**,
as its canonical packed bytes (:mod:`repro.engine.codec`), with
``edges`` and ``frontier`` flattened to indices into that list plus
interned task/action tables.  This kills the v1 format's quadratic
blowup — pickling ``edges`` used to re-serialize every successor state
per referencing edge — and gives resume a fast path: the visited digest
set is rebuilt from the packed bytes alone (``blake2b(packed)`` *is*
the fingerprint), no state re-encoded.  Tasks, actions, and the
dataclass/enum classes the codec needs for decoding are pickled by
reference alongside, so a fresh process (``--resume`` from the CLI) can
register the classes before decoding.  States the codec cannot
round-trip (repr-encoded components, unpicklable classes) drop the
whole payload back to v1-style object pickling (``mode="pickle"``),
trading size for fidelity.

Compatibility: v1 files (object-pickle payloads from engines before the
format bump) still **load** — resume works across the bump — but saves
always write v2.  :attr:`Checkpoint.packed_order` carries the packed
states out of a v2 load so the engine can seed its tables without
re-encoding; it is ``None`` for v1 loads and ``mode="pickle"`` v2
payloads, where the engine falls back to encoding on resume.

Streaming delta segments (store-backed runs)
--------------------------------------------

Monolithic snapshots rewrite every discovered state per checkpoint —
a multi-GB rewrite at 10^7 states.  Runs with a durable
:class:`~repro.engine.store.StateStore` never do that: the states and
edges stream into the store exactly once, append-only, and the
checkpoint becomes a tiny *segment* file written after each store
flush.  A segment records only what the store cannot reconstruct by
itself: progress counters, the store's durable high-water
:meth:`~repro.engine.store.StateStore.marks`, and the frontier digests.

Segments live in a directory named like the monolithic file
(``engine-<root digest>.segs/``), one ``segment-<n>.seg`` per flush,
appended monotonically during the run (the writer prunes all but the
last two so disk stays bounded — the previous segment survives any
crash mid-write).  Resume loads the newest readable segment, calls
``store.truncate(marks)`` to drop whatever the store absorbed after
that segment was written, reloads the frontier, and *compacts* the
directory down to the chosen segment.  :func:`find_checkpoint` and
:func:`list_checkpoints` surface segment directories alongside v1/v2
files; :func:`load_checkpoint` on a segment directory raises with the
recipe (segments carry no states — a store is required to resume).
"""

from __future__ import annotations

import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable

from .codec import Codec, CodecError, register_codec_type, registered_codec_types
from .fingerprint import DIGEST_SIZE, fingerprint

CHECKPOINT_FORMAT = "repro-engine-checkpoint"
CHECKPOINT_VERSION = 2
CHECKPOINT_SUFFIX = ".ckpt"

SEGMENT_FORMAT = "repro-engine-segment"
SEGMENT_VERSION = 1
SEGMENT_DIR_SUFFIX = ".segs"
SEGMENT_SUFFIX = ".seg"

#: Segments kept on disk during a run (newest + one crash fallback).
_SEGMENT_RETAIN = 2


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or from another format."""


@dataclass
class Checkpoint:
    """One resumable snapshot of an in-progress exploration.

    ``packed_order`` mirrors ``order`` as canonical packed bytes when
    the snapshot came through the packed (v2) path — producers never
    set it; it is populated by :func:`load_checkpoint` so resume can
    rebuild digests from bytes alone.
    """

    root: Hashable
    root_digest: bytes
    order: list
    edges: dict
    frontier: list
    transitions: int
    elapsed_seconds: float
    digest_size: int = DIGEST_SIZE
    workers: int = 1
    meta: dict = field(default_factory=dict)
    packed_order: list | None = field(default=None, repr=False, compare=False)


def root_digest(root: Hashable, digest_size: int = DIGEST_SIZE) -> bytes:
    """The digest identifying the exploration rooted at ``root``."""
    return fingerprint(root, digest_size)


def checkpoint_path(directory: str | os.PathLike, digest: bytes) -> Path:
    """The canonical checkpoint file for a root digest."""
    return Path(directory) / f"engine-{digest.hex()}{CHECKPOINT_SUFFIX}"


def _pack_payload(checkpoint: Checkpoint, codec: Codec) -> dict:
    """The packed (v2) payload body; raises ``CodecError`` if any state
    cannot round-trip through the codec."""
    order = checkpoint.order
    # Positions are keyed by packed bytes, NOT by state equality: two
    # order entries that merely compare equal (1 vs True under a
    # digest-keyed index) are distinct graph nodes with distinct
    # encodings, and an ==-keyed dict would collapse them to one index,
    # pointing edges/frontier at the wrong node after resume.
    index_of: dict[bytes, int] = {}
    packed_order: list = []
    for position, state in enumerate(order):
        packed = codec.encode(state)
        # Verified identity: a state whose encoding cannot reproduce it
        # (repr fallback, unregistered semantics) must not be persisted
        # packed — decode() raises CodecError and we fall back to pickle.
        if codec.decode(packed) != state:
            raise CodecError(f"state at order[{position}] does not round-trip")
        index_of.setdefault(packed, position)
        packed_order.append(packed)

    def position_of(state) -> int:
        # Re-encoding is a warm-cache identity hit: edges and frontier
        # reference the same interned objects ``order`` holds.
        position = index_of.get(codec.encode(state))
        if position is None:
            # An edge or frontier state whose encoding matches nothing
            # in ``order`` (non-canonical alias) cannot be represented
            # by index — demote the whole payload to object pickling.
            raise CodecError("edge/frontier state is not in order")
        return position

    tasks: list = []
    task_index: dict = {}
    actions: list = []
    action_index: dict = {}
    edges: list = []
    for state, rows in checkpoint.edges.items():
        packed_rows = []
        for task, action, successor in rows:
            position = task_index.get(task)
            if position is None:
                position = task_index[task] = len(tasks)
                tasks.append(task)
            slot = action_index.get(action)
            if slot is None:
                slot = action_index[action] = len(actions)
                actions.append(action)
            packed_rows.append((position, slot, position_of(successor)))
        edges.append((position_of(state), packed_rows))
    return {
        "mode": "packed",
        "packed_order": packed_order,
        "edges": edges,
        "frontier": [position_of(state) for state in checkpoint.frontier],
        "tasks": tasks,
        "actions": actions,
        # Classes the codec needs to decode, pickled by reference so a
        # fresh process can re-register them before touching the bytes.
        "codec_types": registered_codec_types(),
        "root_digest": checkpoint.root_digest,
        "digest_size": checkpoint.digest_size,
        "workers": checkpoint.workers,
        "transitions": checkpoint.transitions,
        "elapsed_seconds": checkpoint.elapsed_seconds,
        "meta": checkpoint.meta,
    }


def save_checkpoint(
    directory: str | os.PathLike,
    checkpoint: Checkpoint,
    codec: Codec | None = None,
) -> Path:
    """Atomically write ``checkpoint`` into ``directory``; returns its path.

    Pass the run's :class:`~repro.engine.codec.Codec` to reuse its warm
    component cache; a fresh one is created otherwise.  States that
    cannot round-trip through the codec (or whose classes cannot be
    pickled by reference) demote the payload to ``mode="pickle"``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = checkpoint_path(directory, checkpoint.root_digest)
    payload = {"format": CHECKPOINT_FORMAT, "version": CHECKPOINT_VERSION}
    if codec is None:
        codec = Codec(checkpoint.digest_size)
    try:
        body = _pack_payload(checkpoint, codec)
        blob = pickle.dumps(payload | body, protocol=pickle.HIGHEST_PROTOCOL)
    except (CodecError, pickle.PicklingError, AttributeError, TypeError):
        body = {"mode": "pickle", "checkpoint": checkpoint}
        blob = pickle.dumps(payload | body, protocol=pickle.HIGHEST_PROTOCOL)
    temporary = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    try:
        with open(temporary, "wb") as handle:
            handle.write(blob)
        os.replace(temporary, path)
    finally:
        if temporary.exists():  # pragma: no cover - failed write cleanup
            temporary.unlink()
    return path


def _unpack_payload(payload: dict, path: Path) -> Checkpoint:
    for cls in payload.get("codec_types", {}).values():
        try:
            register_codec_type(cls)
        except CodecError:
            # Already registered to the same qualname in this process;
            # the in-process class wins (it is the one states compare
            # against).
            pass
    codec = Codec(payload["digest_size"])
    try:
        order = [codec.decode(packed) for packed in payload["packed_order"]]
    except CodecError as error:
        raise CheckpointError(f"{path}: cannot decode packed states: {error}") from error
    tasks = payload["tasks"]
    actions = payload["actions"]
    # Stored rows are index-based, so every successor/frontier reference
    # resolves to the exact ``order`` node it was saved against.  The
    # returned ``edges`` dict is state-keyed because that is the
    # :class:`Checkpoint` contract (``run.edges`` in the engine is the
    # same ==-keyed dict), so ==-equal order entries share one key here
    # exactly as they would have live.
    edges = {
        order[state_index]: [
            (tasks[task_slot], actions[action_slot], order[successor_index])
            for task_slot, action_slot, successor_index in rows
        ]
        for state_index, rows in payload["edges"]
    }
    return Checkpoint(
        root=order[0],
        root_digest=payload["root_digest"],
        order=order,
        edges=edges,
        frontier=[order[index] for index in payload["frontier"]],
        transitions=payload["transitions"],
        elapsed_seconds=payload["elapsed_seconds"],
        digest_size=payload["digest_size"],
        workers=payload["workers"],
        meta=payload.get("meta", {}),
        packed_order=payload["packed_order"],
    )


def load_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Load and validate a checkpoint file (v2 packed, v2 pickle, or v1)."""
    path = Path(path)
    if path.is_dir():
        # A delta-segment directory: it carries counters and frontier
        # digests but no states (those live in the run's StateStore), so
        # it cannot become a Checkpoint.  Point the caller at the recipe
        # instead of failing on an unpicklable directory read.
        raise CheckpointError(
            f"{path} is a delta-segment directory; resuming it requires the "
            "run's state store — pass store= (e.g. the original "
            "'sqlite:<path>' URI) to ExplorationEngine, or --store on the CLI"
        )
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (pickle.UnpicklingError, EOFError, AttributeError) as error:
        raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a {CHECKPOINT_FORMAT} file")
    version = payload.get("version")
    if version == 1 or (version == 2 and payload.get("mode") == "pickle"):
        checkpoint = payload.get("checkpoint")
        if not isinstance(checkpoint, Checkpoint):  # pragma: no cover - corrupt
            raise CheckpointError(f"{path} payload is not a Checkpoint")
        return checkpoint
    if version == 2:
        if payload.get("mode") != "packed":  # pragma: no cover - corrupt
            raise CheckpointError(f"{path} has unknown payload mode")
        return _unpack_payload(payload, path)
    raise CheckpointError(
        f"{path} has checkpoint version {version!r}, "
        f"this engine reads versions 1-{CHECKPOINT_VERSION}"
    )


@dataclass
class Segment:
    """One streaming delta checkpoint of a store-backed exploration.

    ``marks`` is the backend-opaque payload of
    :meth:`~repro.engine.store.StateStore.marks` at the flush this
    segment followed; ``frontier_blob`` is the concatenated frontier
    digests in pop order.  ``store_uri`` records the configuration the
    segment was written under, purely as a resume sanity hint.
    """

    root_digest: bytes
    digest_size: int
    seq: int
    states: int
    transitions: int
    elapsed_seconds: float
    workers: int
    marks: dict
    frontier_blob: bytes
    store_uri: str
    meta: dict = field(default_factory=dict)


def segment_dir(directory: str | os.PathLike, digest: bytes) -> Path:
    """The delta-segment directory for a root digest."""
    return Path(directory) / f"engine-{digest.hex()}{SEGMENT_DIR_SUFFIX}"


def _segment_path(segments: Path, seq: int) -> Path:
    return segments / f"segment-{seq:08d}{SEGMENT_SUFFIX}"


def _segment_seq(path: Path) -> int:
    try:
        return int(path.stem.split("-", 1)[1])
    except (IndexError, ValueError):  # pragma: no cover - foreign file
        return -1


def save_segment(directory: str | os.PathLike, segment: Segment) -> Path:
    """Atomically append ``segment`` to its run's segment directory.

    Older segments beyond the retain window are pruned *after* the new
    one lands, so a crash at any point leaves at least one complete
    segment on disk.
    """
    segments = segment_dir(directory, segment.root_digest)
    segments.mkdir(parents=True, exist_ok=True)
    path = _segment_path(segments, segment.seq)
    payload = {
        "format": SEGMENT_FORMAT,
        "version": SEGMENT_VERSION,
        "root_digest": segment.root_digest,
        "digest_size": segment.digest_size,
        "seq": segment.seq,
        "states": segment.states,
        "transitions": segment.transitions,
        "elapsed_seconds": segment.elapsed_seconds,
        "workers": segment.workers,
        "marks": segment.marks,
        "frontier": segment.frontier_blob,
        "store": segment.store_uri,
        "meta": segment.meta,
    }
    temporary = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    try:
        with open(temporary, "wb") as handle:
            handle.write(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    finally:
        if temporary.exists():  # pragma: no cover - failed write cleanup
            temporary.unlink()
    for stale in sorted(segments.glob(f"segment-*{SEGMENT_SUFFIX}"), key=_segment_seq)[
        :-_SEGMENT_RETAIN
    ]:
        stale.unlink(missing_ok=True)
    return path


def load_segment(directory: str | os.PathLike, digest: bytes) -> Segment | None:
    """The newest readable segment for ``digest``, or None.

    Falls back through older segments if the newest is torn or foreign
    (atomic writes make that near-impossible, but resume must never die
    on a half-written file when an older complete one exists).
    """
    segments = segment_dir(directory, digest)
    if not segments.is_dir():
        return None
    candidates = sorted(
        segments.glob(f"segment-*{SEGMENT_SUFFIX}"), key=_segment_seq, reverse=True
    )
    for path in candidates:
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            continue
        if (
            not isinstance(payload, dict)
            or payload.get("format") != SEGMENT_FORMAT
            or payload.get("version") != SEGMENT_VERSION
            or payload.get("root_digest") != digest
        ):
            continue
        return Segment(
            root_digest=payload["root_digest"],
            digest_size=payload["digest_size"],
            seq=payload["seq"],
            states=payload["states"],
            transitions=payload["transitions"],
            elapsed_seconds=payload["elapsed_seconds"],
            workers=payload["workers"],
            marks=payload["marks"],
            frontier_blob=payload["frontier"],
            store_uri=payload["store"],
            meta=payload.get("meta", {}),
        )
    return None


def compact_segments(
    directory: str | os.PathLike, digest: bytes, keep_seq: int
) -> None:
    """Drop every segment of ``digest``'s run except ``keep_seq`` (resume)."""
    segments = segment_dir(directory, digest)
    if not segments.is_dir():
        return
    for path in segments.glob(f"segment-*{SEGMENT_SUFFIX}"):
        if _segment_seq(path) != keep_seq:
            path.unlink(missing_ok=True)


def find_checkpoint(
    directory: str | os.PathLike, digest: bytes
) -> Path | None:
    """The checkpoint for ``digest`` under ``directory``, if present.

    Monolithic files win over segment directories when both exist (a
    store-backed run that later completed monolithically); a segment
    directory only counts when it holds at least one segment file.
    """
    path = checkpoint_path(directory, digest)
    if path.exists():
        return path
    segments = segment_dir(directory, digest)
    if segments.is_dir() and any(segments.glob(f"segment-*{SEGMENT_SUFFIX}")):
        return segments
    return None


def list_checkpoints(directory: str | os.PathLike) -> list[Path]:
    """Every checkpoint under ``directory``, sorted by root digest.

    The serving layer uses this at restart to discover which
    explorations were in flight when the process died: each returned
    path names its root digest (``engine-<digest>.ckpt`` files and
    ``engine-<digest>.segs`` delta-segment directories alike), so
    in-flight jobs can be matched to their snapshots without loading
    payloads.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = list(directory.glob(f"engine-*{CHECKPOINT_SUFFIX}"))
    found.extend(
        segments
        for segments in directory.glob(f"engine-*{SEGMENT_DIR_SUFFIX}")
        if segments.is_dir() and any(segments.glob(f"segment-*{SEGMENT_SUFFIX}"))
    )
    return sorted(found)


def checkpoint_meta(path: str | os.PathLike) -> dict:
    """The ``meta`` dict of one checkpoint, without decoding any states.

    ``path`` is anything :func:`list_checkpoints` returns: a monolithic
    ``.ckpt`` file (the payload is unpickled but its packed states are
    never codec-decoded) or a delta-segment directory (the newest
    readable segment's meta wins).  Checkpoints written by a
    ledger-registered run carry ``run_id`` here, which is how ``repro
    runs`` tooling maps snapshots on disk back to ledger records.
    Unreadable or foreign files return ``{}`` rather than raising — this
    is an introspection helper, not a resume path.
    """
    path = Path(path)
    if path.is_dir():
        candidates = sorted(
            path.glob(f"segment-*{SEGMENT_SUFFIX}"), key=_segment_seq, reverse=True
        )
        for candidate in candidates:
            try:
                with open(candidate, "rb") as handle:
                    payload = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                continue
            if isinstance(payload, dict) and payload.get("format") == SEGMENT_FORMAT:
                meta = payload.get("meta", {})
                return meta if isinstance(meta, dict) else {}
        return {}
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return {}
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        return {}
    if payload.get("mode") == "pickle":
        checkpoint = payload.get("checkpoint")
        meta = getattr(checkpoint, "meta", {})
        return meta if isinstance(meta, dict) else {}
    meta = payload.get("meta", {})
    return meta if isinstance(meta, dict) else {}


def resume_hint(directory: str | os.PathLike) -> str:
    """The ready-to-run recipe for resuming checkpoints under ``directory``.

    Attached to :class:`~repro.engine.budget.BudgetExhausted` whenever
    the engine writes a checkpoint on the way out, so the exit-2 path
    tells the caller *how* to continue, not just that a snapshot exists.
    """
    return (
        f"ExplorationEngine(checkpoint_dir={str(directory)!r}, resume=True)"
        f" (CLI: --resume {directory})"
    )


def discard_checkpoint(directory: str | os.PathLike, digest: bytes) -> None:
    """Remove a completed exploration's checkpoint (file and/or segments)."""
    path = checkpoint_path(directory, digest)
    try:
        path.unlink()
    except FileNotFoundError:
        pass
    segments = segment_dir(directory, digest)
    if segments.is_dir():
        shutil.rmtree(segments, ignore_errors=True)
