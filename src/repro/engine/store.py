"""Pluggable state storage: the external-memory backends behind the engine.

ROADMAP item 2 names memory — not CPU — as the exploration scaling
wall: the full tob(4,1) run peaks around 4 GB RSS for only 359k states,
because the classic engine retains every *decoded* state (plus its
edges) for the duration of the run.  The packed-bytes refactor (PR 8)
made the canonical :mod:`~repro.engine.codec` encoding the primary
representation precisely so the retained data could leave RAM; this
module is where it goes.

A :class:`StateStore` bundles the three structures a breadth-first
exploration actually needs, each keyed by the 16-byte state fingerprint:

* ``digest -> packed`` **state storage** — every discovered state's
  canonical bytes, appended once in discovery order (the append order
  *is* the BFS discovery order, which is what lets a store-backed run
  reproduce the classic engine's graph exactly);
* a **visited set** — exact membership, kept as in-memory digest shards
  (sharded by fingerprint prefix) and rebuilt from the state sequence on
  resume; 16 bytes per state means 10^7 states cost ~160 MB of RAM while
  the multi-KB decoded states stay on disk;
* a spillable **FIFO frontier** — discovered-but-unexpanded digests; an
  in-memory window backed by a spill file, so a 10^6-wide frontier costs
  a bounded amount of RAM.

plus an append-only **expansion log** (``parent, task, action,
successor`` rows) from which :meth:`iter_expansions` replays the exact
edge structure for graph materialization and checkpoint compatibility.

Three backends implement the protocol:

* ``memory`` — plain dicts and deques; today's behavior, used to assert
  the identical-graph guarantee against the disk backends;
* ``sqlite`` — one WAL-mode database (stdlib ``sqlite3``), batched
  writes, durable ``flush()``;
* ``mmap``  — an append-only record log plus an on-disk open-addressing
  hash index (digest -> log offset), memory-mapped for reads.

Stores are selected with a string URI (resolved by
:func:`resolve_store`, the :func:`~repro.engine.budget.resolve_budget`
of storage)::

    ExplorationEngine(store="sqlite:/var/tmp/run")     # URI
    ExplorationEngine(store=StoreConfig(backend="mmap", path=...))
    ExplorationEngine(store=my_store_instance)          # pre-opened

Durability contract (the streaming-delta checkpoint protocol): the
engine calls :meth:`flush` every ``flush_interval`` expansions, then
writes a small *segment* file (counters + frontier digests — see
:mod:`repro.engine.checkpoint`).  :meth:`marks` returns the durable
high-water marks the flush established; on resume the engine calls
:meth:`truncate` with the marks recorded in the segment, dropping any
states or expansion rows the store absorbed after the last segment was
written, so a SIGKILL at any instruction resumes into a consistent
prefix of the run.
"""

from __future__ import annotations

import os
import pickle
import shutil
import struct
import tempfile
import time
import warnings
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Hashable, Iterable, Iterator

from .fingerprint import DIGEST_SIZE

#: The backends :func:`open_store` can construct.
BACKENDS = ("memory", "sqlite", "mmap")

#: Default expansions between store flushes / delta segments.
DEFAULT_FLUSH_INTERVAL = 50_000

#: Default in-memory frontier window (digests) before spilling to disk.
DEFAULT_FRONTIER_WINDOW = 65_536

#: Default visited-set shard count (sharded by fingerprint prefix).
DEFAULT_SHARDS = 16


class StoreError(RuntimeError):
    """A storage backend failed or was driven outside its contract."""


@dataclass(frozen=True)
class StoreConfig:
    """How to open a :class:`StateStore`.

    ``backend`` is one of :data:`BACKENDS`.  ``path`` is the directory a
    disk backend lives in; ``None`` means a scratch temporary directory
    that is deleted when the store closes (fine for one-shot runs,
    useless for kill-and-resume — pass a real path to resume).
    ``flush_interval`` is the number of committed expansions between
    durable flushes (and therefore between delta-checkpoint segments);
    ``frontier_window`` bounds the in-memory frontier before digests
    spill to disk; ``shards`` is the visited-set shard count (sharded by
    the leading byte of the fingerprint).
    """

    backend: str = "memory"
    path: str | None = None
    flush_interval: int = DEFAULT_FLUSH_INTERVAL
    frontier_window: int = DEFAULT_FRONTIER_WINDOW
    shards: int = DEFAULT_SHARDS

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {', '.join(BACKENDS)}; got {self.backend!r}"
            )
        if self.flush_interval < 1:
            raise ValueError("flush_interval must be >= 1")
        if self.frontier_window < 1:
            raise ValueError("frontier_window must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    @classmethod
    def from_uri(cls, uri: str) -> "StoreConfig":
        """Parse a store URI: ``memory``, ``sqlite:/path``, ``mmap:/path``.

        The path part is optional (a scratch directory is used when
        omitted).  Tuning knobs ride a query string:
        ``sqlite:/var/run?flush=10000&window=4096&shards=32``.
        """
        if not isinstance(uri, str) or not uri:
            raise ValueError(f"store URI must be a nonempty string, got {uri!r}")
        backend, _, rest = uri.partition(":")
        rest, _, query = rest.partition("?")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown store backend {backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        overrides: dict = {}
        if query:
            names = {"flush": "flush_interval", "window": "frontier_window", "shards": "shards"}
            for pair in query.split("&"):
                key, _, value = pair.partition("=")
                if key not in names:
                    raise ValueError(
                        f"unknown store option {key!r}; expected one of "
                        f"{', '.join(sorted(names))}"
                    )
                try:
                    overrides[names[key]] = int(value)
                except ValueError:
                    raise ValueError(
                        f"store option {key}= must be an integer, got {value!r}"
                    ) from None
        return cls(backend=backend, path=rest or None, **overrides)

    def to_uri(self) -> str:
        """The canonical URI (inverse of :meth:`from_uri`, defaults omitted)."""
        uri = self.backend
        if self.path is not None:
            uri += f":{self.path}"
        query = []
        if self.flush_interval != DEFAULT_FLUSH_INTERVAL:
            query.append(f"flush={self.flush_interval}")
        if self.frontier_window != DEFAULT_FRONTIER_WINDOW:
            query.append(f"window={self.frontier_window}")
        if self.shards != DEFAULT_SHARDS:
            query.append(f"shards={self.shards}")
        if query:
            if self.path is None:
                uri += ":"
            uri += "?" + "&".join(query)
        return uri


@dataclass
class StoreStats:
    """Storage counters one exploration accumulated (``EngineReport`` feed)."""

    backend: str
    states: int = 0
    spilled_states: int = 0
    flushes: int = 0
    flush_seconds: float = 0.0
    last_flush_seconds: float = 0.0
    bytes_on_disk: int = 0

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "backend": self.backend,
            "states": self.states,
            "spilled_states": self.spilled_states,
            "flushes": self.flushes,
            "flush_seconds": self.flush_seconds,
            "last_flush_seconds": self.last_flush_seconds,
            "bytes_on_disk": self.bytes_on_disk,
        }


class _ShardedVisited:
    """Exact in-memory visited membership, sharded by fingerprint prefix.

    The shard key is the digest's leading byte — fingerprints are
    uniform, so prefix sharding balances for free.  Sharding keeps each
    set small enough that CPython's set resizing never stalls a run on
    one multi-hundred-MB rehash, and gives a disk backend a natural
    unit for future per-shard eviction.
    """

    __slots__ = ("_shards", "_mask", "count")

    def __init__(self, shards: int) -> None:
        size = 1
        while size < shards:
            size <<= 1
        self._shards: list[set] = [set() for _ in range(size)]
        self._mask = size - 1
        self.count = 0

    def add(self, digest: bytes) -> bool:
        """Insert; True when the digest was new."""
        shard = self._shards[digest[0] & self._mask]
        if digest in shard:
            return False
        shard.add(digest)
        self.count += 1
        return True

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._shards[digest[0] & self._mask]

    def __len__(self) -> int:
        return self.count


class _SpillFrontier:
    """FIFO digest queue: an in-memory window backed by a spill file.

    Order invariant: ``head + spill_file[cursor:] + tail``.  Pushes land
    in ``head`` until the window fills, then go through ``tail`` into
    the spill file; pops drain ``head``, refilling it from the spill
    file (then from ``tail``) when it empties.  ``push_front`` exists
    for the engine's budget-breach repair (re-queue the half-merged
    state at the head).  The spill file is scratch: crash recovery
    rebuilds the frontier from the delta segment, not from this file.
    """

    __slots__ = (
        "digest_size",
        "window",
        "_head",
        "_tail",
        "_path",
        "_file",
        "_read_offset",
        "_write_offset",
        "spilled",
    )

    def __init__(self, directory: Path | None, digest_size: int, window: int) -> None:
        self.digest_size = digest_size
        self.window = window
        self._head: deque = deque()
        self._tail: deque = deque()
        self._path = None if directory is None else directory / "frontier.spill"
        self._file = None
        self._read_offset = 0
        self._write_offset = 0
        self.spilled = 0

    def _spill_handle(self):
        if self._file is None:
            if self._path is None:
                raise StoreError("in-memory frontier cannot spill")
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self._path, "w+b")
        return self._file

    def _spill_len(self) -> int:
        return (self._write_offset - self._read_offset) // self.digest_size

    def push(self, digest: bytes) -> None:
        if self._spill_len() == 0 and not self._tail and len(self._head) < self.window:
            self._head.append(digest)
            return
        self._tail.append(digest)
        if len(self._tail) >= self.window:
            self._spill_tail()

    def _spill_tail(self) -> None:
        handle = self._spill_handle()
        handle.seek(self._write_offset)
        blob = b"".join(self._tail)
        handle.write(blob)
        self._write_offset += len(blob)
        self.spilled += len(self._tail)
        self._tail.clear()

    def push_front(self, digest: bytes) -> None:
        self._head.appendleft(digest)

    def pop(self) -> bytes | None:
        if not self._head:
            self._refill()
        if not self._head:
            return None
        return self._head.popleft()

    def _refill(self) -> None:
        pending = self._spill_len()
        if pending:
            handle = self._spill_handle()
            handle.seek(self._read_offset)
            take = min(pending, self.window)
            blob = handle.read(take * self.digest_size)
            self._read_offset += len(blob)
            size = self.digest_size
            self._head.extend(
                blob[offset : offset + size] for offset in range(0, len(blob), size)
            )
            if self._spill_len() == 0:
                # Fully drained: rewind so the file never grows unboundedly.
                handle.seek(0)
                handle.truncate(0)
                self._read_offset = self._write_offset = 0
            return
        if self._tail:
            self._head, self._tail = self._tail, self._head

    def __len__(self) -> int:
        return len(self._head) + self._spill_len() + len(self._tail)

    def __bool__(self) -> bool:
        return len(self) > 0

    def snapshot(self) -> bytes:
        """Every queued digest, in pop order, as one concatenated blob."""
        parts = [b"".join(self._head)]
        if self._spill_len():
            handle = self._spill_handle()
            handle.seek(self._read_offset)
            parts.append(handle.read(self._write_offset - self._read_offset))
        parts.append(b"".join(self._tail))
        return b"".join(parts)

    def load(self, blob: bytes) -> None:
        """Replace the queue contents with a :meth:`snapshot` blob."""
        self._head.clear()
        self._tail.clear()
        if self._file is not None:
            self._file.seek(0)
            self._file.truncate(0)
        self._read_offset = self._write_offset = 0
        size = self.digest_size
        for offset in range(0, len(blob), size):
            self.push(blob[offset : offset + size])

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._path is not None:
            try:
                self._path.unlink()
            except FileNotFoundError:
                pass


class StateStore(ABC):
    """The backend protocol external-memory exploration runs against.

    One store instance serves exactly one exploration (one root).  All
    sequence numbers are discovery indices: :meth:`add` must assign them
    contiguously from 0 in call order, because the engine relies on
    append order being BFS discovery order to reproduce the classic
    engine's graph.

    The expansion log mirrors the classic engine's ``edges`` dict:
    :meth:`append_expansion` is called once per expanded state, in
    expansion order, with that state's outgoing rows (possibly empty —
    pruned and quarantined states record an empty expansion, exactly as
    the classic engine records ``edges[state] = []``).
    """

    #: True when the backend survives process death (enables delta
    #: checkpoints; the memory backend snapshots monolithically instead).
    durable = False

    config: StoreConfig
    digest_size: int

    # -- states ------------------------------------------------------------

    @abstractmethod
    def add(self, digest: bytes, packed: bytes) -> int:
        """Record a newly discovered state; returns its discovery index.

        Discovery indices are contiguous from 0 in call order (= BFS
        discovery order); ``add`` also inserts into the visited set.
        Adding an already-present digest is an idempotent no-op — the
        store keeps the first packed bytes — and returns ``-1`` (the
        engine checks membership first, so the duplicate path is only a
        safety net for replay/recovery callers).
        """

    @abstractmethod
    def get(self, digest: bytes) -> bytes | None:
        """The packed bytes of a discovered state (None when unknown)."""

    @abstractmethod
    def __contains__(self, digest: bytes) -> bool:
        """Visited-set membership."""

    @abstractmethod
    def __len__(self) -> int:
        """States discovered so far."""

    @abstractmethod
    def iter_packed(self) -> Iterator[bytes]:
        """Every state's packed bytes, in discovery order."""

    # -- expansion log -----------------------------------------------------

    @abstractmethod
    def append_expansion(
        self, parent: bytes, rows: list[tuple[int, int, bytes]]
    ) -> None:
        """Record one expansion: ``rows`` are ``(task, action_slot, succ_digest)``."""

    @abstractmethod
    def iter_expansions(self) -> Iterator[tuple[bytes, list[tuple[int, int, bytes]]]]:
        """Expansions in commit order (graph materialization)."""

    @abstractmethod
    def action_slot(self, action: Hashable) -> int:
        """Intern an action object; returns its stable slot."""

    @abstractmethod
    def actions(self) -> list:
        """The interned action table, by slot."""

    # -- frontier ----------------------------------------------------------

    @abstractmethod
    def push(self, digest: bytes) -> None:
        """Queue a digest at the frontier's tail."""

    @abstractmethod
    def push_front(self, digest: bytes) -> None:
        """Re-queue a digest at the frontier's head (budget repair)."""

    @abstractmethod
    def pop(self) -> bytes | None:
        """Dequeue the next frontier digest (None when empty)."""

    @abstractmethod
    def frontier_snapshot(self) -> bytes:
        """The queued digests, pop order, concatenated (segment payload)."""

    @abstractmethod
    def frontier_load(self, blob: bytes) -> None:
        """Replace the frontier with a :meth:`frontier_snapshot` blob."""

    @abstractmethod
    def frontier_len(self) -> int:
        """Queued digests."""

    # -- durability --------------------------------------------------------

    @abstractmethod
    def flush(self) -> None:
        """Make everything added so far durable; advances :meth:`marks`."""

    def marks(self) -> dict:
        """Backend-opaque high-water marks of the last :meth:`flush`."""
        return {}

    def truncate(self, marks: dict) -> None:
        """Drop everything recorded after ``marks`` (resume reconciliation)."""
        raise StoreError(f"{self.config.backend} store cannot truncate")

    @abstractmethod
    def clear(self) -> None:
        """Drop everything: a fresh-start engine wipes a stale store."""

    # -- lifecycle ---------------------------------------------------------

    @abstractmethod
    def stats(self) -> StoreStats:
        """Current :class:`StoreStats`."""

    @abstractmethod
    def close(self) -> None:
        """Release resources (scratch directories are deleted here)."""

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryStore(StateStore):
    """Plain in-RAM backend: today's behavior behind the store protocol.

    Exists so the digest-native driver can be asserted identical against
    the classic one (and against the disk backends) without any disk in
    the loop; not durable, so checkpointing falls back to monolithic
    snapshots.
    """

    durable = False

    def __init__(self, config: StoreConfig, digest_size: int = DIGEST_SIZE) -> None:
        self.config = config
        self.digest_size = digest_size
        self._packed: dict[bytes, bytes] = {}
        self._order: list[bytes] = []
        self._expansions: list = []
        self._actions: list = []
        self._action_index: dict = {}
        self._frontier: deque = deque()
        self._flushes = 0

    def add(self, digest: bytes, packed: bytes) -> int:
        if digest in self._packed:
            return -1
        index = len(self._order)
        self._packed[digest] = packed
        self._order.append(digest)
        return index

    def get(self, digest: bytes) -> bytes | None:
        return self._packed.get(digest)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._packed

    def __len__(self) -> int:
        return len(self._order)

    def iter_packed(self) -> Iterator[bytes]:
        packed = self._packed
        return (packed[digest] for digest in self._order)

    def append_expansion(self, parent, rows) -> None:
        self._expansions.append((parent, rows))

    def iter_expansions(self):
        return iter(self._expansions)

    def action_slot(self, action) -> int:
        slot = self._action_index.get(action)
        if slot is None:
            slot = self._action_index[action] = len(self._actions)
            self._actions.append(action)
        return slot

    def actions(self) -> list:
        return self._actions

    def push(self, digest: bytes) -> None:
        self._frontier.append(digest)

    def push_front(self, digest: bytes) -> None:
        self._frontier.appendleft(digest)

    def pop(self) -> bytes | None:
        return self._frontier.popleft() if self._frontier else None

    def frontier_snapshot(self) -> bytes:
        return b"".join(self._frontier)

    def frontier_load(self, blob: bytes) -> None:
        size = self.digest_size
        self._frontier = deque(
            blob[offset : offset + size] for offset in range(0, len(blob), size)
        )

    def frontier_len(self) -> int:
        return len(self._frontier)

    def flush(self) -> None:
        self._flushes += 1

    def clear(self) -> None:
        self._packed.clear()
        self._order.clear()
        self._expansions.clear()
        self._actions.clear()
        self._action_index.clear()
        self._frontier.clear()

    def stats(self) -> StoreStats:
        return StoreStats(
            backend="memory", states=len(self._order), flushes=self._flushes
        )

    def close(self) -> None:
        self._packed.clear()
        self._order.clear()
        self._expansions.clear()
        self._frontier.clear()


class _DiskStore(StateStore):
    """Shared plumbing of the durable backends (directory, frontier, stats)."""

    durable = True

    def __init__(self, config: StoreConfig, digest_size: int = DIGEST_SIZE) -> None:
        self.config = config
        self.digest_size = digest_size
        if config.path is None:
            self._scratch = True
            self.directory = Path(tempfile.mkdtemp(prefix=f"repro-{config.backend}-"))
        else:
            self._scratch = False
            self.directory = Path(config.path)
            self.directory.mkdir(parents=True, exist_ok=True)
        self._visited = _ShardedVisited(config.shards)
        self._frontier = _SpillFrontier(
            self.directory, digest_size, config.frontier_window
        )
        self._flushes = 0
        self._flush_seconds = 0.0
        self._last_flush_seconds = 0.0
        self._closed = False

    # frontier delegation
    def push(self, digest: bytes) -> None:
        self._frontier.push(digest)

    def push_front(self, digest: bytes) -> None:
        self._frontier.push_front(digest)

    def pop(self) -> bytes | None:
        return self._frontier.pop()

    def frontier_snapshot(self) -> bytes:
        return self._frontier.snapshot()

    def frontier_load(self, blob: bytes) -> None:
        self._frontier.load(blob)

    def frontier_len(self) -> int:
        return len(self._frontier)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._visited

    def __len__(self) -> int:
        return len(self._visited)

    def _disk_bytes(self) -> int:
        total = 0
        try:
            for entry in self.directory.iterdir():
                try:
                    total += entry.stat().st_size
                except OSError:  # pragma: no cover - raced deletion
                    pass
        except OSError:  # pragma: no cover - directory gone
            pass
        return total

    def stats(self) -> StoreStats:
        return StoreStats(
            backend=self.config.backend,
            states=len(self._visited),
            spilled_states=self._frontier.spilled,
            flushes=self._flushes,
            flush_seconds=self._flush_seconds,
            last_flush_seconds=self._last_flush_seconds,
            bytes_on_disk=self._disk_bytes(),
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._frontier.close()
        self._close_backend()
        if self._scratch:
            shutil.rmtree(self.directory, ignore_errors=True)

    def _close_backend(self) -> None:  # pragma: no cover - overridden
        pass


class SQLiteStore(_DiskStore):
    """The ``sqlite`` backend: one WAL database, batched durable writes.

    ``states`` rows carry discovery order via an autoincrementing
    ``seq``; ``expansions``/``edges`` replay the classic engine's edges
    dict in commit order (an expansion of ``nrows`` owns the next
    ``nrows`` edge rows).  Writes buffer in RAM and hit the database in
    one transaction per :meth:`flush`, so the durability point the delta
    checkpoints rely on is also the only fsync.
    """

    def __init__(self, config: StoreConfig, digest_size: int = DIGEST_SIZE) -> None:
        import sqlite3

        super().__init__(config, digest_size)
        self._db = sqlite3.connect(self.directory / "store.db")
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(
            """
            CREATE TABLE IF NOT EXISTS states(
                seq INTEGER PRIMARY KEY, digest BLOB UNIQUE NOT NULL,
                packed BLOB NOT NULL);
            CREATE TABLE IF NOT EXISTS expansions(
                seq INTEGER PRIMARY KEY, parent BLOB NOT NULL,
                nrows INTEGER NOT NULL);
            CREATE TABLE IF NOT EXISTS edges(
                seq INTEGER PRIMARY KEY, task INTEGER NOT NULL,
                action INTEGER NOT NULL, succ BLOB NOT NULL);
            CREATE TABLE IF NOT EXISTS meta(
                key TEXT PRIMARY KEY, value BLOB NOT NULL);
            """
        )
        self._count = 0
        self._pending_states: list[tuple[bytes, bytes]] = []
        self._pending_packed: dict[bytes, bytes] = {}
        self._pending_expansions: list[tuple[bytes, int]] = []
        self._pending_edges: list[tuple[int, int, bytes]] = []
        self._actions: list = []
        self._action_index: dict = {}
        self._actions_dirty = False
        self._reload()

    def _reload(self) -> None:
        """Adopt an existing database (resume): visited set + counters."""
        row = self._db.execute("SELECT MAX(seq) FROM states").fetchone()
        if row[0] is None:
            return
        for (digest,) in self._db.execute("SELECT digest FROM states ORDER BY seq"):
            self._visited.add(bytes(digest))
        self._count = len(self._visited)
        blob = self._db.execute(
            "SELECT value FROM meta WHERE key='actions'"
        ).fetchone()
        if blob is not None:
            self._actions = pickle.loads(blob[0])
            self._action_index = {
                action: slot for slot, action in enumerate(self._actions)
            }

    def add(self, digest: bytes, packed: bytes) -> int:
        if not self._visited.add(digest):
            return -1
        index = self._count
        self._count += 1
        self._pending_states.append((digest, packed))
        self._pending_packed[digest] = packed
        return index

    def get(self, digest: bytes) -> bytes | None:
        packed = self._pending_packed.get(digest)
        if packed is not None:
            return packed
        row = self._db.execute(
            "SELECT packed FROM states WHERE digest=?", (digest,)
        ).fetchone()
        return None if row is None else bytes(row[0])

    def iter_packed(self) -> Iterator[bytes]:
        self.flush()
        for (packed,) in self._db.execute("SELECT packed FROM states ORDER BY seq"):
            yield bytes(packed)

    def append_expansion(self, parent, rows) -> None:
        self._pending_expansions.append((parent, len(rows)))
        self._pending_edges.extend(rows)

    def iter_expansions(self):
        self.flush()
        edges = self._db.execute(
            "SELECT task, action, succ FROM edges ORDER BY seq"
        )
        cursor = 0
        rows = edges.fetchall()
        for parent, nrows in self._db.execute(
            "SELECT parent, nrows FROM expansions ORDER BY seq"
        ).fetchall():
            out = [
                (task, action, bytes(succ))
                for task, action, succ in rows[cursor : cursor + nrows]
            ]
            cursor += nrows
            yield bytes(parent), out

    def action_slot(self, action) -> int:
        slot = self._action_index.get(action)
        if slot is None:
            slot = self._action_index[action] = len(self._actions)
            self._actions.append(action)
            self._actions_dirty = True
        return slot

    def actions(self) -> list:
        return self._actions

    def flush(self) -> None:
        if not (
            self._pending_states
            or self._pending_expansions
            or self._pending_edges
            or self._actions_dirty
        ):
            return
        started = time.perf_counter()
        with self._db:  # one transaction: all-or-nothing per flush
            self._db.executemany(
                "INSERT INTO states(digest, packed) VALUES(?, ?)",
                self._pending_states,
            )
            self._db.executemany(
                "INSERT INTO expansions(parent, nrows) VALUES(?, ?)",
                self._pending_expansions,
            )
            self._db.executemany(
                "INSERT INTO edges(task, action, succ) VALUES(?, ?, ?)",
                self._pending_edges,
            )
            if self._actions_dirty:
                self._db.execute(
                    "INSERT OR REPLACE INTO meta(key, value) VALUES('actions', ?)",
                    (pickle.dumps(self._actions, protocol=pickle.HIGHEST_PROTOCOL),),
                )
                self._actions_dirty = False
        self._pending_states.clear()
        self._pending_packed.clear()
        self._pending_expansions.clear()
        self._pending_edges.clear()
        self._last_flush_seconds = time.perf_counter() - started
        self._flushes += 1
        self._flush_seconds += self._last_flush_seconds

    def marks(self) -> dict:
        return {"states": self._count, "expansions": self._expansion_count()}

    def _expansion_count(self) -> int:
        pending = len(self._pending_expansions)
        row = self._db.execute("SELECT COUNT(*) FROM expansions").fetchone()
        return row[0] + pending

    def truncate(self, marks: dict) -> None:
        self.flush()
        states = marks["states"]
        expansions = marks["expansions"]
        with self._db:
            keep_edges = self._db.execute(
                "SELECT COALESCE(SUM(nrows), 0) FROM expansions "
                "WHERE seq <= (SELECT COALESCE(MAX(seq), 0) FROM ("
                "SELECT seq FROM expansions ORDER BY seq LIMIT ?))",
                (expansions,),
            ).fetchone()[0]
            self._db.execute(
                "DELETE FROM states WHERE seq NOT IN "
                "(SELECT seq FROM states ORDER BY seq LIMIT ?)",
                (states,),
            )
            self._db.execute(
                "DELETE FROM expansions WHERE seq NOT IN "
                "(SELECT seq FROM expansions ORDER BY seq LIMIT ?)",
                (expansions,),
            )
            self._db.execute(
                "DELETE FROM edges WHERE seq NOT IN "
                "(SELECT seq FROM edges ORDER BY seq LIMIT ?)",
                (keep_edges,),
            )
        self._visited = _ShardedVisited(self.config.shards)
        self._count = 0
        self._reload()

    def clear(self) -> None:
        self._pending_states.clear()
        self._pending_packed.clear()
        self._pending_expansions.clear()
        self._pending_edges.clear()
        with self._db:
            self._db.execute("DELETE FROM states")
            self._db.execute("DELETE FROM expansions")
            self._db.execute("DELETE FROM edges")
            self._db.execute("DELETE FROM meta")
        self._visited = _ShardedVisited(self.config.shards)
        self._count = 0
        self._actions = []
        self._action_index = {}
        self._actions_dirty = False
        self._frontier.load(b"")

    def _close_backend(self) -> None:
        try:
            self.flush()
        finally:
            self._db.close()


#: mmap backend record headers.
_LOG_HEADER = struct.Struct("<I")  # packed length; digest follows, then packed
_EXP_HEADER = struct.Struct("<H")  # row count; rows follow
_EDGE_ROW = struct.Struct("<HI")  # task, action slot; succ digest follows
_SLOT = struct.Struct("<Q")  # log offset + 1 (0 = empty slot)

#: Initial mmap index capacity (slots; grows by rebuild at 60% load).
_INDEX_MIN_SLOTS = 1 << 15


class MmapStore(_DiskStore):
    """The ``mmap`` backend: append-only logs + an on-disk hash index.

    ``states.log`` holds ``[len][digest][packed]`` records in discovery
    order; ``index.bin`` is an open-addressing table of 8-byte slots
    (log offset + 1, keyed by the digest bits at the slot's position)
    memory-mapped for reads and writes.  ``edges.log`` holds the
    expansion records.  Appends buffer in RAM; :meth:`flush` writes and
    fsyncs the logs and flushes the index pages, which is the durable
    point :meth:`marks` reports.  The index is sized for the digests it
    holds and rebuilt at double size past 60% load (an offline rehash —
    the store is single-process by contract).
    """

    def __init__(self, config: StoreConfig, digest_size: int = DIGEST_SIZE) -> None:
        import mmap as _mmap

        super().__init__(config, digest_size)
        self._mmap_module = _mmap
        self._log = open(self.directory / "states.log", "a+b")
        self._edges = open(self.directory / "edges.log", "a+b")
        self._index_path = self.directory / "index.bin"
        self._count = 0
        self._log_offset = 0
        self._edges_offset = 0
        self._expansions = 0
        self._pending: list[tuple[bytes, bytes]] = []
        self._pending_packed: dict[bytes, bytes] = {}
        self._pending_offset: dict[bytes, int] = {}
        self._pending_edges: list[bytes] = []
        self._pending_expansions = 0
        self._actions: list = []
        self._action_index: dict = {}
        self._actions_dirty = False
        self._slots = 0
        self._index = None
        self._open_index(_INDEX_MIN_SLOTS)
        self._adopt_log()

    # -- index plumbing ----------------------------------------------------

    def _open_index(self, slots: int) -> None:
        if self._index is not None:
            self._index.close()
        size = slots * _SLOT.size
        with open(self._index_path, "a+b") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() < size:
                handle.truncate(size)
        self._index_file = open(self._index_path, "r+b")
        actual = os.fstat(self._index_file.fileno()).st_size
        self._slots = actual // _SLOT.size
        self._index = self._mmap_module.mmap(self._index_file.fileno(), 0)

    def _probe(self, digest: bytes) -> tuple[int, int | None]:
        """(slot index for insert, stored offset or None) for ``digest``."""
        mask = self._slots - 1
        index = int.from_bytes(digest[:8], "little") & mask
        view = self._index
        while True:
            position = index * _SLOT.size
            (value,) = _SLOT.unpack_from(view, position)
            if value == 0:
                return index, None
            offset = value - 1
            if self._digest_at(offset) == digest:
                return index, offset
            index = (index + 1) & mask

    def _digest_at(self, offset: int) -> bytes:
        self._log.seek(offset + _LOG_HEADER.size)
        return self._log.read(self.digest_size)

    def _packed_at(self, offset: int) -> bytes:
        self._log.seek(offset)
        (length,) = _LOG_HEADER.unpack(self._log.read(_LOG_HEADER.size))
        self._log.seek(offset + _LOG_HEADER.size + self.digest_size)
        return self._log.read(length)

    def _index_insert(self, digest: bytes, offset: int) -> None:
        if (self._count + 1) * 10 > self._slots * 6:
            self._grow_index()
        slot, existing = self._probe(digest)
        if existing is None:
            _SLOT.pack_into(self._index, slot * _SLOT.size, offset + 1)

    def _grow_index(self) -> None:
        entries = []
        view = self._index
        for slot in range(self._slots):
            (value,) = _SLOT.unpack_from(view, slot * _SLOT.size)
            if value:
                entries.append(value)
        self._index.close()
        self._index = None
        self._index_file.close()
        self._index_path.unlink()
        self._open_index(self._slots * 2)
        mask = self._slots - 1
        for value in entries:
            digest = self._digest_at(value - 1)
            index = int.from_bytes(digest[:8], "little") & mask
            while True:
                position = index * _SLOT.size
                (existing,) = _SLOT.unpack_from(self._index, position)
                if existing == 0:
                    _SLOT.pack_into(self._index, position, value)
                    break
                index = (index + 1) & mask

    def _adopt_log(self) -> None:
        """Scan an existing log (resume): rebuild visited set + index."""
        self._log.seek(0, os.SEEK_END)
        end = self._log.tell()
        if end == 0:
            return
        offset = 0
        while offset < end:
            self._log.seek(offset)
            header = self._log.read(_LOG_HEADER.size)
            if len(header) < _LOG_HEADER.size:
                break  # torn tail from a crash mid-write; dropped
            (length,) = _LOG_HEADER.unpack(header)
            digest = self._log.read(self.digest_size)
            record_end = offset + _LOG_HEADER.size + self.digest_size + length
            if len(digest) < self.digest_size or record_end > end:
                break
            self._visited.add(digest)
            self._count += 1
            self._index_insert(digest, offset)
            offset = record_end
        self._log_offset = offset
        self._log.truncate(offset)
        self._edges.seek(0, os.SEEK_END)
        self._edges_offset = self._edges.tell()
        self._expansions = self._count_expansions(self._edges_offset)
        actions_path = self.directory / "actions.pkl"
        if actions_path.exists():
            self._actions = pickle.loads(actions_path.read_bytes())
            self._action_index = {
                action: slot for slot, action in enumerate(self._actions)
            }

    def _count_expansions(self, end: int) -> int:
        count = 0
        offset = 0
        size = self.digest_size
        while offset < end:
            self._edges.seek(offset + size)
            header = self._edges.read(_EXP_HEADER.size)
            if len(header) < _EXP_HEADER.size:
                break
            (nrows,) = _EXP_HEADER.unpack(header)
            offset += size + _EXP_HEADER.size + nrows * (_EDGE_ROW.size + size)
            if offset > end:
                break
            count += 1
        return count

    # -- protocol ----------------------------------------------------------

    def add(self, digest: bytes, packed: bytes) -> int:
        if not self._visited.add(digest):
            return -1
        index = self._count
        self._count += 1
        self._pending.append((digest, packed))
        self._pending_packed[digest] = packed
        return index

    def get(self, digest: bytes) -> bytes | None:
        packed = self._pending_packed.get(digest)
        if packed is not None:
            return packed
        _, offset = self._probe(digest)
        return None if offset is None else self._packed_at(offset)

    def iter_packed(self) -> Iterator[bytes]:
        self.flush()
        offset = 0
        while offset < self._log_offset:
            yield self._packed_at(offset)
            self._log.seek(offset)
            (length,) = _LOG_HEADER.unpack(self._log.read(_LOG_HEADER.size))
            offset += _LOG_HEADER.size + self.digest_size + length

    def append_expansion(self, parent, rows) -> None:
        parts = [parent, _EXP_HEADER.pack(len(rows))]
        for task, action, succ in rows:
            parts.append(_EDGE_ROW.pack(task, action))
            parts.append(succ)
        self._pending_edges.append(b"".join(parts))
        self._pending_expansions += 1

    def iter_expansions(self):
        self.flush()
        offset = 0
        size = self.digest_size
        end = self._edges_offset
        while offset < end:
            self._edges.seek(offset)
            parent = self._edges.read(size)
            (nrows,) = _EXP_HEADER.unpack(self._edges.read(_EXP_HEADER.size))
            rows = []
            for _ in range(nrows):
                task, action = _EDGE_ROW.unpack(self._edges.read(_EDGE_ROW.size))
                rows.append((task, action, self._edges.read(size)))
            offset += size + _EXP_HEADER.size + nrows * (_EDGE_ROW.size + size)
            yield parent, rows

    def action_slot(self, action) -> int:
        slot = self._action_index.get(action)
        if slot is None:
            slot = self._action_index[action] = len(self._actions)
            self._actions.append(action)
            self._actions_dirty = True
        return slot

    def actions(self) -> list:
        return self._actions

    def flush(self) -> None:
        if not (self._pending or self._pending_edges or self._actions_dirty):
            return
        started = time.perf_counter()
        if self._pending:
            # Write the whole batch as one blob and flush it BEFORE any
            # index insert.  The inserts probe the log (``_digest_at``
            # on slot collisions, and ``_grow_index`` re-reads every
            # entry), and interleaving those buffered-file reads with
            # buffered appends silently LOSES writes on CPython's
            # ``a+b`` files — reads reposition the stream and pending
            # buffered writes are dropped instead of landing at EOF.
            offset = self._log_offset
            blob = bytearray()
            inserts = []
            for digest, packed in self._pending:
                blob += _LOG_HEADER.pack(len(packed))
                blob += digest
                blob += packed
                inserts.append((digest, offset))
                offset += _LOG_HEADER.size + len(digest) + len(packed)
            self._log.seek(self._log_offset)
            self._log.write(blob)
            self._log.flush()
            os.fsync(self._log.fileno())
            self._log_offset = offset
            for digest, record_offset in inserts:
                self._index_insert(digest, record_offset)
        else:
            self._log.flush()
            os.fsync(self._log.fileno())
        if self._pending_edges:
            self._edges.seek(self._edges_offset)
            blob = b"".join(self._pending_edges)
            self._edges.write(blob)
            self._edges_offset += len(blob)
            self._expansions += self._pending_expansions
            self._edges.flush()
            os.fsync(self._edges.fileno())
        if self._actions_dirty:
            blob = pickle.dumps(self._actions, protocol=pickle.HIGHEST_PROTOCOL)
            temporary = self.directory / f"actions.pkl.tmp{os.getpid()}"
            temporary.write_bytes(blob)
            os.replace(temporary, self.directory / "actions.pkl")
            self._actions_dirty = False
        self._index.flush()
        self._pending.clear()
        self._pending_packed.clear()
        self._pending_edges.clear()
        self._pending_expansions = 0
        self._last_flush_seconds = time.perf_counter() - started
        self._flushes += 1
        self._flush_seconds += self._last_flush_seconds

    def marks(self) -> dict:
        return {
            "states": self._count,
            "log_offset": self._log_offset + sum(
                _LOG_HEADER.size + self.digest_size + len(packed)
                for _, packed in self._pending
            ),
            "edges_offset": self._edges_offset
            + sum(len(blob) for blob in self._pending_edges),
            "expansions": self._expansions + self._pending_expansions,
        }

    def truncate(self, marks: dict) -> None:
        self.flush()
        self._log.truncate(marks["log_offset"])
        self._edges.truncate(marks["edges_offset"])
        self._edges_offset = marks["edges_offset"]
        self._expansions = marks["expansions"]
        # Rebuild membership and the index from the surviving log prefix.
        self._visited = _ShardedVisited(self.config.shards)
        self._count = 0
        self._log_offset = 0
        self._index.close()
        self._index = None
        self._index_file.close()
        self._index_path.unlink()
        self._open_index(_INDEX_MIN_SLOTS)
        self._adopt_log()

    def clear(self) -> None:
        self._pending.clear()
        self._pending_packed.clear()
        self._pending_edges.clear()
        self._pending_expansions = 0
        self._actions = []
        self._action_index = {}
        self._actions_dirty = False
        (self.directory / "actions.pkl").unlink(missing_ok=True)
        self._log.truncate(0)
        self._edges.truncate(0)
        self._frontier.load(b"")
        self.truncate(
            {"states": 0, "log_offset": 0, "edges_offset": 0, "expansions": 0}
        )

    def _close_backend(self) -> None:
        try:
            self.flush()
        finally:
            if self._index is not None:
                self._index.close()
            self._index_file.close()
            self._log.close()
            self._edges.close()


def open_store(
    config: StoreConfig,
    digest_size: int = DIGEST_SIZE,
    namespace: str | None = None,
) -> StateStore:
    """Open a backend for one exploration.

    ``namespace`` (the engine passes the root digest's hex) is appended
    to the configured path so one configured directory can serve every
    exploration of a pipeline without the visited sets colliding —
    exactly how checkpoint files are named by root digest.
    """
    if namespace is not None and config.path is not None:
        config = replace(config, path=str(Path(config.path) / namespace))
    if config.backend == "memory":
        return MemoryStore(config, digest_size)
    if config.backend == "sqlite":
        return SQLiteStore(config, digest_size)
    return MmapStore(config, digest_size)


def resolve_store(store) -> StoreConfig | StateStore | None:
    """Resolve the engine's ``store=`` argument (URI, config, instance).

    Returns ``None`` (classic in-memory exploration), a
    :class:`StoreConfig` the engine opens per exploration (namespaced by
    root digest), or a ready :class:`StateStore` instance the caller
    owns (bound to exactly one exploration).
    """
    if store is None or isinstance(store, (StoreConfig, StateStore)):
        return store
    if isinstance(store, str):
        return StoreConfig.from_uri(store)
    raise TypeError(
        "store must be None, a URI string, a StoreConfig, or a StateStore; "
        f"got {type(store).__name__}"
    )


def resolve_flush_interval(
    flush_interval: int | None,
    checkpoint_interval: int | None,
    *,
    store: StoreConfig | StateStore | None = None,
    stacklevel: int = 3,
) -> int:
    """Resolve ``flush_interval=`` / legacy ``checkpoint_interval=``.

    The store redesign renamed the engine's snapshot cadence: one
    ``flush_interval`` now governs both the delta-segment cadence of
    disk-backed runs and the monolithic-snapshot cadence of classic
    runs (and defaults from the store's own
    :attr:`StoreConfig.flush_interval` when a store is configured).
    ``checkpoint_interval=`` survives as a deprecated alias, mirroring
    the :func:`~repro.engine.budget.resolve_budget` contract: both
    given is a :class:`TypeError`; the alias warns exactly once per
    call site.
    """
    if flush_interval is not None and checkpoint_interval is not None:
        raise TypeError(
            "pass flush_interval= or the deprecated checkpoint_interval=, not both"
        )
    if checkpoint_interval is not None:
        warnings.warn(
            "checkpoint_interval= is deprecated; pass flush_interval= "
            "(or a store with StoreConfig(flush_interval=...)) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return checkpoint_interval
    if flush_interval is not None:
        return flush_interval
    config = getattr(store, "config", store)
    if isinstance(config, StoreConfig):
        return config.flush_interval
    return DEFAULT_FLUSH_INTERVAL
