"""The multiprocessing substrate of the parallel engine.

The engine parallelizes the *expensive* half of breadth-first search —
computing ``view.successors(state)`` and the successor digests — while
the coordinator keeps the cheap half (digest-set membership, graph
assembly) single-threaded, which is what makes the result provably
identical to the sequential graph (see :mod:`repro.engine.api`).

Workers are plain ``multiprocessing`` pool processes created with the
**fork** start method.  Fork is a requirement, not a preference: systems
under analysis close over local functions (service ``delta`` closures)
and are not picklable, so the only way a worker can hold the
:class:`~repro.analysis.view.DeterministicSystemView` is by inheriting
the parent's memory image.  :func:`worker_pool` returns ``None`` when
the platform cannot fork (or when one worker was requested), and the
engine falls back to in-process execution — same algorithm, same graph,
no processes.

States, tasks, and actions *are* picklable (plain immutable values by
the model's design), which is all that crosses the pipe: batches of
frontier states go out, ``(task, action, successor, digest)`` expansion
lists come back.  Frontier states are sharded to batches by
:func:`~repro.engine.fingerprint.shard_of` over their digest, so a
state's owning worker is a pure function of its value — the property
that keeps per-worker caches coherent across rounds.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Hashable, Sequence

from .fingerprint import fingerprint

# Worker-process globals, installed by the pool initializer.  Under the
# fork start method these are inherited references, never pickled.
_VIEW = None
_PRUNE = None
_DIGEST_SIZE = 16

#: Marker returned for a pruned state instead of its successor list.
PRUNED = "__pruned__"


def _initialize_worker(view, prune, digest_size) -> None:
    global _VIEW, _PRUNE, _DIGEST_SIZE
    _VIEW = view
    _PRUNE = prune
    _DIGEST_SIZE = digest_size


def expand_batch(states: Sequence[Hashable]) -> list:
    """Expand one shard's batch of frontier states.

    For each state returns either :data:`PRUNED` or the list of
    ``(task, action, successor, successor_digest)`` tuples.  Digests are
    computed worker-side so the coordinator's merge loop never encodes a
    state — fingerprinting parallelizes with expansion.
    """
    view = _VIEW
    prune = _PRUNE
    size = _DIGEST_SIZE
    results = []
    for state in states:
        if prune is not None and prune(state):
            results.append(PRUNED)
            continue
        results.append(
            [
                (task, action, successor, fingerprint(successor, size))
                for task, action, successor in view.successors(state)
            ]
        )
    return results


def fork_available() -> bool:
    """True when the platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def worker_pool(
    workers: int,
    view,
    prune: Callable[[Hashable], bool] | None,
    digest_size: int,
):
    """A fork-based pool of ``workers`` expansion processes, or ``None``.

    ``None`` means "run in-process": requested one worker, or the
    platform lacks fork (the unpicklable view cannot reach a spawned
    child).  Callers must ``terminate()``/``join()`` the pool when done;
    the engine wraps it in a ``try/finally``.
    """
    if workers <= 1 or not fork_available():
        return None
    context = multiprocessing.get_context("fork")
    return context.Pool(
        processes=workers,
        initializer=_initialize_worker,
        initargs=(view, prune, digest_size),
    )


def expand_batches_inline(
    batches: Sequence[Sequence[Hashable]],
    view,
    prune: Callable[[Hashable], bool] | None,
    digest_size: int,
) -> list[list]:
    """The in-process fallback: expand every batch in the caller."""
    _initialize_worker(view, prune, digest_size)
    return [expand_batch(batch) for batch in batches]
