"""The multiprocessing substrate of the parallel engine.

The engine parallelizes the *expensive* half of breadth-first search —
computing ``view.successors(state)`` and the successor encodings — while
the coordinator keeps the cheap half (digest-set membership, graph
assembly) single-threaded, which is what makes the result provably
identical to the sequential graph (see :mod:`repro.engine.api`).

Workers are long-lived ``multiprocessing`` processes created with the
**fork** start method, each attached to the coordinator by a duplex
pipe.  Fork is a requirement, not a preference: systems under analysis
close over local functions (service ``delta`` closures) and are not
picklable, so the only way a worker can hold the
:class:`~repro.analysis.view.DeterministicSystemView` is by inheriting
the parent's memory image.  When the platform cannot fork (or one
worker was requested), :class:`WorkerPool` runs on
:class:`LocalExpander` stand-ins — same protocol, same graph, no
processes.

Wire protocol
-------------

States never cross the pipe as Python object graphs.  The engine's
primary representation is the **packed canonical bytes** of
:mod:`repro.engine.codec` — the same TLV encoding whose BLAKE2b digest
is the state's fingerprint, produced in the same pass
(:meth:`~repro.engine.codec.Codec.encode_digest`), so a worker that has
fingerprinted a successor already holds its wire form for free.  Each
worker keeps a ``digest -> state`` store of every state it has expanded
or produced (decoded objects stay local; the view's step cache pins
them anyway), and the coordinator ships an outbound frontier entry as
either

* a bare 16-byte digest — the worker re-resolves the state from its
  local store; or
* a ``(digest, packed)`` bootstrap pair when the digest's owner never
  had the state (the root, a resumed frontier, or a successor first
  produced by another worker) — the worker decodes the packed bytes.

Outbound messages are ``(entries, ship_all)`` pairs; ``ship_all`` is
the crash-recovery flag described below.

Replies carry ``(task_index, action_index, successor_digest)`` triples
— indices into the shared ``view.tasks`` tuple and a per-worker action
table — plus a ``novel`` list of ``(digest, packed)`` pairs for
successors this worker inserted first into the **shared visited table**
(:class:`~repro.engine.visited.SharedVisitedTable`, one lock-free
shared-memory segment inherited by every fork): a successor some other
worker already produced is *not* re-shipped, which is what keeps reply
volume proportional to distinct new states rather than to edges.  The
reply tuple also carries the newly-tabled actions, a stats tuple
(per-phase timings, reduction counters, the worker's own peak RSS, and
codec cache hit/miss deltas), and — when the coordinator's tracer or
metrics registry is enabled — a self-contained telemetry batch of span
events and counters (see :mod:`repro.obs.spans`), ``None`` otherwise.
In the engine's collision-audit mode every reply triple carries the
successor's packed bytes as a fourth field so the coordinator can
decode and compare *values* per row, trading the wire savings for the
checked guarantee.

Replies are **batched**: a worker drains up to :data:`BATCH_REPLIES`
queued chunks from its pipe before replying once with the list of
per-chunk payloads, amortizing pickle and wakeup costs across chunks.
Because a batch defers every chunk's payload to one send, the worker
also emits a tiny :data:`ACK` marker immediately before expanding each
chunk — the coordinator's cursor over these acks is what tells it,
after a crash, *which* chunk was being expanded (see below).

Flow control: outbound chunks are bounded (``CHUNK_DIGESTS`` /
``CHUNK_STATES`` entries) and at most ``WINDOW`` digest-only chunks are
in flight per worker — small enough to fit the pipe buffer while the
worker is busy — while a chunk carrying bootstrap pairs (larger, though
bounded now that pairs are packed bytes) is sent only to an idle
worker, whose blocking ``recv`` drains the pipe as the coordinator
writes.  Shipping is re-decided at send time (a respawn empties the
target's store), so a digest-only chunk sized to ``CHUNK_DIGESTS`` at
build time that turns stateful by send time is re-split there to keep
every message under the ``CHUNK_STATES`` bound.  Together these rule
out the send-while-both-full deadlock.

Fault tolerance
---------------

:class:`WorkerPool` assumes workers can die at any moment — OOM kills,
segfaults in native extensions, or the scheduled kills of a
:class:`~repro.engine.chaos.FaultPlan` — and recovers without
sacrificing the identical-graph guarantee:

* **detection** — a dead worker surfaces as ``EOFError``/``OSError`` on
  its pipe; workers that die without closing the pipe (SIGKILL can race
  the kernel's cleanup) are caught by a heartbeat: whenever no reply
  arrives for ``heartbeat_seconds``, every waited-on worker's process
  is liveness-checked;
* **retry** — the coordinator first drains whatever the dead worker
  shipped before dying (pipe data written pre-crash stays readable):
  completed reply batches are ingested normally, and the per-chunk
  :data:`ACK` markers advance a cursor identifying the chunk that was
  *being expanded* at death.  Only that chunk takes the blame (retry
  bump, split, quarantine) — with batched replies the first un-replied
  chunk may already have been expanded cleanly into a batch that never
  shipped, and blaming it would let a poison state that rides behind a
  batchmate push an innocent singleton into quarantine.  All in-flight
  chunks are re-dispatched with ``ship_all=True``: the dead worker may
  have inserted successor digests into the shared visited table and
  died before shipping their bytes, so the retry expander ships every
  successor unconditionally (the coordinator dedupes) rather than
  trusting the filter.  Re-expansion is idempotent: the view is
  deterministic and chunk results are keyed by absolute frontier
  position, so a retried chunk yields byte-identical rows no matter
  which worker runs it.  Each loss bumps the blamed chunk's retry
  count; past ``max_partition_retries`` the pool raises
  :class:`~repro.engine.errors.PartitionRetryExhausted`;
* **respawn** — a crashed worker slot is restarted (fresh fork, empty
  store — but the *shared* visited table survives, so the incarnation
  does not re-ship the world) up to ``max_worker_restarts`` times with
  exponential backoff; past that, its partitions are redistributed
  across the survivors;
* **quarantine** — a multi-state chunk that kills its worker is split
  into singletons to isolate the killer; a singleton that reaches
  ``max_state_retries`` losses is quarantined (skipped, recorded, and
  surfaced in the final report) rather than retried forever — or, with
  ``quarantine=False``, raises
  :class:`~repro.engine.errors.StateQuarantined`;
* **collapse** — when every worker is dead and respawns are exhausted,
  the pool degrades to in-process :class:`LocalExpander` drivers and
  finishes the run rather than raising.

The shared table is a *filter*, never the source of truth: any residual
case where a row references a digest whose packed bytes were lost with
a worker (or a torn table slot answered "present" falsely) is repaired
by the coordinator, which recomputes the successor from its parent
in-process — see ``ExplorationEngine._recover_packed``.

Quarantining is the one deliberate breach of the identical-graph
guarantee — a quarantined state keeps its node but loses its outgoing
edges — which is why quarantined states are always surfaced in the
engine's report, never silently dropped.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque
from typing import Callable, Hashable, Sequence

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

from ..obs.events import STATE_QUARANTINED, WORKER_LOST, WORKER_RESPAWNED
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from ..obs.spans import WorkerTelemetry, merge_worker_events, record_span
from .chaos import FaultPlan
from .codec import Codec
from .errors import EngineError, PartitionRetryExhausted, StateQuarantined
from .fingerprint import shard_of
from .visited import LocalVisitedFilter, SharedVisitedTable, shared_memory_available

#: Marker returned for a pruned state instead of its successor list.
PRUNED = "__pruned__"

#: Marker returned for a quarantined state (it repeatedly killed workers).
QUARANTINED = "__quarantined__"

#: Max entries per digest-only chunk (bounded pickle ≪ the pipe buffer).
CHUNK_DIGESTS = 512

#: Max entries per chunk carrying at least one bootstrap (digest, packed)
#: pair.  Packed states are a few hundred bytes, so this is far roomier
#: than when bootstrap pairs were unbounded object pickles.
CHUNK_STATES = 256

#: Digest-only chunks in flight per worker.
WINDOW = 2

#: Max queued chunks a worker folds into one batched reply.
BATCH_REPLIES = 8

#: Marker a worker sends just before expanding a chunk, so the
#: coordinator can attribute a crash to the chunk actually in progress
#: (batched replies make "first un-replied" the wrong guess).
ACK = "__ack__"


def fork_available() -> bool:
    """True when the platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _self_rss_kb() -> int:
    """This process's peak RSS in KiB (0 where unsupported)."""
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    return _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss


#: Cap (entries) on each worker's decoded-state caches.  Both the
#: digest->state dict and the view's transition memo are performance
#: caches only — dedup is digest-based upstream — so clearing them is
#: always safe; the cap keeps disk-backed runs that stream millions of
#: states through a worker from growing its RSS without bound.
WORKER_CACHE_LIMIT = 32_768


def _cap_worker_caches(store: dict, view, codec: Codec) -> None:
    """Clear a worker's decoded-state caches once they exceed the cap."""
    if len(store) > WORKER_CACHE_LIMIT:
        store.clear()
    trim = getattr(view, "trim_step_cache", None)
    if trim is not None:
        trim(WORKER_CACHE_LIMIT)
    codec.trim(WORKER_CACHE_LIMIT)


def _expand_entries(
    entries,
    store: dict,
    view,
    prune,
    codec: Codec,
    visited,
    ship_states: bool,
    ship_all: bool,
    task_ids: dict,
    action_ids: dict,
    new_actions: list,
):
    """Expand one chunk of frontier entries against the local store.

    Returns ``(results, novel, expand_seconds, fingerprint_seconds)``
    with ``results`` aligned to ``entries`` and ``novel`` holding
    ``(digest, packed)`` pairs for successors whose bytes the
    coordinator does not have yet (first insertion into ``visited``, or
    every successor when ``ship_all``).  Shared by the forked worker
    loop and the in-process fallback.
    """
    results = []
    novel = []
    expand_seconds = 0.0
    fingerprint_seconds = 0.0
    for entry in entries:
        if type(entry) is bytes:
            state = store[entry]
        else:
            digest, packed = entry
            state = store.get(digest)
            if state is None:
                state = codec.decode(packed)
                store[digest] = state
        if prune is not None and prune(state):
            results.append(PRUNED)
            continue
        before = time.perf_counter()
        successors = view.successors(state)
        after = time.perf_counter()
        expand_seconds += after - before
        row = []
        for task, action, post in successors:
            packed, digest = codec.encode_digest(post)
            if digest not in store:
                store[digest] = post
                if not ship_states:
                    # The shared table answers "has anyone produced this
                    # digest?"; only the first inserter ships the bytes.
                    # ship_all (crash retry) bypasses the filter but
                    # still records the insertion.
                    if visited is None:
                        novel.append((digest, packed))
                    else:
                        present = visited.test_and_set(digest)
                        if ship_all or not present:
                            novel.append((digest, packed))
            elif ship_all and not ship_states:
                novel.append((digest, packed))
            action_index = action_ids.get(action)
            if action_index is None:
                action_index = action_ids[action] = len(action_ids)
                new_actions.append(action)
            if ship_states:
                row.append((task_ids[task], action_index, digest, packed))
            else:
                row.append((task_ids[task], action_index, digest))
        fingerprint_seconds += time.perf_counter() - after
        results.append(row)
    return results, novel, expand_seconds, fingerprint_seconds


def _close_chunk_telemetry(
    tel, span, results, stored, expand_seconds, fingerprint_seconds
):
    """Close one chunk's ``partition`` span and record its counters.

    The span was opened before expansion (so its wall time covers the
    real work); here it gains ``expand``/``fingerprint`` child spans
    carrying the accumulated phase time, plus the worker-side
    ``explore.states`` counter (states stored in this worker's shard —
    the one number the coordinator cannot attribute itself; expanded
    and transition counts are already published per worker from the
    reply).  Shared by forked workers and the in-process fallback.
    """
    transitions = sum(len(row) for row in results if row != PRUNED)
    if expand_seconds:
        tel.record_span("expand", expand_seconds, parent=span)
    if fingerprint_seconds:
        tel.record_span("fingerprint", fingerprint_seconds, parent=span)
    tel.end_span(span, transitions=transitions, stored=stored)
    tel.inc("explore.states", stored)


def _worker_main(
    conn,
    view,
    prune,
    digest_size: int,
    ship_states: bool,
    visited,
    poison: frozenset = frozenset(),
    telemetry: bool = False,
) -> None:
    """Worker loop: expand chunk batches until the ``None`` sentinel (or EOF).

    ``visited`` is the pool's shared table (``None`` when shared memory
    was unavailable, in which case every locally-novel successor ships).

    ``poison`` is the fault-injection digest set of
    :class:`~repro.engine.chaos.FaultPlan`: asked to expand a poisoned
    state, the worker hard-exits before expanding — the deterministic
    stand-in for "this state segfaults whoever touches it".

    With ``telemetry`` on (the parent's tracer is enabled), the worker
    buffers spans/counters into a :class:`~repro.obs.spans.WorkerTelemetry`
    flushed with every payload — each batch is self-contained, so a crash
    loses at most the in-flight chunks' telemetry, never a half-open span.
    """
    store: dict = {}
    codec = Codec(digest_size)
    task_ids = {task: index for index, task in enumerate(view.tasks)}
    action_ids: dict = {}
    send_seconds = 0.0
    hits_flushed = misses_flushed = 0
    drain = getattr(view, "drain_stats", None)
    tel = WorkerTelemetry(f"w{os.getpid()}") if telemetry else None
    closing = False
    while not closing:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message is None:
            break
        messages = [message]
        # Batch: fold already-queued chunks into one reply, amortizing
        # the reply pickle and the coordinator wakeup across them.
        while len(messages) < BATCH_REPLIES:
            try:
                if not conn.poll():
                    break
                queued = conn.recv()
            except (EOFError, OSError):
                return
            if queued is None:
                closing = True
                break
            messages.append(queued)
        payloads = []
        _cap_worker_caches(store, view, codec)
        for entries, ship_all in messages:
            # The ack marks this chunk as the one being expanded: if the
            # process dies before the batched reply ships, coordinator
            # blame lands here rather than on an innocent batchmate.
            # Sent before the poison check so a poisoned chunk takes its
            # own blame.
            try:
                conn.send(ACK)
            except (BrokenPipeError, OSError):
                return
            if poison:
                for entry in entries:
                    digest = entry if type(entry) is bytes else entry[0]
                    if digest in poison:
                        os._exit(137)
            new_actions: list = []
            stored_before = len(store)
            chunk_span = (
                tel.start_span("partition", states=len(entries))
                if tel is not None
                else None
            )
            results, novel, expand_seconds, fingerprint_seconds = _expand_entries(
                entries,
                store,
                view,
                prune,
                codec,
                visited,
                ship_states,
                ship_all,
                task_ids,
                action_ids,
                new_actions,
            )
            orbit_hits = pruned_tasks = 0
            if drain is not None:
                orbit_hits, pruned_tasks = drain()
            if tel is not None:
                _close_chunk_telemetry(
                    tel,
                    chunk_span,
                    results,
                    len(store) - stored_before,
                    expand_seconds,
                    fingerprint_seconds,
                )
            payloads.append(
                (
                    results,
                    novel,
                    new_actions,
                    # send_seconds is the cost of shipping the *previous*
                    # batch, reported one beat late (and dropped for the
                    # last one); the codec counters are per-payload deltas.
                    (
                        expand_seconds,
                        fingerprint_seconds,
                        send_seconds,
                        orbit_hits,
                        pruned_tasks,
                        _self_rss_kb(),
                        codec.hits - hits_flushed,
                        codec.misses - misses_flushed,
                    ),
                    None if tel is None else tel.flush(),
                )
            )
            send_seconds = 0.0
            hits_flushed, misses_flushed = codec.hits, codec.misses
        before = time.perf_counter()
        try:
            conn.send(payloads)
        except BrokenPipeError:
            return
        send_seconds = time.perf_counter() - before
    conn.close()


class _WorkerHandle:
    """One forked worker: its pipe endpoint and process object."""

    __slots__ = ("conn", "process")

    def __init__(self, conn, process) -> None:
        self.conn = conn
        self.process = process

    def send(self, chunk) -> None:
        self.conn.send(chunk)

    def recv(self):
        return self.conn.recv()


class LocalExpander:
    """In-process stand-in for one worker (the no-fork fallback).

    Speaks the exact message/batch protocol of :func:`_worker_main` —
    ``send`` expands immediately and queues a batch-of-one reply for
    ``recv`` — so the driver runs one code path regardless of platform.
    Local expanders cannot crash, so fault plans do not apply to them;
    their peak RSS is the coordinator's own, so they report 0 to keep
    the per-child accounting honest.
    """

    _incarnations = 0

    def __init__(
        self,
        view,
        prune,
        digest_size: int,
        ship_states: bool,
        visited=None,
        telemetry: bool = False,
    ) -> None:
        self._view = view
        self._prune = prune
        self._codec = Codec(digest_size)
        self._ship_states = ship_states
        self._visited = visited
        self._store: dict = {}
        self._task_ids = {task: index for index, task in enumerate(view.tasks)}
        self._action_ids: dict = {}
        self._replies: deque = deque()
        self._drain = getattr(view, "drain_stats", None)
        self._hits_flushed = 0
        self._misses_flushed = 0
        self._telemetry = None
        if telemetry:
            # In-process expanders share the coordinator's pid, so the
            # label carries an incarnation counter to keep span ids unique.
            LocalExpander._incarnations += 1
            self._telemetry = WorkerTelemetry(
                f"local{LocalExpander._incarnations}"
            )

    def send(self, message) -> None:
        if message is None:
            return
        entries, ship_all = message
        new_actions: list = []
        # Cap the decoded-state dict only: the view is the coordinator's
        # own (shared object), and the engine already trims its memo
        # when a store backend makes unbounded growth a problem.
        if len(self._store) > WORKER_CACHE_LIMIT:
            self._store.clear()
        stored_before = len(self._store)
        tel = self._telemetry
        chunk_span = (
            tel.start_span("partition", states=len(entries))
            if tel is not None
            else None
        )
        results, novel, expand_seconds, fingerprint_seconds = _expand_entries(
            entries,
            self._store,
            self._view,
            self._prune,
            self._codec,
            self._visited,
            self._ship_states,
            ship_all,
            self._task_ids,
            self._action_ids,
            new_actions,
        )
        orbit_hits = pruned_tasks = 0
        if self._drain is not None:
            orbit_hits, pruned_tasks = self._drain()
        if tel is not None:
            _close_chunk_telemetry(
                tel,
                chunk_span,
                results,
                len(self._store) - stored_before,
                expand_seconds,
                fingerprint_seconds,
            )
        codec = self._codec
        self._replies.append(
            [
                (
                    results,
                    novel,
                    new_actions,
                    (
                        expand_seconds,
                        fingerprint_seconds,
                        0.0,
                        orbit_hits,
                        pruned_tasks,
                        0,
                        codec.hits - self._hits_flushed,
                        codec.misses - self._misses_flushed,
                    ),
                    None if tel is None else tel.flush(),
                )
            ]
        )
        self._hits_flushed, self._misses_flushed = codec.hits, codec.misses

    def recv(self):
        return self._replies.popleft()


class _Chunk:
    """One dispatchable slice of the round's frontier.

    ``positions`` are absolute indices into the round's item list (the
    coordinator's results array is keyed by them, which is what makes
    re-dispatching to *any* worker sound); ``items`` are the matching
    ``(state, digest)`` pairs; ``retries`` counts how many worker
    losses this chunk has survived; ``ship_all`` marks a chunk requeued
    after a loss — its expander must ship every successor's bytes, since
    the dead worker may have claimed table slots and taken the bytes
    with it.
    """

    __slots__ = ("positions", "items", "retries", "ship_all")

    def __init__(
        self,
        positions: list,
        items: list,
        retries: int = 0,
        ship_all: bool = False,
    ) -> None:
        self.positions = positions
        self.items = items
        self.retries = retries
        self.ship_all = ship_all


class WorkerPool:
    """A crash-tolerant pool of expansion workers.

    Owns the full worker lifecycle — forking, the shared visited table,
    chunking and dispatch, reply ingestion, crash detection,
    retry/respawn/quarantine, and the in-process collapse fallback (see
    the module docstring for the recovery model).  One pool serves one
    exploration run.

    :meth:`run_round` is the only work entry point: it ships one
    round's frontier and returns a results list aligned to it, where
    each slot is a successor row list, :data:`PRUNED`, or
    :data:`QUARANTINED`.  Rows carry *decoded* actions (the per-worker
    action-index indirection is resolved at ingest), so results are
    independent of which worker produced them.
    """

    def __init__(
        self,
        workers: int,
        view,
        prune: Callable[[Hashable], bool] | None,
        digest_size: int,
        ship_states: bool,
        *,
        expected_states: int | None = None,
        max_worker_restarts: int = 3,
        restart_backoff_seconds: float = 0.05,
        max_partition_retries: int = 5,
        max_state_retries: int = 2,
        quarantine: bool = True,
        fault_plan: FaultPlan | None = None,
        heartbeat_seconds: float = 5.0,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        self.workers = max(1, workers)
        self._view = view
        self._prune = prune
        self._digest_size = digest_size
        self._ship_states = ship_states
        self._expected_states = expected_states
        self._codec = Codec(digest_size)  # encode fallback for dispatch
        self.max_worker_restarts = max_worker_restarts
        self.restart_backoff_seconds = restart_backoff_seconds
        self.max_partition_retries = max_partition_retries
        self.max_state_retries = max_state_retries
        self.quarantine = quarantine
        self.fault_plan = fault_plan
        self.heartbeat_seconds = heartbeat_seconds
        self.tracer = tracer
        self.metrics = metrics
        # Recovery bookkeeping, read by the engine's final report.
        self.local = False
        self.collapsed = False
        self.worker_failures = 0
        self.worker_respawns = 0
        self.partitions_reassigned = 0
        self.quarantined: list = []  # (state, digest) in quarantine order
        self.orbit_hits = 0
        self.pruned_tasks = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.last_round_producers = 0
        self.visited = None
        self.visited_overflows = 0
        self.worker_rss_kb: dict[int, int] = {}  # slot -> peak RSS (KiB)
        self._handles: list = []
        self._alive: list[bool] = []
        self._restarts: list[int] = []
        # Per worker: chunks acked as started but not yet replied — the
        # crash-blame cursor (see _worker_lost).
        self._started: list[int] = []
        self.seen: list[set] = []
        self.actions: list[list] = []
        self._context = None
        self._round = 0
        self._round_span: str | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Fork the workers (or fall back to in-process expanders)."""
        self.local = self.workers <= 1 or not fork_available()
        if not self._ship_states:
            self.visited = self._make_visited()
        if self.local:
            self._handles = [
                LocalExpander(
                    self._view,
                    self._prune,
                    self._digest_size,
                    self._ship_states,
                    visited=self.visited,
                    telemetry=self.tracer.enabled or self.metrics.enabled,
                )
                for _ in range(self.workers)
            ]
            if self.workers > 1 and self.metrics.enabled:
                self.metrics.counter("engine.inprocess_fallbacks").inc()
        else:
            self._context = multiprocessing.get_context("fork")
            self._handles = [self._spawn() for _ in range(self.workers)]
        self._alive = [True] * self.workers
        self._restarts = [0] * self.workers
        self._started = [0] * self.workers
        self.seen = [set() for _ in range(self.workers)]
        self.actions = [[] for _ in range(self.workers)]
        return self

    def _make_visited(self):
        if self.local or self.workers <= 1 or not fork_available():
            # One address space: a plain shared set is exact and free.
            return LocalVisitedFilter()
        if not shared_memory_available():  # pragma: no cover - exotic builds
            return None
        try:
            return SharedVisitedTable(self._digest_size, self._expected_states)
        except OSError:  # pragma: no cover - /dev/shm unavailable or full
            return None

    def stop(self) -> None:
        """Shut the pool down and release the shared visited table."""
        if not self.local:
            stop_workers(
                [self._handles[w] for w in range(self.workers) if self._alive[w]]
            )
        if self.visited is not None:
            self.visited_overflows = self.visited.overflows
            self.visited.close(unlink=True)
            self.visited = None

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        poison = self.fault_plan.poison if self.fault_plan is not None else frozenset()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._view,
                self._prune,
                self._digest_size,
                self._ship_states,
                self.visited,
                poison,
                self.tracer.enabled or self.metrics.enabled,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(parent_conn, process)

    # -- one exchange round -------------------------------------------------

    def run_round(
        self,
        round_index: int,
        items,
        packed_of: dict,
        phase: dict,
        round_span_id: str | None = None,
    ) -> list:
        """Expand one round's frontier; returns results by item position.

        ``items`` is the round's ``(state, digest)`` list in frontier
        order; ``packed_of`` is the coordinator's digest-to-packed-bytes
        table (novel successors are folded into it; bootstrap pairs are
        drawn from it); ``phase`` accumulates per-phase timings.  Each
        result slot is a row list of ``(task_index, action, digest[,
        packed])`` tuples (actions decoded, packed bytes present in
        audit mode), :data:`PRUNED`, or :data:`QUARANTINED`.

        ``round_span_id`` is the coordinator's open ``round`` span:
        merged worker spans (and the synthesized ``lost`` partition of a
        dead worker) are re-parented under it.
        """
        self._round = round_index
        self._round_span = round_span_id
        self._packed_of = packed_of
        self._phase = phase
        self._results: list = [None] * len(items)
        self._pending: list[deque] = [deque() for _ in range(self.workers)]
        self._inflight: list[deque] = [deque() for _ in range(self.workers)]
        self._outstanding = [0] * self.workers
        self._producers: set[int] = set()
        self._build_chunks(items)
        self._pump_all()
        self._apply_scheduled_faults(round_index)
        while True:
            self._pump_all()
            if not any(self._outstanding):
                break
            for worker in self._collect_ready():
                try:
                    message = self._handles[worker].recv()
                except (EOFError, OSError):
                    self._worker_lost(worker)
                    continue
                self._receive(worker, message)
        self.last_round_producers = len(self._producers)
        return self._results

    def _receive(self, worker: int, message) -> None:
        """Process one worker message: an ack or a batched reply.

        Acks advance the started-chunk cursor; each payload of a reply
        batch retires the oldest in-flight chunk (the worker expands and
        replies strictly FIFO) and its ack.
        """
        if message == ACK:
            self._started[worker] += 1
            return
        for payload in message:
            self._outstanding[worker] -= 1
            if self._started[worker]:  # local expanders do not ack
                self._started[worker] -= 1
            self._ingest(worker, self._inflight[worker].popleft(), payload)

    def _build_chunks(self, items) -> None:
        # Shard by digest as always; a dead shard's bucket is routed to a
        # survivor up front (states re-ship via the encode-at-send path).
        workers = self.workers
        buckets: list[list] = [[] for _ in range(workers)]
        for position, (state, digest) in enumerate(items):
            buckets[shard_of(digest, workers)].append((position, state, digest))
        survivors = [w for w in range(workers) if self._alive[w]]
        for shard, bucket in enumerate(buckets):
            if not bucket:
                continue
            worker = shard if self._alive[shard] else survivors[shard % len(survivors)]
            seen = self.seen[worker]
            positions: list = []
            chunk_items: list = []
            stateful = False
            for position, state, digest in bucket:
                entry_stateful = digest not in seen
                cap = CHUNK_STATES if (stateful or entry_stateful) else CHUNK_DIGESTS
                if chunk_items and len(chunk_items) >= cap:
                    self._pending[worker].append(_Chunk(positions, chunk_items))
                    positions, chunk_items, stateful = [], [], False
                positions.append(position)
                chunk_items.append((state, digest))
                stateful = stateful or entry_stateful
            if chunk_items:
                self._pending[worker].append(_Chunk(positions, chunk_items))

    def _apply_scheduled_faults(self, round_index: int) -> None:
        if self.local or self.fault_plan is None:
            return
        for worker in self.fault_plan.victims_at(round_index):
            if worker < self.workers and self._alive[worker]:
                # SIGKILL after the first pump, so the loss is in-flight:
                # detection, retry, and respawn all run for real.
                self._handles[worker].process.kill()

    # -- dispatch -----------------------------------------------------------

    def _pump_all(self) -> None:
        # A lost worker mid-pump moves chunks onto queues already visited
        # this pass, so pump to fixpoint.  Terminates: every pass either
        # sends a chunk (finite pending) or buries a worker (finite pool).
        progressed = True
        while progressed:
            progressed = False
            for worker in range(self.workers):
                progressed |= self._pump(worker)

    def _pump(self, worker: int) -> bool:
        queue = self._pending[worker]
        if not queue:
            return False
        if not self._alive[worker]:
            chunks = list(queue)
            queue.clear()
            self._reassign(worker, chunks)
            return True
        progressed = False
        while queue:
            chunk = queue[0]
            entries, stateful, fresh = self._encode(worker, chunk)
            if stateful and len(chunk.items) > CHUNK_STATES:
                # Build-time sizing assumed the target still held these
                # digests (cap CHUNK_DIGESTS); a respawn or reassignment
                # since then turns every entry into a bootstrap pair, so
                # re-split at send time to keep each message under the
                # CHUNK_STATES bound the pipe-sizing argument relies on.
                # A transport split, not a blame split: retries carry over.
                queue.popleft()
                for start in reversed(range(0, len(chunk.items), CHUNK_STATES)):
                    queue.appendleft(
                        _Chunk(
                            chunk.positions[start : start + CHUNK_STATES],
                            chunk.items[start : start + CHUNK_STATES],
                            retries=chunk.retries,
                            ship_all=chunk.ship_all,
                        )
                    )
                continue
            # Digest-only chunks ride the pipe buffer (WINDOW in flight);
            # a bootstrap-carrying chunk (the large kind) goes only to an
            # idle worker whose blocking recv drains the pipe.
            if stateful:
                if self._outstanding[worker] > 0:
                    break
            elif self._outstanding[worker] >= WINDOW:
                break
            queue.popleft()
            before = time.perf_counter()
            try:
                self._handles[worker].send((entries, chunk.ship_all))
            except (BrokenPipeError, OSError):
                queue.appendleft(chunk)
                self._worker_lost(worker)
                return True
            self._phase["serialize_seconds"] = self._phase.get(
                "serialize_seconds", 0.0
            ) + (time.perf_counter() - before)
            self.seen[worker].update(fresh)
            self._inflight[worker].append(chunk)
            self._outstanding[worker] += 1
            progressed = True
        return progressed

    def _encode(self, worker: int, chunk: _Chunk):
        # Encoded at send time, against the *current* target's store:
        # after a reassignment or respawn the same chunk may need its
        # states re-shipped, which deciding at build time would miss.
        # Bootstrap pairs carry packed bytes, pulled from the
        # coordinator's table (encoding only as a fallback — every
        # discovered digest normally has its bytes already).
        seen = self.seen[worker]
        packed_of = self._packed_of
        entries: list = []
        fresh: list = []
        for state, digest in chunk.items:
            if digest in seen:
                entries.append(digest)
            else:
                packed = packed_of.get(digest)
                if packed is None:
                    if state is None:
                        # Digest-only items (store-backed rounds) have no
                        # state to fall back on: the store is the source
                        # of truth and it must hold every frontier digest.
                        raise EngineError(
                            f"frontier digest {digest.hex()} has no packed "
                            "bytes in the state store"
                        )
                    packed = packed_of[digest] = self._codec.encode(state)
                entries.append((digest, packed))
                fresh.append(digest)
        return entries, bool(fresh), fresh

    def _collect_ready(self) -> list[int]:
        if self.local:
            return [w for w, count in enumerate(self._outstanding) if count]
        waitable = {
            self._handles[w].conn: w
            for w in range(self.workers)
            if self._alive[w] and self._outstanding[w]
        }
        ready = multiprocessing.connection.wait(
            list(waitable), timeout=self.heartbeat_seconds
        )
        if not ready:
            # Heartbeat expired with no replies: a worker may have died
            # without the pipe reporting EOF yet.  Liveness-check them.
            for worker in list(waitable.values()):
                if not self._handles[worker].process.is_alive():
                    self._worker_lost(worker)
            return []
        return [waitable[conn] for conn in ready]

    # -- ingestion ----------------------------------------------------------

    def _ingest(self, worker: int, chunk: _Chunk, payload) -> None:
        results, novel, new_actions, stats, batch = payload
        (
            expand_seconds,
            fingerprint_seconds,
            send_seconds,
            orbit_hits,
            pruned,
            rss_kb,
            cache_hits,
            cache_misses,
        ) = stats
        if batch is not None:
            self._merge_telemetry(worker, batch)
        packed_of = self._packed_of
        for digest, packed in novel:
            packed_of.setdefault(digest, packed)
        table = self.actions[worker]
        table.extend(new_actions)
        seen = self.seen[worker]
        transitions = 0
        decoded: list = []
        # Decode action indices against the producing worker's table now,
        # so result rows are self-contained (a retried chunk may be
        # expanded by a different worker than the merge loop expects).
        if self._ship_states:
            for row in results:
                if row == PRUNED:
                    decoded.append(PRUNED)
                    continue
                out = []
                for task_index, action_index, digest, packed in row:
                    seen.add(digest)
                    packed_of.setdefault(digest, packed)
                    out.append((task_index, table[action_index], digest, packed))
                transitions += len(out)
                decoded.append(out)
        else:
            for row in results:
                if row == PRUNED:
                    decoded.append(PRUNED)
                    continue
                out = []
                for task_index, action_index, digest in row:
                    seen.add(digest)
                    out.append((task_index, table[action_index], digest))
                transitions += len(out)
                decoded.append(out)
        if rss_kb and rss_kb > self.worker_rss_kb.get(worker, 0):
            self.worker_rss_kb[worker] = rss_kb
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses
        if self.metrics.enabled:
            self.metrics.counter(f"engine.worker{worker}.expanded").inc(len(results))
            self.metrics.counter(f"engine.worker{worker}.transitions").inc(transitions)
            self.metrics.histogram(f"engine.worker{worker}.phase.expand_seconds").observe(
                expand_seconds
            )
            self.metrics.histogram(
                f"engine.worker{worker}.phase.fingerprint_seconds"
            ).observe(fingerprint_seconds)
        phase = self._phase
        phase["expand_seconds"] = phase.get("expand_seconds", 0.0) + expand_seconds
        phase["fingerprint_seconds"] = (
            phase.get("fingerprint_seconds", 0.0) + fingerprint_seconds
        )
        phase["serialize_seconds"] = phase.get("serialize_seconds", 0.0) + send_seconds
        self.orbit_hits += orbit_hits
        self.pruned_tasks += pruned
        if results:
            self._producers.add(worker)
        for offset, position in enumerate(chunk.positions):
            self._results[position] = decoded[offset]

    def _merge_telemetry(self, worker: int, batch) -> None:
        """Fold one worker batch into the coordinator's tracer/metrics.

        Events are re-emitted through the parent tracer in buffer order
        (re-stamping ``seq``/``lamport``), with the worker's top-level
        spans re-parented under the current round span and tagged with
        the worker slot.  Worker counters merge *namespaced*
        (``engine.worker<w>.<name>``) — never into the coordinator's own
        ``explore.*`` counters, which already count the same work once.
        """
        events, counters = batch
        if events and self.tracer.enabled:
            attach = {"worker": worker, "round": self._round}
            if self.tracer.run_id is not None:
                # Event-level run stamping happens in Tracer.emit; the
                # span *attribute* makes worker spans greppable by run
                # in assembled/chrome-trace form too.
                attach["run"] = self.tracer.run_id
            merge_worker_events(
                self.tracer,
                events,
                parent_id=self._round_span,
                attach=attach,
            )
        if counters and self.metrics.enabled:
            for name, value in counters.items():
                self.metrics.counter(f"engine.worker{worker}.{name}").inc(value)

    # -- recovery -----------------------------------------------------------

    def _worker_lost(self, worker: int) -> None:
        if self.local or not self._alive[worker]:
            return
        handle = self._handles[worker]
        # Salvage what the dead worker shipped before dying (pipe data
        # written pre-crash stays readable): completed reply batches are
        # ingested normally — their chunks need no retry — and acks
        # advance the started-chunk cursor that decides blame below.
        try:
            while handle.conn.poll():
                self._receive(worker, handle.conn.recv())
        except (EOFError, OSError):
            pass
        self._alive[worker] = False
        self.worker_failures += 1
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(timeout=0.2)
        inflight = list(self._inflight[worker])
        pending = list(self._pending[worker])
        started = self._started[worker]
        self._inflight[worker].clear()
        self._pending[worker].clear()
        self._outstanding[worker] = 0
        self._started[worker] = 0
        # Workers expand chunks strictly FIFO but reply in batches, so
        # the chunk being expanded at death is the *last acked*
        # un-replied one — in-flight chunks before it were already
        # expanded into a batch that never shipped, those after it sat
        # unread in the pipe.  Only that chunk takes the blame (retry
        # bump, split, quarantine); the rest re-dispatch unbumped so a
        # poison state riding behind a batchmate cannot push innocent
        # states into quarantine.  With no ack at all the worker died
        # before expanding anything, and nothing is blamed.
        blamed = started - 1 if 0 < started <= len(inflight) else None
        if self.metrics.enabled:
            self.metrics.counter("engine.worker_failures").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                WORKER_LOST,
                worker=worker,
                round=self._round,
                inflight=len(inflight),
                pending=len(pending),
                restarts=self._restarts[worker],
            )
            if blamed is not None:
                # The blamed chunk died with the worker; its telemetry is
                # gone, so the coordinator synthesizes the closed span the
                # worker never got to flush.
                record_span(
                    self.tracer,
                    "partition",
                    0.0,
                    parent_id=self._round_span,
                    status="lost",
                    worker=worker,
                    round=self._round,
                    states=len(inflight[blamed].items),
                )
        requeue: list = []
        # Every requeued in-flight chunk is marked ship_all — the dead
        # worker may have claimed visited-table slots for their
        # successors without the bytes ever reaching the coordinator.
        for index, chunk in enumerate(inflight):
            chunk.ship_all = True
            if index != blamed:
                requeue.append(chunk)
                continue
            chunk.retries += 1
            if chunk.retries > self.max_partition_retries:
                raise PartitionRetryExhausted(
                    len(chunk.items), chunk.retries, self.max_partition_retries
                )
            if len(chunk.items) > 1:
                # Split to isolate a potential killer state; each
                # singleton restarts its own retry count.
                for offset, item in enumerate(chunk.items):
                    requeue.append(
                        _Chunk([chunk.positions[offset]], [item], ship_all=True)
                    )
            elif chunk.retries >= self.max_state_retries:
                self._quarantine(chunk)
            else:
                requeue.append(chunk)
        requeue.extend(pending)
        self._revive_or_reassign(worker, requeue)

    def _quarantine(self, chunk: _Chunk) -> None:
        state, digest = chunk.items[0]
        if not self.quarantine:
            raise StateQuarantined(state, digest, chunk.retries)
        self.quarantined.append((state, digest))
        self._results[chunk.positions[0]] = QUARANTINED
        if self.metrics.enabled:
            self.metrics.counter("engine.quarantined_states").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                STATE_QUARANTINED,
                digest=digest.hex(),
                retries=chunk.retries,
                round=self._round,
            )

    def _revive_or_reassign(self, worker: int, chunks: list) -> None:
        if self._restarts[worker] < self.max_worker_restarts:
            delay = self.restart_backoff_seconds * (2 ** self._restarts[worker])
            if delay > 0:
                time.sleep(min(delay, 2.0))
            self._restarts[worker] += 1
            self.worker_respawns += 1
            self._handles[worker] = self._spawn()
            self._alive[worker] = True
            # The new incarnation starts with an empty store; resetting
            # the coordinator's view of it makes encode re-ship states.
            # (The shared visited table is inherited as-is — membership
            # is global state, not worker state.)
            self.seen[worker] = set()
            self.actions[worker] = []
            if self.metrics.enabled:
                self.metrics.counter("engine.worker_respawns").inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    WORKER_RESPAWNED,
                    worker=worker,
                    round=self._round,
                    restarts=self._restarts[worker],
                )
            self._requeue(chunks, [worker])
        else:
            survivors = [w for w in range(self.workers) if self._alive[w]]
            if not survivors:
                self._collapse(chunks)
            else:
                self._requeue(chunks, survivors)

    def _reassign(self, worker: int, chunks: list) -> None:
        # Chunks found queued on an already-dead worker (a send raced the
        # death): move them to survivors without touching retry counts.
        survivors = [w for w in range(self.workers) if self._alive[w]]
        if not survivors:
            self._collapse(chunks)
        else:
            self._requeue(chunks, survivors)

    def _requeue(self, chunks: list, targets: list[int]) -> None:
        if not chunks:
            return
        self.partitions_reassigned += len(chunks)
        if self.metrics.enabled:
            self.metrics.counter("engine.partitions_reassigned").inc(len(chunks))
        for index, chunk in enumerate(chunks):
            self._pending[targets[index % len(targets)]].append(chunk)

    def _collapse(self, chunks: list) -> None:
        """Degrade to in-process expansion: the pool is gone, the run is not."""
        self.collapsed = True
        self.local = True
        # The shared table (if any) keeps serving the in-process
        # expanders; digests claimed by dead workers stay "present",
        # which is safe — ship_all requeues and the coordinator's
        # recovery path cover the missing bytes.
        if self.visited is None and not self._ship_states:
            self.visited = LocalVisitedFilter()
        self._handles = [
            LocalExpander(
                self._view,
                self._prune,
                self._digest_size,
                self._ship_states,
                visited=self.visited,
                telemetry=self.tracer.enabled or self.metrics.enabled,
            )
            for _ in range(self.workers)
        ]
        self._alive = [True] * self.workers
        self.seen = [set() for _ in range(self.workers)]
        self.actions = [[] for _ in range(self.workers)]
        self._inflight = [deque() for _ in range(self.workers)]
        self._outstanding = [0] * self.workers
        self._started = [0] * self.workers
        if self.metrics.enabled:
            self.metrics.counter("engine.pool_collapses").inc()
        for index, chunk in enumerate(chunks):
            self._pending[index % self.workers].append(chunk)


def stop_workers(handles: Sequence[_WorkerHandle]) -> None:
    """Shut the pool down, draining stuck replies so workers can exit.

    A worker interrupted mid-round may be blocked in ``send`` on a reply
    larger than the pipe buffer; receiving (and discarding) pending
    replies unblocks it so it can see the sentinel.  Stragglers are
    terminated.
    """
    for handle in handles:
        try:
            handle.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    deadline = time.monotonic() + 5.0
    for handle in handles:
        while handle.process.is_alive() and time.monotonic() < deadline:
            try:
                while handle.conn.poll(0.05):
                    handle.conn.recv()
            except (EOFError, OSError):
                break
            handle.process.join(timeout=0.05)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
