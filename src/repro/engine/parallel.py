"""The multiprocessing substrate of the parallel engine.

The engine parallelizes the *expensive* half of breadth-first search —
computing ``view.successors(state)`` and the successor digests — while
the coordinator keeps the cheap half (digest-set membership, graph
assembly) single-threaded, which is what makes the result provably
identical to the sequential graph (see :mod:`repro.engine.api`).

Workers are long-lived ``multiprocessing`` processes created with the
**fork** start method, each attached to the coordinator by a duplex
pipe.  Fork is a requirement, not a preference: systems under analysis
close over local functions (service ``delta`` closures) and are not
picklable, so the only way a worker can hold the
:class:`~repro.analysis.view.DeterministicSystemView` is by inheriting
the parent's memory image.  When the platform cannot fork (or one
worker was requested), :class:`WorkerPool` runs on
:class:`LocalExpander` stand-ins — same protocol, same graph, no
processes.

Wire protocol
-------------

Composite states are deep tuples whose pickles dwarf the real work, so
**full states almost never cross the pipe**.  Each worker keeps a
``digest -> state`` store of every state it has ever expanded or
produced; the coordinator tracks which digests each worker holds and
ships an outbound frontier entry as either

* a bare 16-byte digest — the worker re-resolves the state locally; or
* a ``(digest, state)`` bootstrap pair, exactly once per (worker,
  state), when the digest's owner never had the state (the root, a
  resumed frontier, or a successor first produced by another worker).

Replies carry ``(task_index, action_index, successor_digest)`` triples
— indices into the shared ``view.tasks`` tuple and a per-worker action
table — plus a ``novel`` list of ``(digest, state)`` pairs for states
the worker stored for the first time (so the coordinator can build the
graph), the newly-tabled actions, per-phase timings, and — when the
coordinator's tracer or metrics registry is enabled — a self-contained
telemetry batch of span events and counters (see
:mod:`repro.obs.spans`), ``None`` otherwise.  In the
engine's collision-audit mode every reply triple carries the successor
state as a fourth field so the coordinator's audited index can compare
values, trading the wire savings for the checked guarantee.

Flow control: outbound chunks are bounded (``CHUNK_DIGESTS`` /
``CHUNK_STATES`` entries) and at most ``WINDOW`` digest-only chunks are
in flight per worker — small enough to fit the pipe buffer while the
worker is busy — while a state-carrying chunk (unbounded pickle size)
is sent only to an idle worker, whose blocking ``recv`` drains the pipe
as the coordinator writes.  Together these rule out the
send-while-both-full deadlock.

Fault tolerance
---------------

:class:`WorkerPool` assumes workers can die at any moment — OOM kills,
segfaults in native extensions, or the scheduled kills of a
:class:`~repro.engine.chaos.FaultPlan` — and recovers without
sacrificing the identical-graph guarantee:

* **detection** — a dead worker surfaces as ``EOFError``/``OSError`` on
  its pipe; workers that die without closing the pipe (SIGKILL can race
  the kernel's cleanup) are caught by a heartbeat: whenever no reply
  arrives for ``heartbeat_seconds``, every waited-on worker's process
  is liveness-checked;
* **retry** — the chunks in flight on a lost worker are re-dispatched.
  Re-expansion is idempotent: the view is deterministic and chunk
  results are keyed by absolute frontier position, so a retried chunk
  yields byte-identical rows no matter which worker runs it.  Each loss
  bumps the chunk's retry count; past ``max_partition_retries`` the
  pool raises :class:`~repro.engine.errors.PartitionRetryExhausted`;
* **respawn** — a crashed worker slot is restarted (fresh fork, empty
  store) up to ``max_worker_restarts`` times with exponential backoff;
  past that, its partitions are redistributed across the survivors;
* **quarantine** — a multi-state chunk that kills its worker is split
  into singletons to isolate the killer; a singleton that reaches
  ``max_state_retries`` losses is quarantined (skipped, recorded, and
  surfaced in the final report) rather than retried forever — or, with
  ``quarantine=False``, raises
  :class:`~repro.engine.errors.StateQuarantined`;
* **collapse** — when every worker is dead and respawns are exhausted,
  the pool degrades to in-process :class:`LocalExpander` drivers and
  finishes the run rather than raising.

Quarantining is the one deliberate breach of the identical-graph
guarantee — a quarantined state keeps its node but loses its outgoing
edges — which is why quarantined states are always surfaced in the
engine's report, never silently dropped.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque
from typing import Callable, Hashable, Sequence

from ..obs.events import STATE_QUARANTINED, WORKER_LOST, WORKER_RESPAWNED
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from ..obs.spans import WorkerTelemetry, merge_worker_events, record_span
from .chaos import FaultPlan
from .errors import PartitionRetryExhausted, StateQuarantined
from .fingerprint import fingerprint_components, shard_of

#: Marker returned for a pruned state instead of its successor list.
PRUNED = "__pruned__"

#: Marker returned for a quarantined state (it repeatedly killed workers).
QUARANTINED = "__quarantined__"

#: Max entries per digest-only chunk (bounded pickle ≪ the pipe buffer).
CHUNK_DIGESTS = 512

#: Max entries per chunk carrying at least one full state.
CHUNK_STATES = 64

#: Digest-only chunks in flight per worker.
WINDOW = 2


def fork_available() -> bool:
    """True when the platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _expand_entries(
    entries,
    store: dict,
    view,
    prune,
    digest_size: int,
    ship_states: bool,
    task_ids: dict,
    action_ids: dict,
    new_actions: list,
):
    """Expand one chunk of frontier entries against the local store.

    Returns ``(results, novel, expand_seconds, fingerprint_seconds)``
    with ``results`` aligned to ``entries``.  Shared by the forked
    worker loop and the in-process fallback.
    """
    results = []
    novel = []
    expand_seconds = 0.0
    fingerprint_seconds = 0.0
    encodings = store.setdefault("__encodings__", {})
    for entry in entries:
        if type(entry) is bytes:
            state = store[entry]
        else:
            digest, state = entry
            store[digest] = state
        if prune is not None and prune(state):
            results.append(PRUNED)
            continue
        before = time.perf_counter()
        successors = view.successors(state)
        after = time.perf_counter()
        expand_seconds += after - before
        row = []
        for task, action, post in successors:
            digest = fingerprint_components(post, encodings, digest_size)
            if digest not in store:
                store[digest] = post
                if not ship_states:
                    novel.append((digest, post))
            action_index = action_ids.get(action)
            if action_index is None:
                action_index = action_ids[action] = len(action_ids)
                new_actions.append(action)
            if ship_states:
                row.append((task_ids[task], action_index, digest, post))
            else:
                row.append((task_ids[task], action_index, digest))
        fingerprint_seconds += time.perf_counter() - after
        results.append(row)
    return results, novel, expand_seconds, fingerprint_seconds


def _close_chunk_telemetry(
    tel, span, results, stored, expand_seconds, fingerprint_seconds
):
    """Close one chunk's ``partition`` span and record its counters.

    The span was opened before expansion (so its wall time covers the
    real work); here it gains ``expand``/``fingerprint`` child spans
    carrying the accumulated phase time, plus the worker-side
    ``explore.states`` counter (states stored in this worker's shard —
    the one number the coordinator cannot attribute itself; expanded
    and transition counts are already published per worker from the
    reply).  Shared by forked workers and the in-process fallback.
    """
    transitions = sum(len(row) for row in results if row != PRUNED)
    if expand_seconds:
        tel.record_span("expand", expand_seconds, parent=span)
    if fingerprint_seconds:
        tel.record_span("fingerprint", fingerprint_seconds, parent=span)
    tel.end_span(span, transitions=transitions, stored=stored)
    tel.inc("explore.states", stored)


def _worker_main(
    conn,
    view,
    prune,
    digest_size: int,
    ship_states: bool,
    poison: frozenset = frozenset(),
    telemetry: bool = False,
) -> None:
    """Worker loop: expand chunks until the ``None`` sentinel (or EOF).

    ``poison`` is the fault-injection digest set of
    :class:`~repro.engine.chaos.FaultPlan`: asked to expand a poisoned
    state, the worker hard-exits before expanding — the deterministic
    stand-in for "this state segfaults whoever touches it".

    With ``telemetry`` on (the parent's tracer is enabled), the worker
    buffers spans/counters into a :class:`~repro.obs.spans.WorkerTelemetry`
    flushed with every reply — each batch is self-contained, so a crash
    loses at most the in-flight chunk's telemetry, never a half-open span.
    """
    store: dict = {"__encodings__": {}}
    task_ids = {task: index for index, task in enumerate(view.tasks)}
    action_ids: dict = {}
    send_seconds = 0.0
    drain = getattr(view, "drain_stats", None)
    tel = WorkerTelemetry(f"w{os.getpid()}") if telemetry else None
    while True:
        try:
            chunk = conn.recv()
        except EOFError:
            return
        if chunk is None:
            conn.close()
            return
        if poison:
            for entry in chunk:
                digest = entry if type(entry) is bytes else entry[0]
                if digest in poison:
                    os._exit(137)
        new_actions: list = []
        stored_before = len(store)
        chunk_span = (
            tel.start_span("partition", states=len(chunk)) if tel is not None else None
        )
        results, novel, expand_seconds, fingerprint_seconds = _expand_entries(
            chunk,
            store,
            view,
            prune,
            digest_size,
            ship_states,
            task_ids,
            action_ids,
            new_actions,
        )
        orbit_hits = pruned_tasks = 0
        if drain is not None:
            orbit_hits, pruned_tasks = drain()
        if tel is not None:
            _close_chunk_telemetry(
                tel,
                chunk_span,
                results,
                len(store) - stored_before,
                expand_seconds,
                fingerprint_seconds,
            )
        reply = (
            results,
            novel,
            new_actions,
            # send_seconds is the cost of shipping the *previous* reply,
            # reported one beat late (and dropped for the last one).
            (expand_seconds, fingerprint_seconds, send_seconds, orbit_hits, pruned_tasks),
            None if tel is None else tel.flush(),
        )
        before = time.perf_counter()
        try:
            conn.send(reply)
        except BrokenPipeError:
            return
        send_seconds = time.perf_counter() - before


class _WorkerHandle:
    """One forked worker: its pipe endpoint and process object."""

    __slots__ = ("conn", "process")

    def __init__(self, conn, process) -> None:
        self.conn = conn
        self.process = process

    def send(self, chunk) -> None:
        self.conn.send(chunk)

    def recv(self):
        return self.conn.recv()


class LocalExpander:
    """In-process stand-in for one worker (the no-fork fallback).

    Speaks the exact chunk/reply protocol of :func:`_worker_main` —
    ``send`` expands immediately and queues the reply for ``recv`` — so
    the driver runs one code path regardless of platform.  Local
    expanders cannot crash, so fault plans do not apply to them.
    """

    _incarnations = 0

    def __init__(
        self,
        view,
        prune,
        digest_size: int,
        ship_states: bool,
        telemetry: bool = False,
    ) -> None:
        self._view = view
        self._prune = prune
        self._digest_size = digest_size
        self._ship_states = ship_states
        self._store: dict = {"__encodings__": {}}
        self._task_ids = {task: index for index, task in enumerate(view.tasks)}
        self._action_ids: dict = {}
        self._replies: deque = deque()
        self._drain = getattr(view, "drain_stats", None)
        self._telemetry = None
        if telemetry:
            # In-process expanders share the coordinator's pid, so the
            # label carries an incarnation counter to keep span ids unique.
            LocalExpander._incarnations += 1
            self._telemetry = WorkerTelemetry(
                f"local{LocalExpander._incarnations}"
            )

    def send(self, chunk) -> None:
        if chunk is None:
            return
        new_actions: list = []
        stored_before = len(self._store)
        tel = self._telemetry
        chunk_span = (
            tel.start_span("partition", states=len(chunk)) if tel is not None else None
        )
        results, novel, expand_seconds, fingerprint_seconds = _expand_entries(
            chunk,
            self._store,
            self._view,
            self._prune,
            self._digest_size,
            self._ship_states,
            self._task_ids,
            self._action_ids,
            new_actions,
        )
        orbit_hits = pruned_tasks = 0
        if self._drain is not None:
            orbit_hits, pruned_tasks = self._drain()
        if tel is not None:
            _close_chunk_telemetry(
                tel,
                chunk_span,
                results,
                len(self._store) - stored_before,
                expand_seconds,
                fingerprint_seconds,
            )
        self._replies.append(
            (
                results,
                novel,
                new_actions,
                (expand_seconds, fingerprint_seconds, 0.0, orbit_hits, pruned_tasks),
                None if tel is None else tel.flush(),
            )
        )

    def recv(self):
        return self._replies.popleft()


class _Chunk:
    """One dispatchable slice of the round's frontier.

    ``positions`` are absolute indices into the round's item list (the
    coordinator's results array is keyed by them, which is what makes
    re-dispatching to *any* worker sound); ``items`` are the matching
    ``(state, digest)`` pairs; ``retries`` counts how many worker
    losses this chunk has survived.
    """

    __slots__ = ("positions", "items", "retries")

    def __init__(self, positions: list, items: list, retries: int = 0) -> None:
        self.positions = positions
        self.items = items
        self.retries = retries


class WorkerPool:
    """A crash-tolerant pool of expansion workers.

    Owns the full worker lifecycle — forking, chunking and dispatch,
    reply ingestion, crash detection, retry/respawn/quarantine, and the
    in-process collapse fallback (see the module docstring for the
    recovery model).  One pool serves one exploration run.

    :meth:`run_round` is the only work entry point: it ships one
    round's frontier and returns a results list aligned to it, where
    each slot is a successor row list, :data:`PRUNED`, or
    :data:`QUARANTINED`.  Rows carry *decoded* actions (the per-worker
    action-index indirection is resolved at ingest), so results are
    independent of which worker produced them.
    """

    def __init__(
        self,
        workers: int,
        view,
        prune: Callable[[Hashable], bool] | None,
        digest_size: int,
        ship_states: bool,
        *,
        max_worker_restarts: int = 3,
        restart_backoff_seconds: float = 0.05,
        max_partition_retries: int = 5,
        max_state_retries: int = 2,
        quarantine: bool = True,
        fault_plan: FaultPlan | None = None,
        heartbeat_seconds: float = 5.0,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        self.workers = max(1, workers)
        self._view = view
        self._prune = prune
        self._digest_size = digest_size
        self._ship_states = ship_states
        self.max_worker_restarts = max_worker_restarts
        self.restart_backoff_seconds = restart_backoff_seconds
        self.max_partition_retries = max_partition_retries
        self.max_state_retries = max_state_retries
        self.quarantine = quarantine
        self.fault_plan = fault_plan
        self.heartbeat_seconds = heartbeat_seconds
        self.tracer = tracer
        self.metrics = metrics
        # Recovery bookkeeping, read by the engine's final report.
        self.local = False
        self.collapsed = False
        self.worker_failures = 0
        self.worker_respawns = 0
        self.partitions_reassigned = 0
        self.quarantined: list = []  # (state, digest) in quarantine order
        self.orbit_hits = 0
        self.pruned_tasks = 0
        self.last_round_producers = 0
        self._handles: list = []
        self._alive: list[bool] = []
        self._restarts: list[int] = []
        self.seen: list[set] = []
        self.actions: list[list] = []
        self._context = None
        self._round = 0
        self._round_span: str | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Fork the workers (or fall back to in-process expanders)."""
        self.local = self.workers <= 1 or not fork_available()
        if self.local:
            self._handles = [
                LocalExpander(
                    self._view,
                    self._prune,
                    self._digest_size,
                    self._ship_states,
                    telemetry=self.tracer.enabled or self.metrics.enabled,
                )
                for _ in range(self.workers)
            ]
            if self.workers > 1 and self.metrics.enabled:
                self.metrics.counter("engine.inprocess_fallbacks").inc()
        else:
            self._context = multiprocessing.get_context("fork")
            self._handles = [self._spawn() for _ in range(self.workers)]
        self._alive = [True] * self.workers
        self._restarts = [0] * self.workers
        self.seen = [set() for _ in range(self.workers)]
        self.actions = [[] for _ in range(self.workers)]
        return self

    def stop(self) -> None:
        """Shut the pool down (no-op after collapse to in-process)."""
        if self.local:
            return
        stop_workers(
            [self._handles[w] for w in range(self.workers) if self._alive[w]]
        )

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        poison = self.fault_plan.poison if self.fault_plan is not None else frozenset()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._view,
                self._prune,
                self._digest_size,
                self._ship_states,
                poison,
                self.tracer.enabled or self.metrics.enabled,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(parent_conn, process)

    # -- one exchange round -------------------------------------------------

    def run_round(
        self,
        round_index: int,
        items,
        state_of: dict,
        phase: dict,
        round_span_id: str | None = None,
    ) -> list:
        """Expand one round's frontier; returns results by item position.

        ``items`` is the round's ``(state, digest)`` list in frontier
        order; ``state_of`` is the coordinator's digest-to-state table
        (novel successors are folded into it); ``phase`` accumulates
        per-phase timings.  Each result slot is a row list of
        ``(task_index, action, digest[, state])`` tuples (actions
        decoded, state present in audit mode), :data:`PRUNED`, or
        :data:`QUARANTINED`.

        ``round_span_id`` is the coordinator's open ``round`` span:
        merged worker spans (and the synthesized ``lost`` partition of a
        dead worker) are re-parented under it.
        """
        self._round = round_index
        self._round_span = round_span_id
        self._state_of = state_of
        self._phase = phase
        self._results: list = [None] * len(items)
        self._pending: list[deque] = [deque() for _ in range(self.workers)]
        self._inflight: list[deque] = [deque() for _ in range(self.workers)]
        self._outstanding = [0] * self.workers
        self._producers: set[int] = set()
        self._build_chunks(items)
        self._pump_all()
        self._apply_scheduled_faults(round_index)
        while True:
            self._pump_all()
            if not any(self._outstanding):
                break
            for worker in self._collect_ready():
                try:
                    reply = self._handles[worker].recv()
                except (EOFError, OSError):
                    self._worker_lost(worker)
                    continue
                self._outstanding[worker] -= 1
                self._ingest(worker, self._inflight[worker].popleft(), reply)
        self.last_round_producers = len(self._producers)
        return self._results

    def _build_chunks(self, items) -> None:
        # Shard by digest as always; a dead shard's bucket is routed to a
        # survivor up front (states re-ship via the encode-at-send path).
        workers = self.workers
        buckets: list[list] = [[] for _ in range(workers)]
        for position, (state, digest) in enumerate(items):
            buckets[shard_of(digest, workers)].append((position, state, digest))
        survivors = [w for w in range(workers) if self._alive[w]]
        for shard, bucket in enumerate(buckets):
            if not bucket:
                continue
            worker = shard if self._alive[shard] else survivors[shard % len(survivors)]
            seen = self.seen[worker]
            positions: list = []
            chunk_items: list = []
            stateful = False
            for position, state, digest in bucket:
                entry_stateful = digest not in seen
                cap = CHUNK_STATES if (stateful or entry_stateful) else CHUNK_DIGESTS
                if chunk_items and len(chunk_items) >= cap:
                    self._pending[worker].append(_Chunk(positions, chunk_items))
                    positions, chunk_items, stateful = [], [], False
                positions.append(position)
                chunk_items.append((state, digest))
                stateful = stateful or entry_stateful
            if chunk_items:
                self._pending[worker].append(_Chunk(positions, chunk_items))

    def _apply_scheduled_faults(self, round_index: int) -> None:
        if self.local or self.fault_plan is None:
            return
        for worker in self.fault_plan.victims_at(round_index):
            if worker < self.workers and self._alive[worker]:
                # SIGKILL after the first pump, so the loss is in-flight:
                # detection, retry, and respawn all run for real.
                self._handles[worker].process.kill()

    # -- dispatch -----------------------------------------------------------

    def _pump_all(self) -> None:
        # A lost worker mid-pump moves chunks onto queues already visited
        # this pass, so pump to fixpoint.  Terminates: every pass either
        # sends a chunk (finite pending) or buries a worker (finite pool).
        progressed = True
        while progressed:
            progressed = False
            for worker in range(self.workers):
                progressed |= self._pump(worker)

    def _pump(self, worker: int) -> bool:
        queue = self._pending[worker]
        if not queue:
            return False
        if not self._alive[worker]:
            chunks = list(queue)
            queue.clear()
            self._reassign(worker, chunks)
            return True
        progressed = False
        while queue:
            chunk = queue[0]
            entries, stateful, fresh = self._encode(worker, chunk)
            # Digest-only chunks ride the pipe buffer (WINDOW in flight);
            # a state-carrying chunk of unbounded pickle size goes only
            # to an idle worker whose blocking recv drains the pipe.
            if stateful:
                if self._outstanding[worker] > 0:
                    break
            elif self._outstanding[worker] >= WINDOW:
                break
            queue.popleft()
            before = time.perf_counter()
            try:
                self._handles[worker].send(entries)
            except (BrokenPipeError, OSError):
                queue.appendleft(chunk)
                self._worker_lost(worker)
                return True
            self._phase["serialize_seconds"] = self._phase.get(
                "serialize_seconds", 0.0
            ) + (time.perf_counter() - before)
            self.seen[worker].update(fresh)
            self._inflight[worker].append(chunk)
            self._outstanding[worker] += 1
            progressed = True
        return progressed

    def _encode(self, worker: int, chunk: _Chunk):
        # Encoded at send time, against the *current* target's store:
        # after a reassignment or respawn the same chunk may need its
        # states re-shipped, which deciding at build time would miss.
        seen = self.seen[worker]
        entries: list = []
        fresh: list = []
        for state, digest in chunk.items:
            if digest in seen:
                entries.append(digest)
            else:
                entries.append((digest, state))
                fresh.append(digest)
        return entries, bool(fresh), fresh

    def _collect_ready(self) -> list[int]:
        if self.local:
            return [w for w, count in enumerate(self._outstanding) if count]
        waitable = {
            self._handles[w].conn: w
            for w in range(self.workers)
            if self._alive[w] and self._outstanding[w]
        }
        ready = multiprocessing.connection.wait(
            list(waitable), timeout=self.heartbeat_seconds
        )
        if not ready:
            # Heartbeat expired with no replies: a worker may have died
            # without the pipe reporting EOF yet.  Liveness-check them.
            for worker in list(waitable.values()):
                if not self._handles[worker].process.is_alive():
                    self._worker_lost(worker)
            return []
        return [waitable[conn] for conn in ready]

    # -- ingestion ----------------------------------------------------------

    def _ingest(self, worker: int, chunk: _Chunk, reply) -> None:
        results, novel, new_actions, stats, batch = reply
        expand_seconds, fingerprint_seconds, send_seconds, orbit_hits, pruned = stats
        if batch is not None:
            self._merge_telemetry(worker, batch)
        state_of = self._state_of
        for digest, state in novel:
            state_of.setdefault(digest, state)
        table = self.actions[worker]
        table.extend(new_actions)
        seen = self.seen[worker]
        transitions = 0
        decoded: list = []
        # Decode action indices against the producing worker's table now,
        # so result rows are self-contained (a retried chunk may be
        # expanded by a different worker than the merge loop expects).
        if self._ship_states:
            for row in results:
                if row == PRUNED:
                    decoded.append(PRUNED)
                    continue
                out = []
                for task_index, action_index, digest, state in row:
                    seen.add(digest)
                    state_of.setdefault(digest, state)
                    out.append((task_index, table[action_index], digest, state))
                transitions += len(out)
                decoded.append(out)
        else:
            for row in results:
                if row == PRUNED:
                    decoded.append(PRUNED)
                    continue
                out = []
                for task_index, action_index, digest in row:
                    seen.add(digest)
                    out.append((task_index, table[action_index], digest))
                transitions += len(out)
                decoded.append(out)
        if self.metrics.enabled:
            self.metrics.counter(f"engine.worker{worker}.expanded").inc(len(results))
            self.metrics.counter(f"engine.worker{worker}.transitions").inc(transitions)
            self.metrics.histogram(f"engine.worker{worker}.phase.expand_seconds").observe(
                expand_seconds
            )
            self.metrics.histogram(
                f"engine.worker{worker}.phase.fingerprint_seconds"
            ).observe(fingerprint_seconds)
        phase = self._phase
        phase["expand_seconds"] = phase.get("expand_seconds", 0.0) + expand_seconds
        phase["fingerprint_seconds"] = (
            phase.get("fingerprint_seconds", 0.0) + fingerprint_seconds
        )
        phase["serialize_seconds"] = phase.get("serialize_seconds", 0.0) + send_seconds
        self.orbit_hits += orbit_hits
        self.pruned_tasks += pruned
        if results:
            self._producers.add(worker)
        for offset, position in enumerate(chunk.positions):
            self._results[position] = decoded[offset]

    def _merge_telemetry(self, worker: int, batch) -> None:
        """Fold one worker batch into the coordinator's tracer/metrics.

        Events are re-emitted through the parent tracer in buffer order
        (re-stamping ``seq``/``lamport``), with the worker's top-level
        spans re-parented under the current round span and tagged with
        the worker slot.  Worker counters merge *namespaced*
        (``engine.worker<w>.<name>``) — never into the coordinator's own
        ``explore.*`` counters, which already count the same work once.
        """
        events, counters = batch
        if events and self.tracer.enabled:
            merge_worker_events(
                self.tracer,
                events,
                parent_id=self._round_span,
                attach={"worker": worker, "round": self._round},
            )
        if counters and self.metrics.enabled:
            for name, value in counters.items():
                self.metrics.counter(f"engine.worker{worker}.{name}").inc(value)

    # -- recovery -----------------------------------------------------------

    def _worker_lost(self, worker: int) -> None:
        if self.local or not self._alive[worker]:
            return
        self._alive[worker] = False
        self.worker_failures += 1
        handle = self._handles[worker]
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(timeout=0.2)
        inflight = list(self._inflight[worker])
        pending = list(self._pending[worker])
        self._inflight[worker].clear()
        self._pending[worker].clear()
        self._outstanding[worker] = 0
        if self.metrics.enabled:
            self.metrics.counter("engine.worker_failures").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                WORKER_LOST,
                worker=worker,
                round=self._round,
                inflight=len(inflight),
                pending=len(pending),
                restarts=self._restarts[worker],
            )
            if inflight:
                # The blamed chunk died with the worker; its telemetry is
                # gone, so the coordinator synthesizes the closed span the
                # worker never got to flush.
                record_span(
                    self.tracer,
                    "partition",
                    0.0,
                    parent_id=self._round_span,
                    status="lost",
                    worker=worker,
                    round=self._round,
                    states=len(inflight[0].items),
                )
        requeue: list = []
        # Workers process chunks strictly FIFO, so only the *first*
        # un-replied chunk was being expanded when the worker died —
        # that one takes the blame (retry bump, split, quarantine).
        # Later in-flight chunks sat unread in the pipe: re-dispatching
        # them unbumped keeps cascading crashes (several workers dying
        # while partitions bounce between them) from quarantining
        # innocent states.
        for index, chunk in enumerate(inflight):
            if index > 0:
                requeue.append(chunk)
                continue
            chunk.retries += 1
            if chunk.retries > self.max_partition_retries:
                raise PartitionRetryExhausted(
                    len(chunk.items), chunk.retries, self.max_partition_retries
                )
            if len(chunk.items) > 1:
                # Split to isolate a potential killer state; each
                # singleton restarts its own retry count.
                for offset, item in enumerate(chunk.items):
                    requeue.append(_Chunk([chunk.positions[offset]], [item]))
            elif chunk.retries >= self.max_state_retries:
                self._quarantine(chunk)
            else:
                requeue.append(chunk)
        requeue.extend(pending)
        self._revive_or_reassign(worker, requeue)

    def _quarantine(self, chunk: _Chunk) -> None:
        state, digest = chunk.items[0]
        if not self.quarantine:
            raise StateQuarantined(state, digest, chunk.retries)
        self.quarantined.append((state, digest))
        self._results[chunk.positions[0]] = QUARANTINED
        if self.metrics.enabled:
            self.metrics.counter("engine.quarantined_states").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                STATE_QUARANTINED,
                digest=digest.hex(),
                retries=chunk.retries,
                round=self._round,
            )

    def _revive_or_reassign(self, worker: int, chunks: list) -> None:
        if self._restarts[worker] < self.max_worker_restarts:
            delay = self.restart_backoff_seconds * (2 ** self._restarts[worker])
            if delay > 0:
                time.sleep(min(delay, 2.0))
            self._restarts[worker] += 1
            self.worker_respawns += 1
            self._handles[worker] = self._spawn()
            self._alive[worker] = True
            # The new incarnation starts with an empty store; resetting
            # the coordinator's view of it makes encode re-ship states.
            self.seen[worker] = set()
            self.actions[worker] = []
            if self.metrics.enabled:
                self.metrics.counter("engine.worker_respawns").inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    WORKER_RESPAWNED,
                    worker=worker,
                    round=self._round,
                    restarts=self._restarts[worker],
                )
            self._requeue(chunks, [worker])
        else:
            survivors = [w for w in range(self.workers) if self._alive[w]]
            if not survivors:
                self._collapse(chunks)
            else:
                self._requeue(chunks, survivors)

    def _reassign(self, worker: int, chunks: list) -> None:
        # Chunks found queued on an already-dead worker (a send raced the
        # death): move them to survivors without touching retry counts.
        survivors = [w for w in range(self.workers) if self._alive[w]]
        if not survivors:
            self._collapse(chunks)
        else:
            self._requeue(chunks, survivors)

    def _requeue(self, chunks: list, targets: list[int]) -> None:
        if not chunks:
            return
        self.partitions_reassigned += len(chunks)
        if self.metrics.enabled:
            self.metrics.counter("engine.partitions_reassigned").inc(len(chunks))
        for index, chunk in enumerate(chunks):
            self._pending[targets[index % len(targets)]].append(chunk)

    def _collapse(self, chunks: list) -> None:
        """Degrade to in-process expansion: the pool is gone, the run is not."""
        self.collapsed = True
        self.local = True
        self._handles = [
            LocalExpander(
                self._view,
                self._prune,
                self._digest_size,
                self._ship_states,
                telemetry=self.tracer.enabled or self.metrics.enabled,
            )
            for _ in range(self.workers)
        ]
        self._alive = [True] * self.workers
        self.seen = [set() for _ in range(self.workers)]
        self.actions = [[] for _ in range(self.workers)]
        self._inflight = [deque() for _ in range(self.workers)]
        self._outstanding = [0] * self.workers
        if self.metrics.enabled:
            self.metrics.counter("engine.pool_collapses").inc()
        for index, chunk in enumerate(chunks):
            self._pending[index % self.workers].append(chunk)


def stop_workers(handles: Sequence[_WorkerHandle]) -> None:
    """Shut the pool down, draining stuck replies so workers can exit.

    A worker interrupted mid-round may be blocked in ``send`` on a reply
    larger than the pipe buffer; receiving (and discarding) pending
    replies unblocks it so it can see the sentinel.  Stragglers are
    terminated.
    """
    for handle in handles:
        try:
            handle.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    deadline = time.monotonic() + 5.0
    for handle in handles:
        while handle.process.is_alive() and time.monotonic() < deadline:
            try:
                while handle.conn.poll(0.05):
                    handle.conn.recv()
            except (EOFError, OSError):
                break
            handle.process.join(timeout=0.05)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
