"""The multiprocessing substrate of the parallel engine.

The engine parallelizes the *expensive* half of breadth-first search —
computing ``view.successors(state)`` and the successor digests — while
the coordinator keeps the cheap half (digest-set membership, graph
assembly) single-threaded, which is what makes the result provably
identical to the sequential graph (see :mod:`repro.engine.api`).

Workers are long-lived ``multiprocessing`` processes created with the
**fork** start method, each attached to the coordinator by a duplex
pipe.  Fork is a requirement, not a preference: systems under analysis
close over local functions (service ``delta`` closures) and are not
picklable, so the only way a worker can hold the
:class:`~repro.analysis.view.DeterministicSystemView` is by inheriting
the parent's memory image.  :func:`start_workers` returns ``None`` when
the platform cannot fork (or when one worker was requested), and the
engine falls back to :class:`LocalExpander` — same protocol, same
graph, no processes.

Wire protocol
-------------

Composite states are deep tuples whose pickles dwarf the real work, so
**full states almost never cross the pipe**.  Each worker keeps a
``digest -> state`` store of every state it has ever expanded or
produced; the coordinator tracks which digests each worker holds and
ships an outbound frontier entry as either

* a bare 16-byte digest — the worker re-resolves the state locally; or
* a ``(digest, state)`` bootstrap pair, exactly once per (worker,
  state), when the digest's owner never had the state (the root, a
  resumed frontier, or a successor first produced by another worker).

Replies carry ``(task_index, action_index, successor_digest)`` triples
— indices into the shared ``view.tasks`` tuple and a per-worker action
table — plus a ``novel`` list of ``(digest, state)`` pairs for states
the worker stored for the first time (so the coordinator can build the
graph), the newly-tabled actions, and per-phase timings.  In the
engine's collision-audit mode every reply triple carries the successor
state as a fourth field so the coordinator's audited index can compare
values, trading the wire savings for the checked guarantee.

Flow control: outbound chunks are bounded (``CHUNK_DIGESTS`` /
``CHUNK_STATES`` entries) and at most ``WINDOW`` digest-only chunks are
in flight per worker — small enough to fit the pipe buffer while the
worker is busy — while a state-carrying chunk (unbounded pickle size)
is sent only to an idle worker, whose blocking ``recv`` drains the pipe
as the coordinator writes.  Together these rule out the
send-while-both-full deadlock.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from typing import Callable, Hashable, Sequence

from .fingerprint import fingerprint_components

#: Marker returned for a pruned state instead of its successor list.
PRUNED = "__pruned__"

#: Max entries per digest-only chunk (bounded pickle ≪ the pipe buffer).
CHUNK_DIGESTS = 512

#: Max entries per chunk carrying at least one full state.
CHUNK_STATES = 64

#: Digest-only chunks in flight per worker.
WINDOW = 2


def fork_available() -> bool:
    """True when the platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _expand_entries(
    entries,
    store: dict,
    view,
    prune,
    digest_size: int,
    ship_states: bool,
    task_ids: dict,
    action_ids: dict,
    new_actions: list,
):
    """Expand one chunk of frontier entries against the local store.

    Returns ``(results, novel, expand_seconds, fingerprint_seconds)``
    with ``results`` aligned to ``entries``.  Shared by the forked
    worker loop and the in-process fallback.
    """
    results = []
    novel = []
    expand_seconds = 0.0
    fingerprint_seconds = 0.0
    encodings = store.setdefault("__encodings__", {})
    for entry in entries:
        if type(entry) is bytes:
            state = store[entry]
        else:
            digest, state = entry
            store[digest] = state
        if prune is not None and prune(state):
            results.append(PRUNED)
            continue
        before = time.perf_counter()
        successors = view.successors(state)
        after = time.perf_counter()
        expand_seconds += after - before
        row = []
        for task, action, post in successors:
            digest = fingerprint_components(post, encodings, digest_size)
            if digest not in store:
                store[digest] = post
                if not ship_states:
                    novel.append((digest, post))
            action_index = action_ids.get(action)
            if action_index is None:
                action_index = action_ids[action] = len(action_ids)
                new_actions.append(action)
            if ship_states:
                row.append((task_ids[task], action_index, digest, post))
            else:
                row.append((task_ids[task], action_index, digest))
        fingerprint_seconds += time.perf_counter() - after
        results.append(row)
    return results, novel, expand_seconds, fingerprint_seconds


def _worker_main(conn, view, prune, digest_size: int, ship_states: bool) -> None:
    """Worker loop: expand chunks until the ``None`` sentinel (or EOF)."""
    store: dict = {}
    task_ids = {task: index for index, task in enumerate(view.tasks)}
    action_ids: dict = {}
    send_seconds = 0.0
    drain = getattr(view, "drain_stats", None)
    while True:
        try:
            chunk = conn.recv()
        except EOFError:
            return
        if chunk is None:
            conn.close()
            return
        new_actions: list = []
        results, novel, expand_seconds, fingerprint_seconds = _expand_entries(
            chunk,
            store,
            view,
            prune,
            digest_size,
            ship_states,
            task_ids,
            action_ids,
            new_actions,
        )
        orbit_hits = pruned_tasks = 0
        if drain is not None:
            orbit_hits, pruned_tasks = drain()
        reply = (
            results,
            novel,
            new_actions,
            # send_seconds is the cost of shipping the *previous* reply,
            # reported one beat late (and dropped for the last one).
            (expand_seconds, fingerprint_seconds, send_seconds, orbit_hits, pruned_tasks),
        )
        before = time.perf_counter()
        try:
            conn.send(reply)
        except BrokenPipeError:
            return
        send_seconds = time.perf_counter() - before


class _WorkerHandle:
    """One forked worker: its pipe endpoint and process object."""

    __slots__ = ("conn", "process")

    def __init__(self, conn, process) -> None:
        self.conn = conn
        self.process = process

    def send(self, chunk) -> None:
        self.conn.send(chunk)

    def recv(self):
        return self.conn.recv()


class LocalExpander:
    """In-process stand-in for one worker (the no-fork fallback).

    Speaks the exact chunk/reply protocol of :func:`_worker_main` —
    ``send`` expands immediately and queues the reply for ``recv`` — so
    the driver runs one code path regardless of platform.
    """

    def __init__(self, view, prune, digest_size: int, ship_states: bool) -> None:
        self._view = view
        self._prune = prune
        self._digest_size = digest_size
        self._ship_states = ship_states
        self._store: dict = {}
        self._task_ids = {task: index for index, task in enumerate(view.tasks)}
        self._action_ids: dict = {}
        self._replies: deque = deque()
        self._drain = getattr(view, "drain_stats", None)

    def send(self, chunk) -> None:
        if chunk is None:
            return
        new_actions: list = []
        results, novel, expand_seconds, fingerprint_seconds = _expand_entries(
            chunk,
            self._store,
            self._view,
            self._prune,
            self._digest_size,
            self._ship_states,
            self._task_ids,
            self._action_ids,
            new_actions,
        )
        orbit_hits = pruned_tasks = 0
        if self._drain is not None:
            orbit_hits, pruned_tasks = self._drain()
        self._replies.append(
            (
                results,
                novel,
                new_actions,
                (expand_seconds, fingerprint_seconds, 0.0, orbit_hits, pruned_tasks),
            )
        )

    def recv(self):
        return self._replies.popleft()


def start_workers(
    workers: int,
    view,
    prune: Callable[[Hashable], bool] | None,
    digest_size: int,
    ship_states: bool,
) -> list[_WorkerHandle] | None:
    """Fork ``workers`` expansion processes, or ``None`` for in-process.

    ``None`` means "use :class:`LocalExpander`": one worker requested,
    or the platform lacks fork (the unpicklable view cannot reach a
    spawned child).  Callers must hand the returned handles to
    :func:`stop_workers` when done; the engine wraps the run in a
    ``try/finally``.
    """
    if workers <= 1 or not fork_available():
        return None
    context = multiprocessing.get_context("fork")
    handles = []
    for _ in range(workers):
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=_worker_main,
            args=(child_conn, view, prune, digest_size, ship_states),
            daemon=True,
        )
        process.start()
        child_conn.close()
        handles.append(_WorkerHandle(parent_conn, process))
    return handles


def wait_ready(handles: Sequence[_WorkerHandle], outstanding: Sequence[int]) -> list[int]:
    """Indices of workers with a reply ready (blocking until at least one)."""
    active = {
        handles[index].conn: index
        for index, pending in enumerate(outstanding)
        if pending
    }
    ready = multiprocessing.connection.wait(list(active))
    return [active[conn] for conn in ready]


def stop_workers(handles: Sequence[_WorkerHandle]) -> None:
    """Shut the pool down, draining stuck replies so workers can exit.

    A worker interrupted mid-round may be blocked in ``send`` on a reply
    larger than the pipe buffer; receiving (and discarding) pending
    replies unblocks it so it can see the sentinel.  Stragglers are
    terminated.
    """
    for handle in handles:
        try:
            handle.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    deadline = time.monotonic() + 5.0
    for handle in handles:
        while handle.process.is_alive() and time.monotonic() < deadline:
            try:
                while handle.conn.poll(0.05):
                    handle.conn.recv()
            except (EOFError, OSError):
                break
            handle.process.join(timeout=0.05)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
