"""Structured error taxonomy for the fault-tolerant engine.

The parallel driver survives worker crashes (see
:mod:`repro.engine.parallel`): a lost worker's in-flight frontier
partition is retried — on a respawned worker or redistributed across
survivors — and a state that repeatedly kills whoever expands it is
quarantined rather than retried forever.  These exceptions are the
points where that recovery machinery *gives up* (or, for
:class:`WorkerLost`, the internal signal it runs on):

* :class:`WorkerLost` — one worker died.  Raised internally by the
  pipe-facing send/recv paths and absorbed by the recovery loop; it
  reaches callers only through trace events and the final report, never
  as a raised exception, because a dead pool degrades to the in-process
  driver instead of failing.
* :class:`PartitionRetryExhausted` — a frontier partition was re-dispatched
  more than ``max_partition_retries`` times without ever being expanded.
  This is the configurable hard stop for runs that must not loop on a
  crashing partition (``max_partition_retries=0`` turns any in-flight
  loss into an error).
* :class:`StateQuarantined` — a single state killed its worker
  ``max_state_retries`` times and quarantine is disabled
  (``quarantine=False``), so the engine cannot honor the identical-graph
  guarantee by skipping it silently.

All three subclass :class:`EngineError`, so ``except EngineError`` is
the one handler for "the engine's fault tolerance gave up".
"""

from __future__ import annotations


class EngineError(RuntimeError):
    """Base class for structured failures of the exploration engine."""


class WorkerLost(EngineError):
    """A pool worker died (crash, OOM kill, or injected fault).

    Carries the worker index, the round in which the loss was detected,
    and how many times that worker slot had already been restarted.
    """

    def __init__(self, worker: int, round_index: int, restarts: int = 0) -> None:
        self.worker = worker
        self.round_index = round_index
        self.restarts = restarts
        super().__init__(
            f"worker {worker} lost in round {round_index}"
            f" (after {restarts} restart{'s' if restarts != 1 else ''})"
        )


class PartitionRetryExhausted(EngineError):
    """A frontier partition exceeded its re-dispatch budget.

    Every worker loss increments the retry count of the chunks that were
    in flight on it; once a chunk's count passes
    ``max_partition_retries`` the engine stops retrying and raises this
    instead of looping on a partition that keeps killing workers.
    """

    def __init__(self, states: int, retries: int, limit: int) -> None:
        self.states = states
        self.retries = retries
        self.limit = limit
        super().__init__(
            f"a partition of {states} state{'s' if states != 1 else ''} was"
            f" re-dispatched {retries} times (limit {limit}) without completing;"
            " the pool keeps losing whichever worker expands it"
        )


class StateQuarantined(EngineError):
    """A single state repeatedly killed workers and quarantine is off.

    With ``quarantine=True`` (the default) such a state is skipped and
    surfaced in the final report; with ``quarantine=False`` the engine
    refuses to drop it and raises this instead.
    """

    def __init__(self, state: object, digest: bytes, retries: int) -> None:
        self.state = state
        self.digest = digest
        self.retries = retries
        super().__init__(
            f"state {digest.hex()} killed its worker {retries} times and"
            " quarantine is disabled (pass quarantine=True to skip it and"
            " surface it in the final report)"
        )
