"""Packed canonical state representation: the TLV codec.

This module is the single home of the engine's canonical byte encoding.
It grew out of :mod:`repro.engine.fingerprint`'s ``canonical_bytes`` —
the tag-length-value scheme whose BLAKE2b digest is the engine's state
fingerprint — and extends it into a full **codec**: the same bytes that
are hashed are now also *kept*, shipped across worker pipes, stored in
checkpoints, and decoded back into states.  Three properties carry the
design:

* **digest parity by construction** — :meth:`Codec.encode_digest`
  returns ``(packed, digest)`` from one encoding pass, and ``digest ==
  blake2b(packed) == fingerprint(state)`` because the packed bytes *are*
  the canonical encoding.  Producing the wire form and the fingerprint
  used to be two separate serializations (a pickle and a TLV encode);
  now it is one.
* **verified identity** — ``decode(encode(x)) == x`` for every value
  built from the canonical forms (``None``/``bool``/``int``/``float``/
  ``str``/``bytes``/``tuple``/``frozenset``/``dict``, registered frozen
  dataclasses, registered enums).  Non-canonical aliases encode like
  their canonical form and decode *to* it (``list`` → ``tuple``,
  ``set`` → ``frozenset``, ``bytearray`` → ``bytes``) — states are
  hashable, so real states only ever contain the canonical forms.
* **interning** — composite states share components massively (one
  transition changes one or two of them), so the codec caches component
  encodings on the way out (the encode of an unchanged component is a
  dict hit) and memoizes component objects on the way in (equal
  components decode to the *same* object, so a decoded graph holds one
  object per distinct component value).  The caches never change the
  bytes: interning is an encode/decode-time optimization, and the
  packed form stays flat and self-contained, byte-identical across
  processes and interpreter restarts.

Dataclasses and enums encode by qualname (plus field values / member
name), so decoding needs the class object.  The codec keeps a process
global registry: encoding a dataclass or enum registers its type
automatically, forked workers inherit the parent's registrations, and
checkpoints persist the classes they used (by reference) so a fresh
process can resume.  Decoding an unregistered qualname raises
:class:`CodecError` naming :func:`register_codec_type` — it never
guesses.  The one lossy encoding is the ``repr`` fallback for exotic
component types; packed bytes containing it raise on decode, and the
engine's checkpoint writer falls back to whole-object pickling for such
states.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
import sys
from typing import Any

try:  # pragma: no cover - blake2b is part of CPython's hashlib
    from hashlib import blake2b
except ImportError:  # pragma: no cover - exotic builds only
    blake2b = None
    from hashlib import sha256

#: Default digest width in bytes (collision-safe for any feasible run).
DIGEST_SIZE = 16


class CodecError(ValueError):
    """Packed bytes could not be decoded (or a value cannot round-trip)."""


# ---------------------------------------------------------------------------
# Tags.  Every chunk is ``tag + payload`` where composite payloads are
# length-prefixed, so no value's encoding is a prefix of another's.
# ---------------------------------------------------------------------------

_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"i"
_FLOAT = b"f"
_STR = b"s"
_BYTES = b"b"
_TUPLE = b"t"
_SET = b"S"
_DICT = b"d"
_DATACLASS = b"D"
_ENUM = b"E"
_REPR = b"R"

# Integer forms of the tags, for decoding (indexing bytes yields ints).
_T_NONE, _T_TRUE, _T_FALSE = _NONE[0], _TRUE[0], _FALSE[0]
_T_INT, _T_FLOAT, _T_STR, _T_BYTES = _INT[0], _FLOAT[0], _STR[0], _BYTES[0]
_T_TUPLE, _T_SET, _T_DICT = _TUPLE[0], _SET[0], _DICT[0]
_T_DATACLASS, _T_ENUM, _T_REPR = _DATACLASS[0], _ENUM[0], _REPR[0]


# ---------------------------------------------------------------------------
# The type registry (dataclasses and enums decode through it)
# ---------------------------------------------------------------------------

_TYPE_REGISTRY: dict[str, type] = {}


def register_codec_type(cls: type) -> type:
    """Register ``cls`` so packed values containing it can be decoded.

    Usable as a decorator.  Encoding registers types automatically, so
    explicit registration is only needed in processes that *decode*
    values they never encoded — a fresh process resuming a checkpoint
    registers the classes stored in the checkpoint itself.
    """
    name = cls.__qualname__
    if dataclasses.is_dataclass(cls):
        if any(not field.init for field in dataclasses.fields(cls)):
            raise CodecError(
                f"{name} has init=False fields; the codec reconstructs "
                "dataclasses positionally and cannot round-trip it"
            )
    elif not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
        raise CodecError(f"{cls!r} is neither a dataclass nor an Enum")
    existing = _TYPE_REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise CodecError(
            f"codec type name {name!r} is already registered to "
            f"{existing!r}; qualnames must be unique across encoded types"
        )
    _TYPE_REGISTRY[name] = cls
    return cls


def registered_codec_types() -> dict[str, type]:
    """A snapshot of the registry (checkpoints persist these classes)."""
    return dict(_TYPE_REGISTRY)


# ---------------------------------------------------------------------------
# Encoding (the canonical bytes; moved here from fingerprint.py)
# ---------------------------------------------------------------------------


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += _NONE
        return
    if value is True:
        out += _TRUE
        return
    if value is False:
        out += _FALSE
        return
    kind = type(value)
    if kind is int:
        payload = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        out += _INT
        out += len(payload).to_bytes(4, "big")
        out += payload
        return
    if kind is float:
        out += _FLOAT
        out += struct.pack(">d", value)
        return
    if kind is str:
        payload = value.encode("utf-8")
        out += _STR
        out += len(payload).to_bytes(4, "big")
        out += payload
        return
    if kind in (bytes, bytearray):
        out += _BYTES
        out += len(value).to_bytes(4, "big")
        out += bytes(value)
        return
    if isinstance(value, tuple) or kind is list:
        out += _TUPLE
        out += len(value).to_bytes(4, "big")
        for item in value:
            _encode(item, out)
        return
    if isinstance(value, (set, frozenset)):
        # Unordered: serialize elements in sorted-encoding order so the
        # encoding is independent of (salted) iteration order.
        encoded = sorted(canonical_bytes(item) for item in value)
        out += _SET
        out += len(encoded).to_bytes(4, "big")
        for chunk in encoded:
            out += chunk
        return
    if isinstance(value, enum.Enum):
        _TYPE_REGISTRY.setdefault(type(value).__qualname__, type(value))
        out += _ENUM
        _encode(type(value).__qualname__, out)
        _encode(value.name, out)
        return
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        _TYPE_REGISTRY.setdefault(type(value).__qualname__, type(value))
        out += _DATACLASS
        _encode(type(value).__qualname__, out)
        fields = dataclasses.fields(value)
        out += len(fields).to_bytes(4, "big")
        for field in fields:
            _encode(getattr(value, field.name), out)
        return
    if isinstance(value, dict):
        entries = sorted(
            (canonical_bytes(key), canonical_bytes(item))
            for key, item in value.items()
        )
        out += _DICT
        out += len(entries).to_bytes(4, "big")
        for key_bytes, item_bytes in entries:
            out += key_bytes
            out += item_bytes
        return
    # Fallback for exotic state components: the repr must itself be
    # canonical for the digest to be (documented contract; audit mode
    # will catch violations as collisions or misses).  Not decodable.
    payload = repr(value).encode("utf-8")
    out += _REPR
    out += len(payload).to_bytes(4, "big")
    out += payload


def canonical_bytes(value: Any) -> bytes:
    """The canonical tag-length-value encoding of ``value``."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def digest_of_packed(packed: bytes, digest_size: int = DIGEST_SIZE) -> bytes:
    """The fingerprint of the state ``packed`` encodes, from bytes alone.

    ``digest_of_packed(encode(s)) == fingerprint(s)`` — this is what lets
    resumed runs rebuild their visited set from a packed checkpoint
    without decoding (let alone re-encoding) a single state.
    """
    if blake2b is not None:
        return blake2b(packed, digest_size=digest_size).digest()
    return sha256(packed).digest()[:digest_size]  # pragma: no cover


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    end = offset + 4
    if end > len(data):
        raise CodecError("truncated packed value (length field)")
    return int.from_bytes(data[offset:end], "big"), end


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    try:
        tag = data[offset]
    except IndexError:
        raise CodecError("truncated packed value (missing tag)") from None
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        length, offset = _read_length(data, offset)
        end = offset + length
        if end > len(data):
            raise CodecError("truncated packed int")
        return int.from_bytes(data[offset:end], "big", signed=True), end
    if tag == _T_FLOAT:
        end = offset + 8
        if end > len(data):
            raise CodecError("truncated packed float")
        return struct.unpack_from(">d", data, offset)[0], end
    if tag == _T_STR:
        length, offset = _read_length(data, offset)
        end = offset + length
        if end > len(data):
            raise CodecError("truncated packed str")
        return sys.intern(data[offset:end].decode("utf-8")), end
    if tag == _T_BYTES:
        length, offset = _read_length(data, offset)
        end = offset + length
        if end > len(data):
            raise CodecError("truncated packed bytes")
        return bytes(data[offset:end]), end
    if tag == _T_TUPLE:
        count, offset = _read_length(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _T_SET:
        count, offset = _read_length(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return frozenset(items), offset
    if tag == _T_DICT:
        count, offset = _read_length(data, offset)
        result = {}
        for _ in range(count):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    if tag == _T_DATACLASS:
        qualname, offset = _decode(data, offset)
        count, offset = _read_length(data, offset)
        values = []
        for _ in range(count):
            value, offset = _decode(data, offset)
            values.append(value)
        cls = _TYPE_REGISTRY.get(qualname)
        if cls is None:
            raise CodecError(
                f"packed value contains unregistered dataclass {qualname!r}; "
                "call repro.engine.register_codec_type on it first"
            )
        if len(dataclasses.fields(cls)) != count:
            raise CodecError(
                f"packed {qualname} has {count} fields, the registered class "
                f"has {len(dataclasses.fields(cls))} (stale class version?)"
            )
        return cls(*values), offset
    if tag == _T_ENUM:
        qualname, offset = _decode(data, offset)
        member, offset = _decode(data, offset)
        cls = _TYPE_REGISTRY.get(qualname)
        if cls is None:
            raise CodecError(
                f"packed value contains unregistered enum {qualname!r}; "
                "call repro.engine.register_codec_type on it first"
            )
        try:
            return cls[member], offset
        except KeyError:
            raise CodecError(f"{qualname} has no member {member!r}") from None
    if tag == _T_REPR:
        length, offset = _read_length(data, offset)
        preview = data[offset : offset + min(length, 80)]
        raise CodecError(
            "packed value contains a repr-encoded component "
            f"({preview!r}...); repr encoding is hash-only and cannot be "
            "decoded — give the type a dataclass/enum form or keep it out "
            "of packed paths"
        )
    raise CodecError(f"unknown tag byte {tag:#x} at offset {offset - 1}")


def decode_bytes(packed: bytes) -> Any:
    """Decode one packed value; inverse of :func:`canonical_bytes`."""
    value, end = _decode(packed, 0)
    if end != len(packed):
        raise CodecError(
            f"trailing garbage after packed value ({len(packed) - end} bytes)"
        )
    return value


# ---------------------------------------------------------------------------
# The component-encode cache
# ---------------------------------------------------------------------------
#
# The cache must NOT be keyed by plain equality: ``True == 1 == 1.0`` and
# ``(0,) == (False,)`` while their canonical encodings differ, so an
# ==-keyed dict would return whichever encoding was cached first and the
# "canonical, stable" digest guarantee would become encounter-order
# dependent.  Two tiers, both strict:
#
# * **identity** — keyed by ``id(component)`` with the component pinned
#   inside the entry (the pin keeps the id from being recycled).  Always
#   correct for any value, and the common case on the hot path:
#   successors share unchanged component *objects* with their parents.
# * **equality** — keyed by ``(type, value)``, restricted to the scalar
#   types where equality within the exact type implies encoding
#   equality: ``int``, ``str``, ``bytes``.  ``bool`` is excluded by the
#   exact-type check (and its singletons make the identity tier exact);
#   ``float`` is excluded because ``-0.0 == 0.0`` yet they encode with
#   different sign bits; containers and dataclasses are excluded because
#   their ``==`` ignores the bool/int distinction of nested members.
#
# Values that fit neither tier (unhashable components) encode uncached.

_EQ_CACHEABLE = (int, str, bytes)


def _cached_bytes(cache: dict, component: Any) -> tuple[bytes, bool]:
    """``(canonical_bytes(component), cache_hit)`` through ``cache``.

    ``cache`` holds both tiers: ``id(component) -> (component, bytes)``
    pins and ``(type, value) -> bytes`` scalar entries (the key spaces
    cannot collide — one is ``int``, the other ``tuple``).
    """
    entry = cache.get(id(component))
    if entry is not None and entry[0] is component:
        return entry[1], True
    kind = type(component)
    if kind in _EQ_CACHEABLE:
        key = (kind, component)
        encoded = cache.get(key)
        if encoded is not None:
            cache[id(component)] = (component, encoded)
            return encoded, True
        encoded = canonical_bytes(component)
        cache[key] = encoded
        cache[id(component)] = (component, encoded)
        return encoded, False
    encoded = canonical_bytes(component)
    try:
        hash(component)
    except TypeError:
        # Unhashable means mutable by convention: pinning it could serve
        # stale bytes after a mutation, so it re-encodes every time.
        return encoded, False
    cache[id(component)] = (component, encoded)
    return encoded, False


# ---------------------------------------------------------------------------
# The interning codec
# ---------------------------------------------------------------------------


class Codec:
    """A per-run packed-state encoder/decoder with component interning.

    One instance serves one exploration participant (the coordinator, or
    one worker process); the caches are plain dicts, not shared state.
    ``hits``/``misses`` count component-encode cache outcomes — the
    number the scaling benchmark asserts on, since a healthy hot path
    re-encodes almost nothing (expanding a transition changes one or two
    components of a composite state).
    """

    __slots__ = ("digest_size", "hits", "misses", "_encode_cache", "_decode_memo")

    def __init__(self, digest_size: int = DIGEST_SIZE) -> None:
        self.digest_size = digest_size
        self.hits = 0
        self.misses = 0
        self._encode_cache: dict[Any, bytes] = {}
        self._decode_memo: dict[bytes, Any] = {}

    # -- encoding -----------------------------------------------------------

    def component_bytes(self, component: Any) -> bytes:
        """Cached :func:`canonical_bytes` of one state component.

        The cache is strictly keyed (see :func:`_cached_bytes`): values
        that merely compare equal across types — ``True``/``1``/``1.0``,
        ``(0,)``/``(False,)`` — never share an entry, so the returned
        bytes are always the component's own canonical encoding.
        """
        encoded, hit = _cached_bytes(self._encode_cache, component)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return encoded

    def encode(self, state: Any) -> bytes:
        """The packed (canonical) bytes of ``state``, component-cached."""
        if type(state) is not tuple:
            return self.component_bytes(state)
        parts = [_TUPLE + len(state).to_bytes(4, "big")]
        for component in state:
            parts.append(self.component_bytes(component))
        return b"".join(parts)

    def encode_digest(self, state: Any) -> tuple[bytes, bytes]:
        """``(packed, digest)`` from a single encoding pass.

        ``digest == digest_of_packed(packed) == fingerprint(state)`` by
        construction — this method is what removed the engine's separate
        fingerprinting pass: the bytes being hashed are the bytes being
        shipped.
        """
        packed = self.encode(state)
        return packed, digest_of_packed(packed, self.digest_size)

    def digest(self, state: Any) -> bytes:
        """The fingerprint of ``state`` through the component cache."""
        if type(state) is not tuple:
            return digest_of_packed(self.component_bytes(state), self.digest_size)
        if blake2b is not None:
            hasher = blake2b(digest_size=self.digest_size)
        else:  # pragma: no cover - exotic builds only
            from hashlib import sha256 as _sha256

            return digest_of_packed(self.encode(state), self.digest_size)
        hasher.update(_TUPLE + len(state).to_bytes(4, "big"))
        for component in state:
            hasher.update(self.component_bytes(component))
        return hasher.digest()

    # -- decoding -----------------------------------------------------------

    def decode(self, packed: bytes) -> Any:
        """Decode packed bytes, interning components.

        Equal components decode to the *same* object across every decode
        this codec performs, so a decoded state graph holds one object
        per distinct component value — matching the interning the
        sequential engine gets from its state-keyed visited set.
        """
        if not packed or packed[0] != _T_TUPLE:
            return decode_bytes(packed)
        count, offset = _read_length(packed, 1)
        memo = self._decode_memo
        components = []
        for _ in range(count):
            value, end = _decode(packed, offset)
            key = packed[offset:end]
            canonical = memo.get(key)
            if canonical is None:
                memo[key] = value
            else:
                value = canonical
            components.append(value)
            offset = end
        if offset != len(packed):
            raise CodecError(
                f"trailing garbage after packed state ({len(packed) - offset} bytes)"
            )
        return tuple(components)

    # -- cache bounding -----------------------------------------------------

    def trim(self, limit: int | None = None) -> int:
        """Clear the interning caches; returns the entries freed.

        With ``limit``, clears only once the combined entry count
        exceeds it — an O(1) check, so callers can cap the codec on a
        hot path.  The caches pin every distinct component object (and
        its bytes) ever seen, which is the point for in-RAM runs — the
        live graph shares those objects — but is unbounded growth for
        disk-backed runs that stream millions of states through one
        codec.  Clearing never changes encodings or decodings, only
        cache hit rates and object sharing between decodes.
        """
        size = len(self._encode_cache) + len(self._decode_memo)
        if limit is not None and size <= limit:
            return 0
        self._encode_cache.clear()
        self._decode_memo.clear()
        return size

    # -- stats --------------------------------------------------------------

    def stats(self) -> tuple[int, int]:
        """``(hits, misses)`` of the component-encode cache."""
        return self.hits, self.misses
