"""Deterministic simulation: one seed, one run, bit-for-bit replayable.

FoundationDB-style simulation testing rests on one invariant: the whole
run — scheduling, fault injection, crashes — is a pure function of a
single seed, and the realized schedule can be replayed exactly.  This
harness provides that for any :class:`~repro.system.DistributedSystem`:

* :func:`simulate` drives a system under a seeded
  :class:`SimScheduler` (uniform over enabled tasks, optionally biased
  toward fault tasks), applies a crash schedule, detects quiescence,
  and checks the consensus safety axioms plus stuck-undecided liveness;
* the realized run is summarized as a **task script** — the system is
  deterministic per task (Section 3.1), so the script plus the inputs
  reconstructs the execution exactly;
* :func:`replay` re-runs a script through the existing
  :class:`~repro.ioa.scheduler.ScriptedScheduler`; replaying the script
  of a :class:`SimResult` yields an :class:`~repro.ioa.execution.Execution`
  that compares **equal** to the recorded one (bit-for-bit replay);
* :func:`script_document` / :func:`save_script` / :func:`load_script`
  serialize a run as a JSON replay script (the artifact the fuzzer
  emits and ``repro sim --replay`` consumes), and
  :func:`verify_replay` replays such a document and refuses any
  divergence loudly.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Mapping, Sequence

from ..analysis.consensus_spec import (
    Violation,
    check_agreement,
    check_modified_termination,
    check_validity,
)
from ..ioa.actions import Action, fail
from ..ioa.automaton import Automaton, State, Task
from ..ioa.execution import Execution
from ..ioa.scheduler import Scheduler, ScriptedScheduler
from ..ioa.scheduler import run as run_schedule
from ..obs.events import FAULT_FIRED, SIM_RUN, decode_value, encode_value
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from ..system.system import DistributedSystem

#: The ``kind`` field of every sim replay script document.
SCRIPT_KIND = "repro-sim-replay"
SCRIPT_VERSION = 1


class ReplayMismatch(RuntimeError):
    """A replayed script diverged from its recorded run."""


def _is_fault_task(task: Task) -> bool:
    name = task.name
    return isinstance(name, tuple) and bool(name) and name[0] == "fault"


@dataclass(frozen=True)
class SimConfig:
    """One simulation run, fully determined by these values.

    ``proposals`` is a sorted tuple of ``(endpoint, value)`` pairs (empty
    means the balanced alternating 0/1 assignment); ``crashes`` is a
    tuple of ``(step_index, endpoint)`` pairs delivered as ``fail``
    inputs; ``fault_rate`` biases the scheduler toward fault tasks when
    both fault and ordinary tasks are enabled (``None`` = uniform over
    everything enabled).
    """

    seed: int = 0
    max_steps: int = 400
    proposals: tuple = ()
    crashes: tuple = ()
    fault_rate: float | None = None

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "max_steps": self.max_steps,
            "proposals": encode_value(self.proposals),
            "crashes": encode_value(self.crashes),
            "fault_rate": self.fault_rate,
        }


class SimScheduler(Scheduler):
    """Seeded uniform scheduler with an optional fault-task bias.

    With ``fault_rate`` unset, behaves like
    :class:`~repro.ioa.scheduler.RandomScheduler`.  With it set, when
    both fault and ordinary tasks are enabled the scheduler flips a
    seeded coin: with probability ``fault_rate`` it picks among fault
    tasks, otherwise among ordinary ones — concentrating the adversary's
    budget without losing determinism.
    """

    def __init__(self, seed: int = 0, fault_rate: float | None = None) -> None:
        self._seed = seed
        self._fault_rate = fault_rate
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def choose(self, automaton: Automaton, state: State) -> Task | None:
        enabled = automaton.enabled_tasks(state)
        if not enabled:
            return None
        if self._fault_rate is not None:
            faults = [task for task in enabled if _is_fault_task(task)]
            others = [task for task in enabled if not _is_fault_task(task)]
            if faults and others:
                pool = faults if self._rng.random() < self._fault_rate else others
                return self._rng.choice(pool)
        return self._rng.choice(enabled)


def is_quiescent(automaton: Automaton, state: State) -> bool:
    """True iff every enabled transition is a self-loop.

    In a quiescent state the run can only spin on dummy steps forever;
    the execution is therefore already "fair at infinity", which is what
    licenses checking modified termination on a finite prefix.
    """
    for task in automaton.tasks():
        for transition in automaton.enabled(state, task):
            if transition.post != state:
                return False
    return True


def balanced_proposals(system: DistributedSystem) -> dict:
    """The alternating 0/1 assignment (the probe/bench convention)."""
    return {endpoint: index % 2 for index, endpoint in enumerate(system.process_ids)}


def _resolve_proposals(system: DistributedSystem, proposals) -> dict:
    resolved = dict(proposals)
    return resolved if resolved else balanced_proposals(system)


@dataclass
class SimResult:
    """Everything one simulation run produced, replay-ready.

    ``script`` is the realized task sequence (scheduled steps only);
    ``inputs`` the ``(step, action)`` pairs applied during the run;
    ``execution`` the run itself, starting *after* initialization.
    ``violations`` holds the safety axioms broken in the final state
    plus — only when the run ended ``quiescent`` — stuck-undecided
    modified-termination violations.
    """

    config: SimConfig
    proposals: dict
    execution: Execution
    script: tuple
    inputs: tuple
    decisions: dict
    failed: frozenset
    violations: list = field(default_factory=list)
    quiescent: bool = False
    fault_count: int = 0

    @property
    def steps(self) -> int:
        """Scheduled steps taken (inputs excluded)."""
        return len(self.script)

    @property
    def ok(self) -> bool:
        """True iff no axiom was violated."""
        return not self.violations

    def summary(self) -> str:
        """A one-line human-readable verdict."""
        verdict = (
            "ok"
            if self.ok
            else "VIOLATION " + ", ".join(v.axiom for v in self.violations)
        )
        return (
            f"seed={self.config.seed} steps={self.steps} "
            f"faults={self.fault_count} decisions={self.decisions!r} "
            f"quiescent={self.quiescent} -> {verdict}"
        )

    def to_json(self) -> dict:
        return {
            "config": self.config.to_json(),
            "steps": self.steps,
            "fault_count": self.fault_count,
            "quiescent": self.quiescent,
            "decisions": encode_value(
                tuple(sorted(self.decisions.items(), key=repr))
            ),
            "violations": [[v.axiom, v.detail] for v in self.violations],
        }


def _check_run(
    system: DistributedSystem,
    execution: Execution,
    proposals: Mapping,
    quiescent: bool,
) -> tuple[dict, frozenset, list]:
    final = execution.final_state
    decisions = system.decisions(final)
    failed = system.failed_processes(final)
    violations: list[Violation] = []
    violations.extend(check_agreement(decisions))
    violations.extend(check_validity(decisions, proposals))
    if quiescent:
        # Only a quiescent prefix soundly witnesses non-termination:
        # every task has been offered its turn forever after.
        violations.extend(check_modified_termination(decisions, proposals, failed))
    return dict(decisions), failed, violations


def _emit_run_events(
    tracer: Tracer, metrics: MetricsRegistry, result: SimResult
) -> None:
    if tracer.enabled:
        for index, step in enumerate(result.execution.steps):
            if step.task is not None and step.action.kind == "fault":
                tracer.emit(
                    FAULT_FIRED,
                    process=step.action.args[0],
                    action=step.action,
                    step=index,
                )
        tracer.emit(
            SIM_RUN,
            seed=result.config.seed,
            steps=result.steps,
            faults=result.fault_count,
            quiescent=result.quiescent,
            violations=[violation.axiom for violation in result.violations],
        )
    if metrics.enabled:
        metrics.counter("sim.runs").inc()
        metrics.counter("sim.steps").inc(result.steps)
        metrics.counter("sim.faults").inc(result.fault_count)
        if result.violations:
            metrics.counter("sim.violations").inc()


def _finish(
    system: DistributedSystem,
    config: SimConfig,
    proposals: dict,
    execution: Execution,
    inputs: tuple,
    tracer: Tracer,
    metrics: MetricsRegistry,
) -> SimResult:
    quiescent = is_quiescent(system, execution.final_state)
    decisions, failed, violations = _check_run(
        system, execution, proposals, quiescent
    )
    script = tuple(step.task for step in execution.steps if step.task is not None)
    fault_count = sum(
        1
        for step in execution.steps
        if step.task is not None and step.action.kind == "fault"
    )
    result = SimResult(
        config=config,
        proposals=proposals,
        execution=execution,
        script=script,
        inputs=inputs,
        decisions=decisions,
        failed=failed,
        violations=violations,
        quiescent=quiescent,
        fault_count=fault_count,
    )
    _emit_run_events(tracer, metrics, result)
    return result


def simulate(
    system: DistributedSystem,
    config: SimConfig = SimConfig(),
    *,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    run=None,
) -> SimResult:
    """Run ``system`` under the seeded scheduler; check the axioms.

    The run stops when every live inited process has decided, when the
    system goes quiescent (only self-loops remain enabled), or after
    ``config.max_steps`` — whichever comes first.  The returned
    :class:`SimResult` carries the realized task script; feeding it to
    :func:`replay` reproduces the identical execution.

    ``run`` is an optional :class:`~repro.obs.ledger.RunHandle`; the
    finished result is written to its heartbeat (seed, steps, faults,
    violation count) so ``repro runs tail`` sees sim activity too.
    """
    proposals = _resolve_proposals(system, config.proposals)
    initialization = system.initialization(proposals)
    inputs = tuple((step, fail(endpoint)) for step, endpoint in config.crashes)
    scheduler = SimScheduler(config.seed, config.fault_rate)

    def stop(execution: Execution) -> bool:
        state = execution.final_state
        live = set(proposals) - system.failed_processes(state)
        if live <= set(system.decisions(state)):
            return True
        return is_quiescent(system, state)

    execution = run_schedule(
        system,
        scheduler,
        max_steps=config.max_steps,
        start=initialization.final_state,
        inputs=inputs,
        stop=stop,
        tracer=tracer,
        metrics=metrics,
    )
    result = _finish(system, config, proposals, execution, inputs, tracer, metrics)
    if run is not None:
        run.heartbeat(
            seed=result.config.seed,
            steps=result.steps,
            faults=result.fault_count,
            violations=len(result.violations),
            quiescent=result.quiescent,
        )
    return result


def replay(
    system: DistributedSystem,
    script: Sequence[Task],
    *,
    inputs: Sequence[tuple[int, Action]] = (),
    proposals: Mapping | tuple = (),
    config: SimConfig | None = None,
    strict: bool = True,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> SimResult:
    """Re-run a recorded task script through the scripted scheduler.

    With ``strict=True`` (the default) a script task that is not enabled
    at its turn raises — the contract for scripts produced by
    :func:`simulate` or the shrinker, which are always strict-replayable
    from the same initialization.  ``strict=False`` skips disabled
    tasks, which is what delta-debugging candidates need; the result's
    ``script`` then records the *effective* fired sequence.
    """
    resolved = _resolve_proposals(system, proposals)
    initialization = system.initialization(resolved)
    scheduler = ScriptedScheduler(tuple(script), strict=strict)
    inputs = tuple(inputs)
    execution = run_schedule(
        system,
        scheduler,
        max_steps=len(tuple(script)) + 1,
        start=initialization.final_state,
        inputs=inputs,
        tracer=tracer,
        metrics=metrics,
    )
    if metrics.enabled:
        metrics.counter("sim.replays").inc()
    replay_config = config if config is not None else SimConfig(
        seed=-1,
        max_steps=len(tuple(script)) + 1,
        proposals=tuple(sorted(resolved.items(), key=repr)),
        crashes=(),
    )
    return _finish(system, replay_config, resolved, execution, inputs, tracer, metrics)


# ---------------------------------------------------------------------------
# Replay script documents
# ---------------------------------------------------------------------------


def script_document(candidate: Mapping, result: SimResult) -> dict:
    """Serialize a run as a JSON replay script.

    ``candidate`` is an opaque candidate spec document (interpreted by
    :func:`repro.sim.fuzz.build_candidate` or any caller-supplied
    builder); the rest captures everything needed to reproduce and
    verify the run: proposals, inputs, the task script, the per-step
    actions (for divergence detection), and the expected violations.
    """
    return {
        "kind": SCRIPT_KIND,
        "version": SCRIPT_VERSION,
        "candidate": dict(candidate),
        "seed": result.config.seed,
        "proposals": encode_value(tuple(sorted(result.proposals.items(), key=repr))),
        "inputs": [
            [step, encode_value(action)] for step, action in result.inputs
        ],
        "tasks": [encode_value(task) for task in result.script],
        "actions": [
            encode_value(step.action)
            for step in result.execution.steps
            if step.task is not None
        ],
        "violations": [[v.axiom, v.detail] for v in result.violations],
    }


def save_script(path, document: Mapping) -> None:
    """Write a replay script document as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(dict(document), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_script(path) -> dict:
    """Read a replay script document, decoding the replay-critical fields."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if raw.get("kind") != SCRIPT_KIND:
        raise ValueError(f"{path}: not a {SCRIPT_KIND} document")
    document = dict(raw)
    document["proposals"] = decode_value(raw.get("proposals", {"__tuple__": []}))
    document["inputs"] = tuple(
        (step, decode_value(action)) for step, action in raw.get("inputs", [])
    )
    document["tasks"] = tuple(decode_value(task) for task in raw.get("tasks", []))
    document["actions"] = tuple(
        decode_value(action) for action in raw.get("actions", [])
    )
    document["violations"] = [
        Violation(axiom=axiom, detail=detail)
        for axiom, detail in raw.get("violations", [])
    ]
    return document


def verify_replay(
    system: DistributedSystem,
    document: Mapping,
    *,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> SimResult:
    """Strict-replay a loaded script document and verify it bit-for-bit.

    Raises :class:`ReplayMismatch` if the fired action sequence diverges
    from the recorded one or the recorded violations fail to reproduce
    (same axioms).  On success returns the replayed :class:`SimResult`.
    """
    proposals = dict(document["proposals"])
    result = replay(
        system,
        document["tasks"],
        inputs=document["inputs"],
        proposals=proposals,
        config=SimConfig(
            seed=int(document.get("seed", -1)),
            max_steps=len(document["tasks"]) + 1,
            proposals=tuple(sorted(proposals.items(), key=repr)),
        ),
        strict=True,
        tracer=tracer,
        metrics=metrics,
    )
    fired = tuple(
        step.action for step in result.execution.steps if step.task is not None
    )
    recorded = tuple(document.get("actions", ()))
    if recorded and fired != recorded:
        for index, (got, expected) in enumerate(zip(fired, recorded)):
            if got != expected:
                raise ReplayMismatch(
                    f"replay diverged at step {index}: fired {got!r}, "
                    f"recorded {expected!r}"
                )
        raise ReplayMismatch(
            f"replay fired {len(fired)} actions, recorded {len(recorded)}"
        )
    expected_axioms = {v.axiom for v in document.get("violations", [])}
    replayed_axioms = {v.axiom for v in result.violations}
    if not expected_axioms <= replayed_axioms:
        raise ReplayMismatch(
            f"replay reproduced {sorted(replayed_axioms)!r}, "
            f"expected at least {sorted(expected_axioms)!r}"
        )
    return result
