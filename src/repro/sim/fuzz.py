"""The adversary fuzzer: generate candidates, break them, shrink proof.

The bivalence-preserving adversary of :mod:`repro.analysis` is a proof
artifact; this module turns it — together with the simulation harness —
into a general protocol-falsification engine:

* **candidate generation** — :class:`CandidateSpec` names a protocol
  family (the message-passing candidates over a
  :class:`~repro.sim.faults.FaultyNetwork`, or the seeded
  :class:`RandomTableProcess` family of mostly-wrong consensus
  attempts) plus a fault budget; every spec is a pure value, so a
  failing candidate is reconstructible from its JSON form;
* **campaigns** — :func:`fuzz` sweeps seeded simulations over specs,
  checking agreement, validity, and stuck-undecided termination each
  run; :func:`probe_with_adversary` points the full
  :func:`~repro.analysis.refute_candidate` pipeline at a spec for the
  exhaustive (bivalence/hook) treatment;
* **shrinking** — a failing schedule is minimized by delta debugging
  (ddmin) over the task script plus greedy input pruning, replaying
  each candidate through the non-strict
  :class:`~repro.ioa.scheduler.ScriptedScheduler` and keeping the
  reduction only if the violation (same axioms) survives; the shrunk
  script is then **strict-replayed twice** and the two executions must
  compare equal — the bit-for-bit determinism guarantee;
* **replay scripts** — every :class:`Counterexample` serializes to the
  JSON document ``repro sim --replay`` verifies offline, and knows the
  one-line command to do so.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from ..ioa.actions import Action
from ..obs.events import FUZZ_CANDIDATE, SHRINK_STEP
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from ..system.process import Process
from .faults import FaultBudget, FaultyNetwork
from .harness import SimConfig, SimResult, replay, script_document, simulate

#: Families :func:`build_candidate` understands.
FAMILIES = ("exchange", "arbiter", "random-table")


@dataclass(frozen=True)
class CandidateSpec:
    """A reconstructible description of one candidate protocol.

    ``faults`` is the sorted ``(field, budget)`` tuple form of a flat
    :class:`FaultBudget` (kept as a tuple so specs stay hashable);
    ``gen_seed`` parameterizes the ``random-table`` family and is
    ignored by the named ones.
    """

    family: str
    n: int = 2
    resilience: int = 0
    faults: tuple = ()
    gen_seed: int | None = None

    def budget(self) -> FaultBudget:
        """The spec's fault budget as a :class:`FaultBudget`."""
        return FaultBudget.from_json(dict(self.faults))

    def to_json(self) -> dict:
        return {
            "family": self.family,
            "n": self.n,
            "resilience": self.resilience,
            "faults": dict(self.faults),
            "gen_seed": self.gen_seed,
        }

    @classmethod
    def from_json(cls, document: Mapping) -> "CandidateSpec":
        """Validate a candidate document back into a spec."""
        family = document.get("family")
        if family not in FAMILIES:
            raise ValueError(
                f"unknown candidate family {family!r}; try: {', '.join(FAMILIES)}"
            )
        faults = document.get("faults") or {}
        budget = FaultBudget.from_json(faults)  # validates the fields
        return cls(
            family=family,
            n=int(document.get("n", 2)),
            resilience=int(document.get("resilience", 0)),
            faults=tuple(sorted(budget.to_json().items())),
            gen_seed=document.get("gen_seed"),
        )

    def describe(self) -> str:
        """A one-line human-readable label."""
        parts = [f"{self.family}(n={self.n}, f={self.resilience})"]
        if self.faults:
            parts.append("faults=" + ",".join(f"{k}={v}" for k, v in self.faults))
        if self.gen_seed is not None:
            parts.append(f"gen_seed={self.gen_seed}")
        return " ".join(parts)


class RandomTableProcess(Process):
    """A consensus attempt drawn from a seeded family of decision rules.

    Each process broadcasts its proposal, waits for a seeded number of
    deliveries, and decides by a seeded combination rule (own value,
    first/last received, min/max, or a constant).  Most draws violate
    agreement, validity, or termination under some schedule — exactly
    the population a falsification engine should be exercised on.  The
    table is a pure function of ``(gen_seed, endpoint)``, so candidates
    are reconstructible from the spec alone.
    """

    RULES = ("own", "first", "last", "min", "max", "const0", "const1")

    def __init__(
        self, endpoint: Hashable, peers: Sequence, network_id: Hashable, gen_seed: int
    ) -> None:
        self.peers = tuple(peers)
        self.network_id = network_id
        # String seeds hash via SHA-512, independent of PYTHONHASHSEED.
        rng = random.Random(f"random-table:{gen_seed}:{endpoint}")
        self.rule = rng.choice(self.RULES)
        self.wait_for = rng.randint(0, len(self.peers))
        super().__init__(
            endpoint, connections=(network_id,), input_values=(0, 1)
        )

    # locals = (phase, own, received tuple, broadcast cursor)
    def initial_locals(self):
        return ("idle", None, (), 0)

    def handle_input(self, locals_value, action: Action):
        phase, own, received, cursor = locals_value
        if action.kind == "init" and phase == "idle":
            return ("cast", action.args[1], received, 0)
        if action.kind == "respond" and action.args[0] == self.network_id:
            response = action.args[2]
            if isinstance(response, tuple) and response[0] == "deliver":
                return (phase, own, received + (response[2],), cursor)
        return locals_value

    def _decision(self, own, received):
        if self.rule == "own":
            return own
        if self.rule == "first":
            return received[0] if received else own
        if self.rule == "last":
            return received[-1] if received else own
        if self.rule == "min":
            return min((own,) + received)
        if self.rule == "max":
            return max((own,) + received)
        return 0 if self.rule == "const0" else 1

    def next_action(self, locals_value):
        phase, own, received, cursor = locals_value
        if phase == "cast":
            if cursor < len(self.peers):
                from ..services.network import send

                target = self.peers[cursor]
                return (
                    Action("invoke", (self.network_id, self.endpoint, send(target, own))),
                    ("cast", own, received, cursor + 1),
                )
            return None, ("wait", own, received, cursor)
        if phase == "wait" and len(received) >= self.wait_for:
            value = self._decision(own, received)
            return (
                Action("decide", (self.endpoint, value)),
                ("done", own, received, cursor),
            )
        return None, locals_value


def _random_table_system(n: int, resilience: int, budget: FaultBudget, gen_seed: int):
    from ..system.system import DistributedSystem

    network_id = "net"
    endpoints = tuple(range(n))
    network = FaultyNetwork(
        network_id,
        endpoints=endpoints,
        messages=(0, 1),
        resilience=resilience,
        budget=budget,
    )
    processes = [
        RandomTableProcess(
            endpoint,
            peers=tuple(e for e in endpoints if e != endpoint),
            network_id=network_id,
            gen_seed=gen_seed,
        )
        for endpoint in endpoints
    ]
    return DistributedSystem(processes, services=[network])


def build_candidate(spec: CandidateSpec):
    """Instantiate a spec as a :class:`~repro.system.DistributedSystem`.

    Named families run over a :class:`FaultyNetwork` with the spec's
    budget (the zero budget yields the benign network automaton
    state-for-state, so specs without faults are the classic
    candidates).
    """
    budget = spec.budget()
    if spec.family == "exchange":
        from ..protocols.message_passing import exchange_consensus_system

        return exchange_consensus_system(spec.resilience, faults=budget)
    if spec.family == "arbiter":
        from ..protocols.message_passing import arbiter_consensus_system

        return arbiter_consensus_system(max(spec.n, 3), spec.resilience, faults=budget)
    if spec.family == "random-table":
        gen_seed = spec.gen_seed if spec.gen_seed is not None else 0
        return _random_table_system(max(spec.n, 2), spec.resilience, budget, gen_seed)
    raise ValueError(f"unknown candidate family {spec.family!r}")


def random_spec(rng: random.Random, families: Sequence[str] = FAMILIES) -> CandidateSpec:
    """Draw a random candidate spec: family, size, budget, table seed."""
    family = rng.choice(tuple(families))
    faults = {}
    for field_name in ("drop", "duplicate", "reorder", "skew"):
        if rng.random() < 0.4:
            faults[field_name] = rng.randint(1, 2)
    if rng.random() < 0.2:
        faults["partitions"] = 1
    return CandidateSpec(
        family=family,
        n=rng.randint(2, 3),
        resilience=0,
        faults=tuple(sorted(faults.items())),
        gen_seed=rng.randrange(2**16) if family == "random-table" else None,
    )


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


@dataclass
class Counterexample:
    """A minimized failing schedule with its replay artifact.

    ``result`` is the strict replay of the shrunk script (its execution
    is the minimal violating trace); ``original_steps`` the length of
    the schedule the fuzzer first found.
    """

    spec: CandidateSpec
    seed: int
    result: SimResult
    original_steps: int
    shrink_rounds: int = 0

    @property
    def shrunk_steps(self) -> int:
        """Steps in the minimized schedule."""
        return self.result.steps

    @property
    def shrink_ratio(self) -> float:
        """Fraction of the original schedule removed (0..1)."""
        if self.original_steps == 0:
            return 0.0
        return 1.0 - (self.shrunk_steps / self.original_steps)

    @property
    def violations(self) -> list:
        """The axioms the minimized schedule still violates."""
        return self.result.violations

    def to_document(self) -> dict:
        """The JSON replay script ``repro sim --replay`` verifies."""
        return script_document(self.spec.to_json(), self.result)

    def replay_command(self, path) -> str:
        """The one-line offline reproduction command."""
        return f"PYTHONPATH=src python -m repro sim --replay {path}"

    def summary(self) -> str:
        """A one-line report: what broke and how much the shrink cut."""
        axioms = ", ".join(v.axiom for v in self.violations)
        return (
            f"{self.spec.describe()} seed={self.seed}: {axioms}; "
            f"schedule {self.original_steps} -> {self.shrunk_steps} steps "
            f"({100 * self.shrink_ratio:.0f}% shrunk, "
            f"{self.shrink_rounds} rounds)"
        )


def _axioms(result: SimResult) -> frozenset:
    return frozenset(violation.axiom for violation in result.violations)


def shrink_counterexample(
    spec: CandidateSpec,
    seed: int,
    found: SimResult,
    *,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> Counterexample:
    """Minimize a failing schedule by ddmin plus greedy input pruning.

    Candidates are replayed non-strictly (disabled tasks skipped) and a
    reduction is kept only when every originally violated axiom is
    still violated; the kept script is always the *effective* fired
    sequence, so dead entries never survive.  The final script is
    strict-replayed twice and the two executions must be equal — any
    nondeterminism would be a harness bug and raises immediately.
    """
    system = build_candidate(spec)
    target_axioms = _axioms(found)
    proposals = dict(found.proposals)
    script = list(found.script)
    inputs = list(found.inputs)
    original_steps = len(script)
    rounds = 0

    def attempt(tasks, candidate_inputs) -> SimResult | None:
        result = replay(
            system,
            tuple(tasks),
            inputs=tuple(candidate_inputs),
            proposals=proposals,
            strict=False,
            metrics=metrics,
        )
        if target_axioms <= _axioms(result):
            return result
        return None

    def adopt(result: SimResult, tasks_before: int) -> None:
        nonlocal script, rounds
        script = list(result.script)
        rounds += 1
        if tracer.enabled:
            tracer.emit(
                SHRINK_STEP, before=tasks_before, after=len(script), round=rounds
            )
        if metrics.enabled:
            metrics.counter("fuzz.shrink_rounds").inc()
            metrics.counter("sim.fuzz.shrink_steps").inc()

    # Greedy input pruning first: fewer crashes, simpler schedules.
    index = len(inputs) - 1
    while index >= 0:
        candidate_inputs = inputs[:index] + inputs[index + 1 :]
        result = attempt(script, candidate_inputs)
        if result is not None:
            inputs = candidate_inputs
            adopt(result, len(script))
        index -= 1

    # Classic ddmin over the task script.
    chunks = 2
    while len(script) >= 2:
        length = len(script)
        chunk_size = max(1, length // chunks)
        reduced = False
        start = 0
        while start < len(script):
            candidate_tasks = script[:start] + script[start + chunk_size :]
            if not candidate_tasks:
                start += chunk_size
                continue
            result = attempt(candidate_tasks, inputs)
            if result is not None:
                adopt(result, length)
                reduced = True
                break
            start += chunk_size
        if reduced:
            chunks = max(chunks - 1, 2)
            continue
        if chunk_size <= 1:
            break
        chunks = min(len(script), chunks * 2)

    # Final greedy single-task sweep until a fixpoint.
    changed = True
    while changed:
        changed = False
        for position in range(len(script) - 1, -1, -1):
            candidate_tasks = script[:position] + script[position + 1 :]
            result = attempt(candidate_tasks, inputs)
            if result is not None:
                adopt(result, len(script) + 1)
                changed = True
                break

    # The determinism guarantee, enforced: two strict replays, equal runs.
    first = replay(
        system, tuple(script), inputs=tuple(inputs), proposals=proposals, strict=True
    )
    second = replay(
        system, tuple(script), inputs=tuple(inputs), proposals=proposals, strict=True
    )
    if first.execution != second.execution:
        raise RuntimeError(
            "shrunk script replayed differently twice — determinism broken"
        )
    if not target_axioms <= _axioms(first):
        raise RuntimeError(
            "shrunk script lost its violation under strict replay"
        )
    final_config = SimConfig(
        seed=seed,
        max_steps=found.config.max_steps,
        proposals=tuple(sorted(proposals.items(), key=repr)),
        crashes=tuple(
            (step, action.args[0]) for step, action in inputs
        ),
        fault_rate=found.config.fault_rate,
    )
    final = SimResult(
        config=final_config,
        proposals=proposals,
        execution=first.execution,
        script=first.script,
        inputs=first.inputs,
        decisions=first.decisions,
        failed=first.failed,
        violations=first.violations,
        quiescent=first.quiescent,
        fault_count=first.fault_count,
    )
    if metrics.enabled:
        metrics.counter("fuzz.counterexamples").inc()
    return Counterexample(
        spec=spec,
        seed=seed,
        result=final,
        original_steps=original_steps,
        shrink_rounds=rounds,
    )


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """What a fuzz campaign covered and what it found."""

    specs_tried: int
    runs: int
    steps: int
    elapsed: float
    found: list = field(default_factory=list)

    @property
    def schedules_per_second(self) -> float:
        """Simulated schedules per wall-clock second."""
        return self.runs / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> str:
        """A short human-readable campaign report."""
        lines = [
            f"fuzz: {self.specs_tried} candidates, {self.runs} schedules "
            f"({self.steps} steps) in {self.elapsed:.2f}s "
            f"({self.schedules_per_second:.0f} schedules/s), "
            f"{len(self.found)} counterexample(s)"
        ]
        lines.extend("  " + ce.summary() for ce in self.found)
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "specs_tried": self.specs_tried,
            "runs": self.runs,
            "steps": self.steps,
            "elapsed": self.elapsed,
            "schedules_per_second": self.schedules_per_second,
            "found": [
                {
                    "spec": ce.spec.to_json(),
                    "seed": ce.seed,
                    "violations": [[v.axiom, v.detail] for v in ce.violations],
                    "original_steps": ce.original_steps,
                    "shrunk_steps": ce.shrunk_steps,
                    "shrink_ratio": ce.shrink_ratio,
                }
                for ce in self.found
            ],
        }


def fuzz(
    specs: Sequence[CandidateSpec] | None = None,
    *,
    campaigns: int = 8,
    runs: int = 8,
    seed: int = 0,
    max_steps: int = 300,
    fault_rate: float | None = 0.3,
    crash_budget: int = 0,
    families: Sequence[str] = FAMILIES,
    stop_after: int | None = 1,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    run=None,
) -> FuzzReport:
    """Run a seeded fuzz campaign; shrink every counterexample found.

    With ``specs`` given, exactly those candidates are attacked (the CI
    smoke path targets a known-refutable spec this way); otherwise
    ``campaigns`` random specs are drawn from ``families``.  Each spec
    gets up to ``runs`` seeded schedules; ``crash_budget`` adds that
    many random crash inputs per schedule.  The campaign stops early
    after ``stop_after`` counterexamples (``None`` = never).  The whole
    campaign is a pure function of ``seed``.

    ``run`` is an optional :class:`~repro.obs.ledger.RunHandle`: the
    campaign heartbeats it per candidate and links each attacked spec
    (``campaign_id -> run_id``) so ``repro runs show`` reconstructs
    what the campaign covered.  The shared-registry campaign counters —
    ``sim.fuzz.schedules``, ``sim.fuzz.violations``,
    ``sim.fuzz.shrink_steps`` — publish regardless.
    """
    rng = random.Random(seed)
    if specs is None:
        spec_list = [random_spec(rng, families) for _ in range(campaigns)]
    else:
        spec_list = list(specs)
    report = FuzzReport(specs_tried=0, runs=0, steps=0, elapsed=0.0)
    started = time.monotonic()
    for campaign_id, spec in enumerate(spec_list):
        report.specs_tried += 1
        if tracer.enabled:
            tracer.emit(FUZZ_CANDIDATE, candidate=spec.describe())
        if metrics.enabled:
            metrics.counter("fuzz.candidates").inc()
        if run is not None:
            run.link(f"campaign-{campaign_id}", spec.describe())
            run.heartbeat(
                campaigns=report.specs_tried,
                schedules=report.runs,
                violations=len(report.found),
                elapsed=time.monotonic() - started,
            )
        system = build_candidate(spec)
        endpoints = tuple(system.process_ids)
        for _ in range(runs):
            sim_seed = rng.randrange(2**31)
            crashes = tuple(
                (rng.randrange(max_steps // 2 or 1), rng.choice(endpoints))
                for _ in range(crash_budget)
            )
            config = SimConfig(
                seed=sim_seed,
                max_steps=max_steps,
                crashes=crashes,
                fault_rate=fault_rate,
            )
            result = simulate(system, config, tracer=tracer, metrics=metrics)
            report.runs += 1
            report.steps += result.steps
            if metrics.enabled:
                metrics.counter("sim.fuzz.schedules").inc()
            if result.violations:
                if metrics.enabled:
                    metrics.counter("sim.fuzz.violations").inc()
                report.found.append(
                    shrink_counterexample(
                        spec, sim_seed, result, tracer=tracer, metrics=metrics
                    )
                )
                break
        if stop_after is not None and len(report.found) >= stop_after:
            break
    report.elapsed = time.monotonic() - started
    if run is not None:
        run.heartbeat(
            force=True,
            campaigns=report.specs_tried,
            schedules=report.runs,
            violations=len(report.found),
            elapsed=report.elapsed,
        )
    return report


def probe_with_adversary(
    spec: CandidateSpec,
    *,
    budget=None,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
):
    """Point the bivalence-preserving adversary at a spec.

    Runs the full :func:`repro.analysis.refute_candidate` pipeline
    (Lemma 4 bivalence search, the Fig. 3 hook, Lemmas 6-8) against the
    candidate, claiming one more level of resilience than the spec's
    services provide — the deep end of the fuzzer, for candidates the
    schedule sampler cannot break.
    """
    from ..analysis.adversary import refute_candidate

    system = build_candidate(spec)
    return refute_candidate(
        system, tracer=tracer, metrics=metrics, budget=budget
    )
