"""Network faults as explicit, explorable transitions.

The paper's adversary controls scheduling and crashes; a real network
adversary also loses, duplicates, reorders, and partitions messages
("Time is not a Healer" models exactly these message adversaries).  This
module makes each such fault a first-class transition of a service
automaton, so the whole analysis stack — exhaustive exploration,
valence, the hook search, reduction, the parallel engine — composes
with a faulty network *unchanged*:

* :class:`FaultyNetwork` wraps the asynchronous reliable FIFO network
  of :mod:`repro.services.network` and adds one **fault task per fault
  instance** — drop/duplicate/skew per directed link, reorder per
  receiver slot, partition per configured cut, plus heal.  Each fault
  task has at most one enabled transition in any state, preserving the
  determinism assumption the analysis layer relies on
  (:class:`~repro.analysis.view.DeterministicSystemView` refuses tasks
  with several enabled transitions).
* Budgets are part of the service *state* (``val``), normalized so
  exhausted budgets vanish from the tuple: a :class:`FaultyNetwork`
  with a **zero budget is state-for-state identical** to the benign
  :class:`~repro.services.network.AsynchronousNetwork` — same start
  state, same tasks, same transitions — which is the conservativity
  regression the test suite asserts on Theorem 9's instances.

Fault semantics (all act on in-flight messages, i.e. entries of the
receiver's response buffer, which preserves the per-endpoint FIFO
buffer discipline of the canonical service skeleton):

* ``drop(s, r)``   — remove the oldest undelivered message from ``s``
  in ``r``'s buffer;
* ``dup(s, r)``    — duplicate that message in place (at-least-once
  delivery);
* ``reorder(r, slot)`` — swap adjacent in-flight messages at position
  ``slot`` of ``r``'s buffer **only when their senders differ**, so
  per-``(sender, receiver)`` FIFO order is never violated;
* ``skew(s, r)``   — bounded clock skew on the link's delivery timer:
  delay the oldest message from ``s`` as far as FIFO allows (just
  before the next message from ``s``), letting other links overtake it;
* ``partition(i)`` / ``heal`` — activate/deactivate a configured cut;
  while a cut is active, ``perform`` steps for messages crossing it
  lose the message (the medium is fail-prone, not store-and-forward).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from ..ioa.actions import Action
from ..ioa.automaton import State, Task, Transition
from ..services.base import ServiceState
from ..services.network import channel_id, deliver
from ..services.oblivious import CanonicalFailureObliviousService
from ..types.service_type import FailureObliviousServiceType, ServiceResult

#: Budget entry kinds, in the order they appear in task names and
#: ``val`` entries.  ``cut`` is activation state, not a budget.
DROP = "drop"
DUP = "dup"
REORDER = "reorder"
SKEW = "skew"
PART = "part"
CUT = "cut"


def _per_link(budget: int | Mapping, sender, receiver) -> int:
    """A per-link budget: a flat int applies to every directed link."""
    if isinstance(budget, Mapping):
        return int(budget.get((sender, receiver), 0))
    return int(budget)


def _per_receiver(budget: int | Mapping, receiver) -> int:
    """A per-receiver budget: a flat int applies to every receiver."""
    if isinstance(budget, Mapping):
        return int(budget.get(receiver, 0))
    return int(budget)


@dataclass(frozen=True)
class FaultBudget:
    """How much damage the network adversary may do, per fault kind.

    ``drop``, ``duplicate``, and ``skew`` bound faults per directed link
    ``(sender, receiver)``; ``reorder`` bounds cross-pair swaps per
    receiver.  Each may be a flat ``int`` (the same budget on every
    link/receiver) or a mapping from link/receiver to budget.
    ``partitions`` bounds how many times a cut may be *activated*;
    ``cuts`` lists the candidate cuts (sets of endpoints separated from
    the rest), defaulting to every singleton cut.  ``reorder_window``
    is how deep into a receiver's in-flight buffer reorder swaps may
    reach (slots ``0 .. reorder_window - 1``).

    The default is the zero budget: a :class:`FaultyNetwork` under it
    is indistinguishable from the benign network.
    """

    drop: int | Mapping = 0
    duplicate: int | Mapping = 0
    reorder: int | Mapping = 0
    skew: int | Mapping = 0
    partitions: int = 0
    cuts: tuple = ()
    reorder_window: int = 2

    def resolved_cuts(self, endpoints: Sequence) -> tuple[frozenset, ...]:
        """The candidate cuts, defaulting to one singleton per endpoint."""
        if self.cuts:
            return tuple(frozenset(cut) for cut in self.cuts)
        return tuple(frozenset({endpoint}) for endpoint in endpoints)

    def initial_val(self, endpoints: Sequence) -> tuple:
        """The normalized budget tuple that seeds the service ``val``.

        Exhausted (zero) budgets are omitted, so the all-zero budget
        yields ``()`` — bit-identical to the benign network's value.
        """
        entries = []
        for sender in endpoints:
            for receiver in endpoints:
                if sender == receiver:
                    continue
                for kind, budget in (
                    (DROP, self.drop),
                    (DUP, self.duplicate),
                    (SKEW, self.skew),
                ):
                    remaining = _per_link(budget, sender, receiver)
                    if remaining > 0:
                        entries.append((kind, sender, receiver, remaining))
        for receiver in endpoints:
            remaining = _per_receiver(self.reorder, receiver)
            if remaining > 0:
                entries.append((REORDER, receiver, remaining))
        if self.partitions > 0:
            entries.append((PART, self.partitions))
        return _normalize(entries)

    def is_zero(self, endpoints: Sequence) -> bool:
        """True iff no fault of any kind is ever possible."""
        return self.initial_val(endpoints) == ()

    def to_json(self) -> dict:
        """A JSON-serializable form (flat int budgets only)."""
        document = {}
        for field_name in ("drop", "duplicate", "reorder", "skew", "partitions"):
            value = getattr(self, field_name)
            if isinstance(value, Mapping):
                raise ValueError(
                    f"per-link {field_name} budgets are not JSON-serializable; "
                    "use flat int budgets in wire specs"
                )
            if value:
                document[field_name] = int(value)
        if self.reorder_window != 2:
            document["reorder_window"] = self.reorder_window
        return document

    @classmethod
    def from_json(cls, document: Mapping) -> "FaultBudget":
        """Inverse of :meth:`to_json`."""
        allowed = {"drop", "duplicate", "reorder", "skew", "partitions", "reorder_window"}
        unknown = set(document) - allowed
        if unknown:
            raise ValueError(f"unknown fault budget field(s): {sorted(unknown)}")
        return cls(**{key: int(value) for key, value in document.items()})


def _normalize(entries) -> tuple:
    """Canonical ``val`` form: zero budgets dropped, entries sorted."""
    return tuple(sorted((e for e in entries if e[0] == CUT or e[-1] > 0), key=repr))


def _remaining(val: tuple, prefix: tuple) -> int:
    """The remaining budget of the entry starting with ``prefix``."""
    for entry in val:
        if entry[: len(prefix)] == prefix:
            return entry[-1]
    return 0


def _spend(val: tuple, prefix: tuple) -> tuple:
    """Decrement the budget entry starting with ``prefix`` by one."""
    entries = []
    for entry in val:
        if entry[: len(prefix)] == prefix:
            entries.append(prefix + (entry[-1] - 1,))
        else:
            entries.append(entry)
    return _normalize(entries)


def _active_cut_index(val: tuple) -> int | None:
    """The index of the currently active cut, or ``None``."""
    for entry in val:
        if entry[0] == CUT:
            return entry[1]
    return None


def faulty_network_type(
    endpoints: Sequence,
    messages: Sequence,
    budget: FaultBudget,
    *,
    strict: bool = False,
) -> FailureObliviousServiceType:
    """The network service type with partition-aware delivery.

    Identical to :func:`repro.services.network.network_type` except that
    ``delta1`` consults the fault state carried in ``value``: a message
    crossing the active cut is lost (the same "vanish" outcome as an
    unknown target).  With no cut ever active — in particular under the
    zero budget — ``delta1`` behaves exactly like the benign type.
    ``strict`` rejects sends to unknown targets instead of letting them
    vanish (the :class:`~repro.services.network.Channel` convention).
    """
    endpoints = tuple(endpoints)
    messages = tuple(messages)
    cuts = budget.resolved_cuts(endpoints)

    def delta1(invocation, endpoint, value) -> Sequence[ServiceResult]:
        if not (isinstance(invocation, tuple) and invocation[0] == "send"):
            raise ValueError(f"network: unknown invocation {invocation!r}")
        _, target, message = invocation
        if target not in endpoints:
            if strict:
                raise ValueError(
                    f"network: send to unknown target {target!r} "
                    f"(endpoints are {endpoints!r})"
                )
            # Sends to unknown targets vanish (still a legal, total step).
            return (({}, value),)
        active = _active_cut_index(value)
        if active is not None:
            cut = cuts[active]
            if (endpoint in cut) != (target in cut):
                # The message crosses the active cut and is lost.
                return (({}, value),)
        return (({target: (deliver(endpoint, message),)}, value),)

    def delta2(global_task, value) -> Sequence[ServiceResult]:
        raise ValueError("network has no global tasks")

    def member(invocation) -> bool:
        if not (
            isinstance(invocation, tuple)
            and len(invocation) == 3
            and invocation[0] == "send"
        ):
            return False
        return invocation[1] in endpoints if strict else True

    return FailureObliviousServiceType(
        name="faulty-network",
        initial_values=(budget.initial_val(endpoints),),
        invocations=tuple(
            ("send", target, message) for target in endpoints for message in messages
        ),
        responses=tuple(
            deliver(sender, message) for sender in endpoints for message in messages
        ),
        global_tasks=(),
        delta1=delta1,
        delta2=delta2,
        contains_invocation=member,
    )


class FaultyNetwork(CanonicalFailureObliviousService):
    """An f-resilient FIFO network with a budgeted fault adversary.

    A drop-in replacement for
    :class:`~repro.services.network.AsynchronousNetwork`: same service
    interface, same per-endpoint buffers, same dummy/resilience
    machinery, plus one additional internal task per fault instance the
    :class:`FaultBudget` allows.  Fault state (remaining budgets, the
    active cut) lives in ``val`` as a normalized tuple, so exploration
    fingerprints and symmetry machinery need no special cases, and the
    zero-budget instance has ``val == ()`` and no fault tasks —
    literally the benign network's automaton.
    """

    def __init__(
        self,
        service_id: Hashable,
        endpoints: Sequence,
        messages: Sequence,
        resilience: int,
        budget: FaultBudget | None = None,
        name: str | None = None,
        *,
        strict: bool = False,
    ) -> None:
        endpoints = tuple(endpoints)
        self.budget = budget if budget is not None else FaultBudget()
        self.cuts = self.budget.resolved_cuts(endpoints)
        super().__init__(
            service_type=faulty_network_type(
                endpoints, messages, self.budget, strict=strict
            ),
            endpoints=endpoints,
            resilience=resilience,
            service_id=service_id,
            name=name if name is not None else f"net[{service_id}]",
        )
        self._fault_tasks = self._build_fault_tasks()
        self._tasks_cache = tuple(super().tasks()) + self._fault_tasks

    # -- fault task construction (static, one task per fault instance) ---------

    def _build_fault_tasks(self) -> tuple[Task, ...]:
        tasks: list[Task] = []
        budget = self.budget
        for sender in self.endpoints:
            for receiver in self.endpoints:
                if sender == receiver:
                    continue
                if _per_link(budget.drop, sender, receiver) > 0:
                    tasks.append(Task(self.name, ("fault", DROP, sender, receiver)))
                if _per_link(budget.duplicate, sender, receiver) > 0:
                    tasks.append(Task(self.name, ("fault", DUP, sender, receiver)))
                if _per_link(budget.skew, sender, receiver) > 0:
                    tasks.append(Task(self.name, ("fault", SKEW, sender, receiver)))
        for receiver in self.endpoints:
            if _per_receiver(budget.reorder, receiver) > 0:
                for slot in range(budget.reorder_window):
                    tasks.append(Task(self.name, ("fault", REORDER, receiver, slot)))
        if budget.partitions > 0:
            for index in range(len(self.cuts)):
                tasks.append(Task(self.name, ("fault", PART, index)))
            tasks.append(Task(self.name, ("fault", "heal")))
        return tuple(tasks)

    def tasks(self) -> Sequence[Task]:
        return self._tasks_cache

    def is_internal(self, action: Action) -> bool:
        if action.kind == "fault":
            return bool(action.args) and action.args[0] == self.service_id
        return super().is_internal(action)

    def enabled(self, state: State, task: Task) -> Sequence[Transition]:
        name = task.name
        if isinstance(name, tuple) and name and name[0] == "fault":
            return self._enabled_fault(state, name)
        return super().enabled(state, task)

    # -- fault transitions (each deterministic: at most one outcome) ----------

    def _enabled_fault(self, state: ServiceState, name: tuple) -> list[Transition]:
        kind = name[1]
        if kind == DROP:
            return self._fault_drop(state, name[2], name[3])
        if kind == DUP:
            return self._fault_duplicate(state, name[2], name[3])
        if kind == SKEW:
            return self._fault_skew(state, name[2], name[3])
        if kind == REORDER:
            return self._fault_reorder(state, name[2], name[3])
        if kind == PART:
            return self._fault_partition(state, name[2])
        if kind == "heal":
            return self._fault_heal(state)
        raise KeyError(f"unknown fault task {name}")

    def _first_from(self, buffer: tuple, sender) -> int | None:
        """Index of the oldest in-flight message from ``sender``."""
        for index, entry in enumerate(buffer):
            if entry[0] == "deliver" and entry[1] == sender:
                return index
        return None

    def _with_resp_buffer(
        self, state: ServiceState, receiver, buffer: tuple, val
    ) -> ServiceState:
        position = self.endpoint_position(receiver)
        resp_buffers = list(state.resp_buffers)
        resp_buffers[position] = buffer
        return ServiceState(
            val=val,
            inv_buffers=state.inv_buffers,
            resp_buffers=tuple(resp_buffers),
            failed=state.failed,
        )

    def _fault_action(self, *args) -> Action:
        return Action("fault", (self.service_id,) + args)

    def _fault_drop(self, state: ServiceState, sender, receiver) -> list[Transition]:
        if _remaining(state.val, (DROP, sender, receiver)) == 0:
            return []
        buffer = self.resp_buffer(state, receiver)
        index = self._first_from(buffer, sender)
        if index is None:
            return []
        post = self._with_resp_buffer(
            state,
            receiver,
            buffer[:index] + buffer[index + 1 :],
            _spend(state.val, (DROP, sender, receiver)),
        )
        return [Transition(self._fault_action(DROP, sender, receiver), post)]

    def _fault_duplicate(
        self, state: ServiceState, sender, receiver
    ) -> list[Transition]:
        if _remaining(state.val, (DUP, sender, receiver)) == 0:
            return []
        buffer = self.resp_buffer(state, receiver)
        index = self._first_from(buffer, sender)
        if index is None:
            return []
        post = self._with_resp_buffer(
            state,
            receiver,
            buffer[: index + 1] + buffer[index:],
            _spend(state.val, (DUP, sender, receiver)),
        )
        return [Transition(self._fault_action(DUP, sender, receiver), post)]

    def _fault_skew(self, state: ServiceState, sender, receiver) -> list[Transition]:
        if _remaining(state.val, (SKEW, sender, receiver)) == 0:
            return []
        buffer = self.resp_buffer(state, receiver)
        index = self._first_from(buffer, sender)
        if index is None:
            return []
        # Delay as far as per-pair FIFO allows: just before the next
        # message from the same sender (or the end of the buffer).
        limit = len(buffer)
        for later in range(index + 1, len(buffer)):
            if buffer[later][0] == "deliver" and buffer[later][1] == sender:
                limit = later
                break
        target_position = limit - 1
        if target_position <= index:
            return []  # delaying would change nothing
        entries = list(buffer)
        entry = entries.pop(index)
        entries.insert(target_position, entry)
        post = self._with_resp_buffer(
            state,
            receiver,
            tuple(entries),
            _spend(state.val, (SKEW, sender, receiver)),
        )
        return [Transition(self._fault_action(SKEW, sender, receiver), post)]

    def _fault_reorder(self, state: ServiceState, receiver, slot) -> list[Transition]:
        if _remaining(state.val, (REORDER, receiver)) == 0:
            return []
        buffer = self.resp_buffer(state, receiver)
        if slot + 1 >= len(buffer):
            return []
        first, second = buffer[slot], buffer[slot + 1]
        if first[1] == second[1]:
            return []  # same sender: swapping would break per-pair FIFO
        entries = list(buffer)
        entries[slot], entries[slot + 1] = second, first
        post = self._with_resp_buffer(
            state,
            receiver,
            tuple(entries),
            _spend(state.val, (REORDER, receiver)),
        )
        return [Transition(self._fault_action(REORDER, receiver, slot), post)]

    def _fault_partition(self, state: ServiceState, cut_index) -> list[Transition]:
        if _remaining(state.val, (PART,)) == 0:
            return []
        if _active_cut_index(state.val) is not None:
            return []  # one cut at a time; heal first
        val = _normalize(_spend(state.val, (PART,)) + ((CUT, cut_index),))
        post = ServiceState(
            val=val,
            inv_buffers=state.inv_buffers,
            resp_buffers=state.resp_buffers,
            failed=state.failed,
        )
        return [Transition(self._fault_action(PART, cut_index), post)]

    def _fault_heal(self, state: ServiceState) -> list[Transition]:
        active = _active_cut_index(state.val)
        if active is None:
            return []
        val = _normalize(tuple(e for e in state.val if e[0] != CUT))
        post = ServiceState(
            val=val,
            inv_buffers=state.inv_buffers,
            resp_buffers=state.resp_buffers,
            failed=state.failed,
        )
        return [Transition(self._fault_action("heal"), post)]


class FaultyChannel(FaultyNetwork):
    """A single directed FIFO channel with a fault adversary.

    The faulty counterpart of :class:`~repro.services.network.Channel`:
    two endpoints, strict target checking (sends to unknown targets are
    rejected, not dropped — the endpoint set of a channel is static),
    and the full :class:`FaultBudget` machinery on the one link.
    """

    def __init__(
        self,
        sender: Hashable,
        receiver: Hashable,
        messages: Sequence,
        resilience: int = 1,
        budget: FaultBudget | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(
            service_id=channel_id(sender, receiver),
            endpoints=(sender, receiver),
            messages=messages,
            resilience=resilience,
            budget=budget,
            name=name if name is not None else f"chan[{sender}->{receiver}]",
            strict=True,
        )
