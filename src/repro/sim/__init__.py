"""repro.sim — deterministic network-fault simulation and fuzzing.

The modeled network of :mod:`repro.services.network` is perfectly
reliable; the paper's adversary — and any real network — is not.  This
subsystem closes that gap in three layers:

* :mod:`repro.sim.faults` — the :class:`FaultyNetwork` family: message
  drop, duplication, cross-pair reorder, bounded clock skew, and
  partition/heal as **explicit, explorable transitions** with per-link
  :class:`FaultBudget` budgets.  Each fault instance is its own
  deterministic task, so exhaustive exploration, reduction, and the
  parallel engine compose unchanged; the zero budget is state-for-state
  the benign network.
* :mod:`repro.sim.harness` — FoundationDB-style deterministic
  simulation: :func:`simulate` drives any system plus fault schedule
  from a single seed, and every run is replayable **bit-for-bit**
  through the existing :class:`~repro.ioa.scheduler.ScriptedScheduler`
  (:func:`replay`, :func:`verify_replay`, JSON replay scripts).
* :mod:`repro.sim.fuzz` — the adversary fuzzer: :func:`fuzz` generates
  candidate protocols (:class:`CandidateSpec`, including the seeded
  :class:`RandomTableProcess` family) and fault schedules, checks the
  consensus axioms each run, **shrinks** failing schedules to minimal
  counterexamples via delta debugging, and emits them as replay
  scripts; :func:`probe_with_adversary` escalates a spec to the full
  bivalence-preserving adversary pipeline.

CLI: ``repro sim`` (single seeded run / ``--replay`` verification) and
``repro fuzz`` (campaigns).  See ``docs/simulation.md``.
"""

from .faults import FaultBudget, FaultyChannel, FaultyNetwork, faulty_network_type
from .fuzz import (
    FAMILIES,
    CandidateSpec,
    Counterexample,
    FuzzReport,
    RandomTableProcess,
    build_candidate,
    fuzz,
    probe_with_adversary,
    random_spec,
    shrink_counterexample,
)
from .harness import (
    ReplayMismatch,
    SimConfig,
    SimResult,
    SimScheduler,
    balanced_proposals,
    is_quiescent,
    load_script,
    replay,
    save_script,
    script_document,
    simulate,
    verify_replay,
)

__all__ = [
    "FAMILIES",
    "CandidateSpec",
    "Counterexample",
    "FaultBudget",
    "FaultyChannel",
    "FaultyNetwork",
    "FuzzReport",
    "RandomTableProcess",
    "ReplayMismatch",
    "SimConfig",
    "SimResult",
    "SimScheduler",
    "balanced_proposals",
    "build_candidate",
    "faulty_network_type",
    "fuzz",
    "is_quiescent",
    "load_script",
    "probe_with_adversary",
    "random_spec",
    "replay",
    "save_script",
    "script_document",
    "shrink_counterexample",
    "simulate",
    "verify_replay",
]
