"""Command-line entry point: ``python -m repro <command>``.

Exposes the headline reproductions without writing any code:

* ``refute``  — run the full Theorem 2/9 adversary pipeline against a
  built-in candidate and print the witness, stage by stage;
* ``trace``   — run the same pipeline with the tracer on, writing a JSONL
  event trace replayable via :mod:`repro.obs.replay`;
* ``stats``   — run the pipeline with metrics on and print the registry;
* ``obs``     — inspect traces offline: ``obs summarize`` (per-span
  latency table), ``obs flame`` (folded stacks for flamegraph.pl),
  ``obs diff`` (compare two traces), ``obs chrome`` (Chrome
  ``trace_event`` JSON for chrome://tracing / Perfetto), and ``obs
  prom`` (Prometheus textfile from a trace or a metrics snapshot);
* ``boost-kset`` — run the Section 4 possibility construction;
* ``boost-fd``   — run the Section 6.3 possibility construction;
* ``paxos``      — run the shared-memory Paxos extension;
* ``serve``      — run the long-lived verdict server: ``POST /jobs``
  analysis requests over HTTP/JSON, answered from a fingerprint-keyed
  verdict cache when possible, scheduled fairly across tenants
  otherwise (see :mod:`repro.serve` and ``docs/serve.md``);
* ``sim``        — one seeded deterministic simulation of a candidate
  over a :class:`~repro.sim.FaultyNetwork`, or ``sim --replay FILE``:
  bit-for-bit verification of a saved counterexample script (exit 1 on
  divergence);
* ``fuzz``       — seeded adversary fuzzing: random candidates and
  fault schedules, safety/liveness checks each run, failing schedules
  shrunk to minimal replay scripts (see ``docs/simulation.md``);
* ``runs``       — inspect the run ledger: every pipeline, sim, fuzz,
  serve, and benchmark run registers a durable run id under
  ``--runs-dir`` (default ``$REPRO_RUNS_DIR``, else ``.repro/runs``);
  ``runs list``/``show`` reconstruct finished or crashed runs, ``runs
  tail`` follows a live run's heartbeat from another process, ``runs
  diff`` compares two runs' counters, and ``runs gc`` compacts the
  ledger (see ``docs/observability.md``);
* ``list``       — list the built-in candidates and constructions.

``repro --version`` prints the package version (also reported by the
server's ``/healthz`` and embedded in every JSON error document).

Exit codes for ``refute``/``trace``/``stats``: 0 when the candidate was
refuted, 1 when it was not, 2 when the exploration budget
(``--max-states`` / ``--deadline``) was exhausted before the pipeline
finished — in which case the checkpoint path and the exact resume
command are printed, so the run is continuable, not just dead.

The pipeline commands drive :class:`repro.engine.ExplorationEngine`
directly: ``--workers N`` parallelizes the explorations, ``--deadline
SECONDS`` bounds each stage's wall clock, ``--max-worker-restarts N``
tunes crash recovery, and ``--checkpoint DIR`` / ``--resume DIR``
snapshot interrupted explorations and continue them on the next
invocation instead of starting over.  ``--store URI`` keeps packed
states in a disk-backed :class:`~repro.engine.StateStore`
(``sqlite:/path`` or ``mmap:/path``; default from
``$REPRO_ENGINE_STORE``) with streaming delta checkpoints, and
``--rss-limit-mb MB`` enforces an address-space ceiling on the run.  ``--json`` replaces the narrative
with one machine-readable document built from the results' shared
``summary()``/``to_json()`` protocol.
"""

from __future__ import annotations

import argparse
import os
import sys

from .serve.wire import CANDIDATES, WireError, build_system, package_version


def _build_candidate(name: str, n: int, resilience: int):
    try:
        return build_system(name, n, resilience)
    except WireError as error:
        raise SystemExit(error.detail) from None


def _balanced_proposals(system) -> dict:
    """Alternating 0/1 proposals (the probe/bench convention)."""
    return {endpoint: index % 2 for index, endpoint in enumerate(system.process_ids)}


def _print_exploration_summary(metrics, elapsed: float) -> None:
    counters = metrics.snapshot()["counters"]
    states = counters.get("explore.states", 0)
    transitions = counters.get("explore.transitions", 0)
    print(
        f"Explored {states} states / {transitions} transitions "
        f"in {elapsed:.3f}s"
    )


def _apply_rss_limit(limit_mb: int, say) -> None:
    """Enforce ``limit_mb`` MiB of address space via ``setrlimit``.

    ``RLIMIT_RSS`` is a no-op on modern Linux kernels, so the ceiling is
    applied to ``RLIMIT_AS`` instead — a slight over-approximation of
    resident size (it counts mapped-but-untouched pages), which is the
    conservative direction for a memory ceiling.  Failure to apply the
    limit (unsupported platform, cap below current usage) warns and
    continues rather than killing the run: the engine still records
    ``peak_rss_kb`` against ``rss_limit_mb`` in its report.
    """
    try:
        import resource

        limit = limit_mb << 20
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ImportError, ValueError, OSError) as error:
        print(
            f"warning: could not enforce --rss-limit-mb {limit_mb}: {error}",
            file=sys.stderr,
        )
    else:
        say(f"RSS ceiling: {limit_mb} MB (RLIMIT_AS)")


def _open_run_handle(
    args: argparse.Namespace,
    kind: str,
    instance: str,
    *,
    budget: dict | None = None,
    store: str | None = None,
    workers: int = 1,
    artifacts: dict | None = None,
):
    """Mint a run-ledger record for this invocation, or ``None``.

    The directory comes from ``--runs-dir``, then ``$REPRO_RUNS_DIR``,
    then ``.repro/runs``; the disabled spellings (``none``, ``off``,
    ``0``, empty) return ``None`` and the command runs ledger-less.  An
    unwritable ledger warns and degrades rather than failing the run.
    """
    from .obs.ledger import RunLedger, resolve_runs_dir

    directory = resolve_runs_dir(getattr(args, "runs_dir", None))
    if directory is None:
        return None
    try:
        return RunLedger(directory).open(
            kind,
            instance,
            budget=budget,
            store=store,
            workers=workers,
            artifacts=artifacts,
        )
    except OSError as error:
        print(f"warning: run ledger unavailable: {error}", file=sys.stderr)
        return None


def _ledger_counters(metrics) -> dict:
    """The numeric counters a terminal run record carries."""
    counters = metrics.snapshot().get("counters", {})
    return {
        name: value
        for name, value in counters.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _run_pipeline(args: argparse.Namespace, tracer, metrics, run_artifacts=None):
    """Shared refute/trace/stats driver.

    Returns ``(verdict|None, exit_code, document|None)``: ``verdict=None``
    with exit code 2 means the budget was exhausted (the metrics registry
    still holds the work done so far); ``document`` is the
    JSON-serializable report built from the shared ``summary()``/
    ``to_json()`` protocol when ``--json`` was given, else ``None``.

    Unless the ledger is disabled the run registers a run id
    (``repro runs show <id>``), threads it through the tracer into every
    trace event, and appends a terminal record — ``completed`` or
    ``exhausted`` — when the pipeline ends; a crash leaves the record
    non-terminal, which readers derive as ``interrupted``.
    """
    from .analysis import ExplorationBudget, format_verdict, refute_candidate
    from .engine import Budget, ExplorationEngine, ReductionConfig
    from .obs import timed

    emit_json = bool(getattr(args, "json", False))
    say = (lambda *a, **k: None) if emit_json else print
    system = _build_candidate(args.candidate, args.n, args.resilience)
    say(f"Candidate: {args.candidate} (n={args.n}, f={args.resilience})")
    reduction = ReductionConfig.from_name(getattr(args, "reduction", "none"))
    if getattr(args, "audit_reduction", False):
        if not reduction.enabled:
            raise SystemExit("--audit-reduction requires --reduction other than none")
        from .engine import audit_reduction

        root = system.initialization(_balanced_proposals(system)).final_state
        comparison = audit_reduction(
            system, root, reduction, max_states=args.max_states
        )
        say(
            f"Reduction audit OK: full {comparison.full_states} states -> "
            f"reduced {comparison.reduced_states} "
            f"(ratio {comparison.state_ratio:.2f}x), verdicts identical"
        )
    checkpoint_dir = args.resume if args.resume is not None else args.checkpoint
    rss_limit_mb = getattr(args, "rss_limit_mb", None)
    if rss_limit_mb is not None:
        _apply_rss_limit(rss_limit_mb, say)
    budget = Budget(max_states=args.max_states, deadline_seconds=args.deadline)
    artifacts = dict(run_artifacts or {})
    if checkpoint_dir is not None:
        # In the opening record, not finish(): an interrupted run must
        # still tell `repro runs show` how to resume.
        artifacts["checkpoint_dir"] = str(checkpoint_dir)
        artifacts["resume"] = (
            f"repro {args.command} {args.candidate} -n {args.n} "
            f"-f {args.resilience} --resume {checkpoint_dir}"
        )
    run = _open_run_handle(
        args,
        getattr(args, "command", "refute") or "refute",
        f"{args.candidate}(n={args.n},f={args.resilience})",
        budget=budget.to_json(),
        store=getattr(args, "store", None),
        workers=args.workers,
        artifacts=artifacts,
    )
    if run is not None:
        if getattr(tracer, "enabled", False):
            # Every trace event this run emits carries the run id; the
            # NULL tracer is a shared singleton and stays untouched.
            tracer.run_id = run.run_id
        say(f"Run id: {run.run_id}")
    engine = ExplorationEngine(
        workers=args.workers,
        budget=budget,
        store=getattr(args, "store", None),
        checkpoint_dir=checkpoint_dir,
        resume=args.resume is not None,
        rss_limit_mb=rss_limit_mb,
        max_worker_restarts=getattr(args, "max_worker_restarts", None),
        progress=True if getattr(args, "progress", False) else None,
        run=run,
    )
    document = (
        {"candidate": {"name": args.candidate, "n": args.n, "f": args.resilience}}
        if emit_json
        else None
    )
    if document is not None and run is not None:
        document["run_id"] = run.run_id
    if getattr(args, "seed", None) is not None:
        from .analysis import random_decision_probe

        probe = random_decision_probe(
            system, seed=args.seed, tracer=tracer, metrics=metrics
        )
        say(probe.summary())
        if document is not None:
            document["probe"] = probe.to_json()
    with timed(metrics, "pipeline.wall_seconds") as timer:
        try:
            verdict = refute_candidate(
                system,
                tracer=tracer,
                metrics=metrics,
                engine=engine,
                reduction=reduction if reduction.enabled else None,
            )
        except ExplorationBudget as budget:
            say(f"Exploration budget exhausted: {budget}")
            checkpoint = getattr(budget, "checkpoint", None)
            if checkpoint is not None:
                say(f"Checkpoint: {checkpoint}")
                say(f"Resume:     {getattr(budget, 'resume_command', None)}")
            if run is not None:
                report = engine.last_report
                resume_command = getattr(budget, "resume_command", None)
                if resume_command is not None:
                    run.add_artifact("resume", resume_command)
                run.finish(
                    "exhausted",
                    counters=_ledger_counters(metrics),
                    phases={} if report is None else report.phase_seconds,
                    peak_rss_kb=0 if report is None else report.peak_rss_kb,
                    error=str(budget),
                )
            if not emit_json:
                _print_exploration_summary(metrics, timer.elapsed)
            if document is not None:
                document["verdict"] = None
                document["error"] = (
                    budget.to_json()
                    if hasattr(budget, "to_json")
                    else {"error": "budget_exhausted", "detail": str(budget)}
                )
                document["engine"] = (
                    None
                    if engine.last_report is None
                    else engine.last_report.to_json()
                )
            return None, 2, document
    report = engine.last_report
    if run is not None:
        run.finish(
            "completed",
            verdict=verdict.to_json(),
            counters=_ledger_counters(metrics),
            phases={} if report is None else report.phase_seconds,
            peak_rss_kb=0 if report is None else report.peak_rss_kb,
        )
    if document is not None:
        document["verdict"] = verdict.to_json()
        document["engine"] = None if report is None else report.to_json()
    else:
        print(format_verdict(verdict))
        _print_exploration_summary(metrics, timer.elapsed)
        if report is not None and (
            report.worker_failures or report.quarantined or report.degraded
        ):
            print(report.summary())
    return verdict, 0 if verdict.refuted else 1, document


def _emit_document(document) -> None:
    import json

    if document is not None:
        print(json.dumps(document, indent=2, sort_keys=True))


def cmd_refute(args: argparse.Namespace) -> int:
    from .obs import NULL_TRACER, MetricsRegistry

    _, code, document = _run_pipeline(args, NULL_TRACER, MetricsRegistry())
    _emit_document(document)
    return code


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import JsonlSink, MetricsRegistry, Tracer, use_tracer

    output = args.output or f"{args.candidate}-trace.jsonl"
    metrics = MetricsRegistry()
    with JsonlSink(output) as sink:
        tracer = Tracer(sink)
        # Install process-wide too, so layers without a tracer parameter
        # (service input dispatch) report into the same trace.
        with use_tracer(tracer):
            _, code, document = _run_pipeline(
                args, tracer, metrics, run_artifacts={"trace": output}
            )
        if document is not None:
            document["trace"] = {"events": sink.events_written, "path": output}
        else:
            print(f"Trace: {sink.events_written} events -> {output}")
    _emit_document(document)
    return code


def cmd_stats(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry, NULL_TRACER, render_metrics_table

    if args.compare_reduction:
        from .engine import ReductionConfig, compare_reduction

        reduction = ReductionConfig.from_name(args.reduction)
        if not reduction.enabled:
            reduction = ReductionConfig.from_name("full")
        system = _build_candidate(args.candidate, args.n, args.resilience)
        root = system.initialization(_balanced_proposals(system)).final_state
        comparison = compare_reduction(
            system, root, reduction, max_states=args.max_states
        )
        print(f"Candidate: {args.candidate} (n={args.n}, f={args.resilience})")
        print(
            f"Symmetry group: {comparison.group_size} permutations "
            f"({comparison.stabilizer_size} fixing the balanced inputs)"
        )
        print(
            f"Full:    {comparison.full_states} states / "
            f"{comparison.full_transitions} transitions"
        )
        print(
            f"Reduced: {comparison.reduced_states} states / "
            f"{comparison.reduced_transitions} transitions"
        )
        print(
            f"Ratio:   {comparison.state_ratio:.2f}x states, "
            f"{comparison.transition_ratio:.2f}x transitions "
            f"(orbit hits {comparison.orbit_hits}, "
            f"pruned tasks {comparison.pruned_tasks})"
        )
        return 0
    metrics = MetricsRegistry()
    _, code, document = _run_pipeline(args, NULL_TRACER, metrics)
    if document is not None:
        document["metrics"] = metrics.snapshot()
        _emit_document(document)
    else:
        print()
        print(render_metrics_table(metrics.snapshot()))
    return code


def cmd_boost_kset(args: argparse.Namespace) -> int:
    from .analysis import run_consensus_round
    from .protocols import classic_parameters, kset_boost_system
    from .system import upfront_failures

    params = classic_parameters(args.n)
    print(
        f"Section 4: n={params.n}, k={params.k} from "
        f"{params.groups} x {params.n_prime}-process consensus "
        f"(f'={params.inner_resilience} -> f={params.boosted_resilience})"
    )
    proposals = {endpoint: endpoint for endpoint in range(params.n)}
    for failures in range(params.n):
        check = run_consensus_round(
            kset_boost_system(params),
            proposals,
            failure_schedule=upfront_failures(list(range(failures))),
            k=params.k,
            max_steps=200_000,
        )
        distinct = len(set(check.decisions.values()))
        print(f"  {failures} failures: ok={check.ok} distinct={distinct}")
        if not check.ok:
            return 1
    return 0


def cmd_boost_fd(args: argparse.Namespace) -> int:
    from .analysis import run_consensus_round
    from .protocols import consensus_via_pairwise_fds_system
    from .system import upfront_failures

    n = args.n
    print(f"Section 6.3: consensus for any f from 1-resilient pair detectors (n={n})")
    for failures in range(n):
        check = run_consensus_round(
            consensus_via_pairwise_fds_system(n),
            {i: i % 2 for i in range(n)},
            failure_schedule=upfront_failures(list(range(failures))),
            max_steps=300_000,
        )
        print(f"  {failures} failures: ok={check.ok} decisions={check.decisions}")
        if not check.ok:
            return 1
    return 0


def cmd_paxos(args: argparse.Namespace) -> int:
    from .analysis import run_consensus_round
    from .protocols.shared_paxos import shared_paxos_system
    from .system import upfront_failures

    n = args.n
    print(f"Shared-memory Paxos + Omega (n={n})")
    for failures in range(n):
        check = run_consensus_round(
            shared_paxos_system(n),
            {i: i % 2 for i in range(n)},
            failure_schedule=upfront_failures(list(range(failures))),
            max_steps=300_000,
        )
        print(f"  {failures} failures: ok={check.ok} decisions={check.decisions}")
        if not check.ok:
            return 1
    return 0


def _write_text(text: str, output: str | None) -> None:
    """Print ``text``, or write it to ``output`` and report the path."""
    if output is None:
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        with open(output, "w", encoding="utf-8") as stream:
            stream.write(text if text.endswith("\n") else text + "\n")
        print(f"Wrote {output}")


def _load_trace_spans(path: str):
    from .obs import assemble_spans
    from .obs.replay import load_events

    return assemble_spans(load_events(path))


def cmd_obs_summarize(args: argparse.Namespace) -> int:
    from .obs import render_span_table, summarize_spans

    profile = summarize_spans(_load_trace_spans(args.trace))
    if args.json:
        import json

        print(json.dumps(profile, indent=2, sort_keys=True))
    else:
        print(render_span_table(profile))
    return 0


def cmd_obs_flame(args: argparse.Namespace) -> int:
    from .obs import folded_stacks, render_folded_stacks

    folded = folded_stacks(_load_trace_spans(args.trace))
    _write_text(render_folded_stacks(folded), args.output)
    return 0


def cmd_obs_diff(args: argparse.Namespace) -> int:
    from .obs import diff_span_profiles, render_span_diff, summarize_spans

    rows = diff_span_profiles(
        summarize_spans(_load_trace_spans(args.before)),
        summarize_spans(_load_trace_spans(args.after)),
    )
    if args.json:
        import json

        print(json.dumps(rows, indent=2))
    else:
        print(render_span_diff(rows))
    return 0


def cmd_obs_chrome(args: argparse.Namespace) -> int:
    from .obs import write_chrome_trace
    from .obs.replay import load_events

    output = args.output or f"{args.trace}.chrome.json"
    count = write_chrome_trace(load_events(args.trace), output)
    print(f"Wrote {count} trace events -> {output}")
    return 0


def _load_snapshot(path: str) -> tuple:
    """A metrics snapshot from either input kind ``obs prom`` accepts.

    A JSON document (one object: a raw ``snapshot()`` dict, or a ``stats
    --json`` report carrying one under ``"metrics"``) is used directly; a
    JSONL event trace is reduced via
    :func:`~repro.obs.export.snapshot_from_trace`.  Returns ``(snapshot,
    run_ids)`` where ``run_ids`` are the distinct run-ledger ids the
    trace events carried (empty for snapshot documents).
    """
    import json

    from .obs import snapshot_from_trace
    from .obs.replay import load_events

    with open(path, "r", encoding="utf-8") as stream:
        head = stream.read(1)
        if not head:
            raise SystemExit(f"{path}: empty input")
        stream.seek(0)
        if head == "{":
            try:
                document = json.load(stream)
            except json.JSONDecodeError:
                document = None
            if isinstance(document, dict) and not document.get("kind"):
                snapshot = document.get("metrics", document)
                if not isinstance(snapshot, dict):
                    raise SystemExit(f"{path}: no metrics snapshot in document")
                return snapshot, set()
    events = load_events(path)
    run_ids = {event.run for event in events if event.run}
    return snapshot_from_trace(events), run_ids


def cmd_obs_prom(args: argparse.Namespace) -> int:
    from .obs import prometheus_textfile

    labels = {}
    for pair in getattr(args, "label", None) or ():
        name, sep, value = pair.partition("=")
        if not sep or not name.strip():
            raise SystemExit(f"bad --label {pair!r}; expected name=value")
        labels[name.strip()] = value.strip()
    snapshot, run_ids = _load_snapshot(args.input)
    if "run" not in labels and len(run_ids) == 1:
        # A single-run trace labels itself: every series gets run=<id>.
        labels["run"] = next(iter(run_ids))
    _write_text(
        prometheus_textfile(snapshot, labels=labels or None), args.output
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .obs import JsonlSink, MetricsRegistry, Tracer
    from .serve import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        fleet=args.fleet,
        max_engine_workers=args.engine_workers,
        data_dir=args.data_dir,
        cache_capacity=args.cache_size,
        max_queue_depth=args.max_queue_depth,
        max_tenant_depth=args.max_tenant_depth,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        checkpoint_interval=args.checkpoint_interval,
        runs_dir=args.runs_dir,
        metrics=MetricsRegistry(),
    )
    if args.trace is not None:
        with JsonlSink(args.trace) as sink:
            config.tracer = Tracer(sink)
            return serve_forever(config)
    return serve_forever(config)


def _parse_faults(text: str | None):
    """``drop=1,duplicate=2`` -> :class:`~repro.sim.FaultBudget`."""
    from .sim import FaultBudget

    if not text:
        return FaultBudget()
    document = {}
    for pair in text.split(","):
        name, _, value = pair.partition("=")
        try:
            document[name.strip()] = int(value)
        except ValueError:
            raise SystemExit(
                f"bad --faults entry {pair!r}; expected name=int"
            ) from None
    try:
        return FaultBudget.from_json(document)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _sim_spec(args: argparse.Namespace):
    from .sim import CandidateSpec

    budget = _parse_faults(args.faults)
    return CandidateSpec(
        family=args.family,
        n=args.n,
        resilience=args.resilience,
        faults=tuple(sorted(budget.to_json().items())),
        gen_seed=args.gen_seed,
    )


def cmd_sim(args: argparse.Namespace) -> int:
    import json

    from .sim import (
        CandidateSpec,
        ReplayMismatch,
        SimConfig,
        build_candidate,
        load_script,
        save_script,
        script_document,
        simulate,
        verify_replay,
    )

    if args.replay is not None:
        document = load_script(args.replay)
        spec = CandidateSpec.from_json(document.get("candidate", {}))
        system = build_candidate(spec)
        try:
            result = verify_replay(system, document)
        except ReplayMismatch as mismatch:
            print(f"REPLAY MISMATCH: {mismatch}")
            return 1
        if args.json:
            print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        else:
            print(f"Replay OK: {spec.describe()}")
            print(result.summary())
        return 0
    if args.family is None:
        raise SystemExit("repro sim: give a candidate family or --replay FILE")
    spec = _sim_spec(args)
    system = build_candidate(spec)
    config = SimConfig(
        seed=args.seed, max_steps=args.steps, fault_rate=args.fault_rate
    )
    run = _open_run_handle(
        args,
        "sim",
        f"{spec.describe()} seed={args.seed}",
        budget={"max_steps": args.steps},
    )
    result = simulate(system, config, run=run)
    if args.output is not None:
        save_script(args.output, script_document(spec.to_json(), result))
        if run is not None:
            run.add_artifact("script", args.output)
    if run is not None:
        run.finish(
            "violation" if result.violations else "completed",
            counters={
                "sim.steps": result.steps,
                "sim.faults": result.fault_count,
                "sim.violations": len(result.violations),
            },
        )
    if args.json:
        document = result.to_json()
        document["candidate"] = spec.to_json()
        if run is not None:
            document["run_id"] = run.run_id
        if args.output is not None:
            document["script"] = args.output
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(f"Candidate: {spec.describe()}")
        print(result.summary())
        if args.output is not None:
            print(f"Replay script: {args.output}")
            print(f"Replay:        repro sim --replay {args.output}")
    return 1 if result.violations else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from .obs import NULL_TRACER, JsonlSink, MetricsRegistry, Tracer
    from .sim import FAMILIES, save_script, fuzz

    specs = None
    families = tuple(args.family) if args.family else FAMILIES
    if args.faults:
        if len(families) != 1:
            raise SystemExit("--faults pins one spec; give exactly one --family")
        args.gen_seed = getattr(args, "gen_seed", None)
        args.family = families[0]
        specs = [_sim_spec(args)]
    metrics = MetricsRegistry()
    run = _open_run_handle(
        args,
        "fuzz",
        f"campaigns={args.campaigns} runs={args.runs} seed={args.seed}",
        budget={"campaigns": args.campaigns, "runs": args.runs},
        artifacts=None if args.trace is None else {"trace": args.trace},
    )

    def campaign(tracer):
        return fuzz(
            specs,
            campaigns=args.campaigns,
            runs=args.runs,
            seed=args.seed,
            max_steps=args.steps,
            fault_rate=args.fault_rate,
            crash_budget=args.crash_budget,
            families=families,
            stop_after=None if args.stop_after == 0 else args.stop_after,
            tracer=tracer,
            metrics=metrics,
            run=run,
        )

    if args.trace is not None:
        with JsonlSink(args.trace) as sink:
            report = campaign(
                Tracer(sink, run_id=None if run is None else run.run_id)
            )
    else:
        report = campaign(NULL_TRACER)
    saved = None
    if args.output is not None and report.found:
        save_script(args.output, report.found[0].to_document())
        saved = args.output
        if run is not None:
            run.add_artifact("script", saved)
    if run is not None:
        run.finish(
            "violation" if report.found else "completed",
            counters=_ledger_counters(metrics),
        )
    if args.json:
        document = report.to_json()
        if run is not None:
            document["run_id"] = run.run_id
        if saved is not None:
            document["script"] = saved
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(report.summary())
        if saved is not None:
            print(f"Replay script: {saved}")
            print(f"Replay:        repro sim --replay {saved}")
    if args.expect_violation and not report.found:
        print("expected a violation; none found", file=sys.stderr)
        return 1
    return 0


def _runs_ledger(args: argparse.Namespace):
    """The :class:`~repro.obs.ledger.RunLedger` a ``runs`` command reads."""
    from .obs.ledger import RunLedger, resolve_runs_dir

    directory = resolve_runs_dir(getattr(args, "runs_dir", None))
    if directory is None:
        raise SystemExit(
            "run ledger disabled; give --runs-dir DIR or set $REPRO_RUNS_DIR"
        )
    return RunLedger(directory)


def _find_run(ledger, run_id: str):
    try:
        return ledger.find(run_id)
    except KeyError as error:
        raise SystemExit(str(error)) from None


def _format_wall(record) -> str:
    if record.finished_at is None:
        return "-"
    return f"{max(0.0, record.finished_at - record.started_at):.1f}s"


def cmd_runs_list(args: argparse.Namespace) -> int:
    import json
    import time

    ledger = _runs_ledger(args)
    records = sorted(ledger.latest().values(), key=lambda r: r.started_at)
    if args.kind:
        records = [record for record in records if record.kind == args.kind]
    if args.last:
        records = records[-args.last :]
    rows = [(record, ledger.status_of(record)) for record in records]
    if args.json:
        print(
            json.dumps(
                [
                    {**record.to_json(), "status": status}
                    for record, status in rows
                ],
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    if not rows:
        print(f"No runs in {ledger.path}")
        return 0
    print(f"{'RUN':34}  {'STATUS':12}  {'KIND':8}  {'WALL':>8}  INSTANCE")
    for record, status in rows:
        started = time.strftime(
            "%H:%M:%S", time.localtime(record.started_at)
        )
        instance = record.instance or "-"
        print(
            f"{record.run_id:34}  {status:12}  {record.kind:8}  "
            f"{_format_wall(record):>8}  {instance}  (started {started})"
        )
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    import json
    import time

    from .obs.ledger import INTERRUPTED, RUNNING

    ledger = _runs_ledger(args)
    record = _find_run(ledger, args.run_id)
    heartbeat = ledger.read_heartbeat(record.run_id)
    status = ledger.status_of(record, heartbeat)
    if args.json:
        print(
            json.dumps(
                {
                    "record": record.to_json(),
                    "status": status,
                    "heartbeat": heartbeat,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    derived = " (derived: no terminal record)" if status != record.status else ""
    print(f"Run:      {record.run_id}")
    print(f"Status:   {status}{derived}")
    instance = f"  {record.instance}" if record.instance else ""
    print(f"Kind:     {record.kind}{instance}")
    print(
        "Started:  "
        + time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(record.started_at))
        + f"  (pid {record.pid}, {record.workers} worker(s))"
    )
    if record.finished_at is not None:
        print(f"Wall:     {_format_wall(record)}")
    if record.store:
        print(f"Store:    {record.store}")
    if record.budget:
        print(f"Budget:   {json.dumps(record.budget, sort_keys=True)}")
    if record.verdict is not None:
        print(f"Verdict:  {json.dumps(record.verdict, sort_keys=True)}")
    if record.peak_rss_kb:
        print(f"Peak RSS: {record.peak_rss_kb / 1024:.0f} MB")
    for title, table in (
        ("Counters", record.counters),
        ("Phases", record.phases),
        ("Artifacts", record.artifacts),
        ("Links", record.links),
    ):
        if table:
            print(f"{title}:")
            for name in sorted(table):
                print(f"  {name:28} {table[name]}")
    if status == RUNNING and heartbeat is not None:
        print("Live:     " + _render_heartbeat_line(heartbeat))
    if status == INTERRUPTED:
        resume = record.artifacts.get("resume")
        if resume:
            print(f"Resume:   {resume}")
    if record.error:
        print(f"Error:    {record.error}")
    return 0


def _render_heartbeat_line(heartbeat: dict) -> str:
    """One human line from a heartbeat document (tail/show share it)."""
    parts = []
    for key, label, fmt in (
        ("states", "states", "{:.0f}"),
        ("states_per_sec", "states/s", "{:g}"),
        ("frontier", "frontier", "{:.0f}"),
        ("flush_ms", "flush", "{:.1f}ms"),
        ("spilled", "spilled", "{:.0f}"),
        ("campaigns", "campaigns", "{:.0f}"),
        ("schedules", "schedules", "{:.0f}"),
        ("violations", "violations", "{:.0f}"),
        ("elapsed", "elapsed", "{:.1f}s"),
    ):
        value = heartbeat.get(key)
        if value is None:
            continue
        try:
            parts.append(f"{label} " + fmt.format(value))
        except (TypeError, ValueError):
            parts.append(f"{label} {value}")
    return "  ".join(parts) if parts else "(no counters yet)"


def cmd_runs_tail(args: argparse.Namespace) -> int:
    import json
    import time

    from .obs.ledger import RUNNING

    ledger = _runs_ledger(args)
    record = _find_run(ledger, args.run_id)
    run_id = record.run_id
    deadline = (
        None if args.duration is None else time.monotonic() + args.duration
    )
    last_beat = None
    while True:
        try:
            record = ledger.find(run_id)
        except KeyError:  # gc'd mid-tail; keep the record we have
            pass
        heartbeat = ledger.read_heartbeat(run_id)
        status = ledger.status_of(record, heartbeat)
        if heartbeat is not None and heartbeat.get("t") != last_beat:
            last_beat = heartbeat.get("t")
            if args.json:
                print(json.dumps(heartbeat, sort_keys=True), flush=True)
            else:
                print(
                    f"{run_id}  {status:12} "
                    + _render_heartbeat_line(heartbeat),
                    flush=True,
                )
        if status != RUNNING:
            if args.json:
                print(
                    json.dumps({"run": run_id, "status": status}), flush=True
                )
            else:
                print(f"{run_id}: {status}", flush=True)
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        time.sleep(args.interval)


def cmd_runs_diff(args: argparse.Namespace) -> int:
    import json

    from .obs.ledger import diff_runs

    ledger = _runs_ledger(args)
    before = _find_run(ledger, args.before)
    after = _find_run(ledger, args.after)
    rows = diff_runs(before, after)
    if args.json:
        print(
            json.dumps(
                {
                    "before": before.run_id,
                    "after": after.run_id,
                    "rows": rows,
                },
                indent=2,
            )
        )
        return 0
    print(f"before: {before.run_id} ({before.status}) {before.instance}")
    print(f"after:  {after.run_id} ({after.status}) {after.instance}")
    print(f"{'METRIC':40} {'BEFORE':>14} {'AFTER':>14} {'DELTA':>12} {'RATIO':>8}")
    for row in rows:
        def cell(value):
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
        print(
            f"{row['metric']:40} {cell(row['before']):>14} "
            f"{cell(row['after']):>14} {cell(row['delta']):>12} {ratio:>8}"
        )
    return 0


def cmd_runs_gc(args: argparse.Namespace) -> int:
    ledger = _runs_ledger(args)
    summary = ledger.gc(keep=args.keep)
    print(
        f"{summary['runs']} runs kept, {summary['dropped']} dropped, "
        f"{summary['finalized_interrupted']} finalized interrupted, "
        f"{summary['pruned_heartbeats']} heartbeats pruned"
    )
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("Candidates for `refute`:")
    for name, blurb in CANDIDATES.items():
        print(f"  {name:12} {blurb}")
    print("\nConstructions: boost-kset (Section 4), boost-fd (Section 6.3), paxos")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of 'The Impossibility of "
        "Boosting Distributed Service Resilience'",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {package_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_runs_dir_argument(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--runs-dir",
            default=None,
            metavar="DIR",
            help="run-ledger directory (default $REPRO_RUNS_DIR, else "
            ".repro/runs; 'none' disables the ledger)",
        )

    def add_pipeline_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("candidate", choices=sorted(CANDIDATES))
        subparser.add_argument("-n", type=int, default=3, help="number of processes")
        subparser.add_argument(
            "-f", "--resilience", type=int, default=1, help="service resilience f"
        )
        subparser.add_argument("--max-states", type=int, default=600_000)
        subparser.add_argument(
            "--seed",
            type=int,
            default=None,
            help="also run a seeded random-fair decision probe first",
        )
        subparser.add_argument(
            "--workers",
            type=int,
            default=int(os.environ.get("REPRO_ENGINE_WORKERS", "1")),
            help="parallel exploration workers (1 = in-process; "
            "default from $REPRO_ENGINE_WORKERS)",
        )
        subparser.add_argument(
            "--store",
            default=os.environ.get("REPRO_ENGINE_STORE") or None,
            metavar="URI",
            help="state-store backend for explorations: 'memory' (default), "
            "'sqlite:/path' or 'mmap:/path' to hold packed states on disk "
            "(10^6+-state runs under a bounded RSS; default from "
            "$REPRO_ENGINE_STORE)",
        )
        subparser.add_argument(
            "--rss-limit-mb",
            type=int,
            default=None,
            metavar="MB",
            help="enforce an address-space ceiling (RLIMIT_AS) of MB "
            "mebibytes on this process before exploring; the engine "
            "report records peak RSS against the ceiling",
        )
        subparser.add_argument(
            "--max-worker-restarts",
            type=int,
            default=None,
            metavar="N",
            help="respawn a crashed worker up to N times before "
            "redistributing its partition (default from "
            "$REPRO_ENGINE_MAX_RESTARTS, else 3)",
        )
        subparser.add_argument(
            "--json",
            action="store_true",
            help="suppress the narrative and print one JSON document "
            "built from the results' to_json() payloads (also on the "
            "budget-exhausted exit-2 path)",
        )
        subparser.add_argument(
            "--deadline",
            type=float,
            default=None,
            help="wall-clock budget in seconds per pipeline stage",
        )
        subparser.add_argument(
            "--checkpoint",
            metavar="DIR",
            default=None,
            help="snapshot exploration progress into DIR",
        )
        subparser.add_argument(
            "--resume",
            metavar="DIR",
            default=None,
            help="resume interrupted explorations from DIR (implies --checkpoint DIR)",
        )
        subparser.add_argument(
            "--reduction",
            choices=["none", "symmetry", "por", "full"],
            default="none",
            help="state-space reduction: symmetry quotient, ample-set "
            "partial order, or both (POR is dropped automatically for "
            "the hook-search stage; see docs/reduction.md)",
        )
        subparser.add_argument(
            "--audit-reduction",
            action="store_true",
            help="before the pipeline, explore BOTH the full and reduced "
            "graphs from a balanced initialization and assert identical "
            "verdicts (slow; verification mode)",
        )
        subparser.add_argument(
            "--progress",
            action="store_true",
            help="render a live states/s progress line on stderr while "
            "explorations run (also enabled by $REPRO_PROGRESS)",
        )
        add_runs_dir_argument(subparser)

    refute = subparsers.add_parser("refute", help="run the adversary pipeline")
    add_pipeline_arguments(refute)
    refute.set_defaults(handler=cmd_refute)

    trace = subparsers.add_parser(
        "trace", help="run the adversary pipeline with a JSONL event trace"
    )
    add_pipeline_arguments(trace)
    trace.add_argument(
        "-o",
        "--output",
        default=None,
        help="trace path (default: <candidate>-trace.jsonl)",
    )
    trace.set_defaults(handler=cmd_trace)

    stats = subparsers.add_parser(
        "stats", help="run the adversary pipeline and print metrics"
    )
    add_pipeline_arguments(stats)
    stats.add_argument(
        "--compare-reduction",
        action="store_true",
        help="skip the pipeline: explore the full and reduced graphs "
        "from a balanced initialization and print the size ratio",
    )
    stats.set_defaults(handler=cmd_stats)

    obs = subparsers.add_parser(
        "obs", help="inspect JSONL traces: span profiles, flamegraphs, exporters"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    summarize = obs_sub.add_parser(
        "summarize", help="per-span-kind latency table from a trace"
    )
    summarize.add_argument("trace", help="JSONL trace path")
    summarize.add_argument(
        "--json", action="store_true", help="print the profile as JSON"
    )
    summarize.set_defaults(handler=cmd_obs_summarize)

    flame = obs_sub.add_parser(
        "flame", help="folded stacks (flamegraph.pl input) from a trace"
    )
    flame.add_argument("trace", help="JSONL trace path")
    flame.add_argument(
        "-o", "--output", default=None, help="write to file instead of stdout"
    )
    flame.set_defaults(handler=cmd_obs_flame)

    diff = obs_sub.add_parser(
        "diff", help="compare the span profiles of two traces"
    )
    diff.add_argument("before", help="baseline JSONL trace")
    diff.add_argument("after", help="comparison JSONL trace")
    diff.add_argument("--json", action="store_true", help="print rows as JSON")
    diff.set_defaults(handler=cmd_obs_diff)

    chrome = obs_sub.add_parser(
        "chrome",
        help="Chrome trace_event JSON (chrome://tracing, Perfetto) from a trace",
    )
    chrome.add_argument("trace", help="JSONL trace path")
    chrome.add_argument(
        "-o", "--output", default=None, help="output path (default: <trace>.chrome.json)"
    )
    chrome.set_defaults(handler=cmd_obs_chrome)

    prom = obs_sub.add_parser(
        "prom",
        help="Prometheus textfile from a JSONL trace or a metrics snapshot "
        "(raw snapshot JSON or a `stats --json` document)",
    )
    prom.add_argument("input", help="JSONL trace or JSON snapshot path")
    prom.add_argument(
        "-o", "--output", default=None, help="write to file instead of stdout"
    )
    prom.add_argument(
        "--label",
        action="append",
        metavar="NAME=VALUE",
        default=None,
        help="constant label added to every series (repeatable); a "
        "single-run trace adds run=<run_id> automatically",
    )
    prom.set_defaults(handler=cmd_obs_prom)

    kset = subparsers.add_parser("boost-kset", help="Section 4 construction")
    kset.add_argument("-n", type=int, default=4, help="number of processes (even)")
    kset.set_defaults(handler=cmd_boost_kset)

    fd = subparsers.add_parser("boost-fd", help="Section 6.3 construction")
    fd.add_argument("-n", type=int, default=3)
    fd.set_defaults(handler=cmd_boost_fd)

    paxos = subparsers.add_parser("paxos", help="shared-memory Paxos extension")
    paxos.add_argument("-n", type=int, default=3)
    paxos.set_defaults(handler=cmd_paxos)

    serve = subparsers.add_parser(
        "serve",
        help="run the verdict server: HTTP/JSON analysis jobs with "
        "caching, fair queueing, and load shedding (see docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765, help="0 = ephemeral")
    serve.add_argument(
        "--fleet",
        type=int,
        default=2,
        help="concurrent analysis jobs (0 = accept-only; jobs queue but never run)",
    )
    serve.add_argument(
        "--engine-workers",
        type=int,
        default=2,
        metavar="N",
        help="cap on exploration workers per job (a job's own `workers` "
        "request is clamped to this)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="journal + verdict cache + engine checkpoints live here; "
        "restart with the same DIR to resume in-flight jobs "
        "(default: no persistence)",
    )
    serve.add_argument("--cache-size", type=int, default=1024, metavar="KEYS")
    serve.add_argument("--max-queue-depth", type=int, default=64)
    serve.add_argument("--max-tenant-depth", type=int, default=16)
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=5.0,
        help="per-tenant submissions per second (token-bucket refill)",
    )
    serve.add_argument(
        "--tenant-burst", type=float, default=10.0, help="per-tenant burst capacity"
    )
    serve.add_argument("--checkpoint-interval", type=int, default=20_000)
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL event trace of every engine run to PATH",
    )
    serve.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="run-ledger directory for dispatched jobs (default "
        "<data-dir>/runs; 'none' disables)",
    )
    serve.set_defaults(handler=cmd_serve)

    sim = subparsers.add_parser(
        "sim",
        help="one seeded deterministic simulation, or --replay verification "
        "of a saved counterexample script (see docs/simulation.md)",
    )
    sim.add_argument(
        "family",
        nargs="?",
        choices=["exchange", "arbiter", "random-table"],
        help="candidate family to simulate (omit with --replay)",
    )
    sim.add_argument("--seed", type=int, default=0, help="schedule seed")
    sim.add_argument("--steps", type=int, default=400, help="step bound")
    sim.add_argument("-n", type=int, default=2, help="number of processes")
    sim.add_argument(
        "-f", "--resilience", type=int, default=0, help="network resilience f"
    )
    sim.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault budget, e.g. drop=1,duplicate=2,partitions=1",
    )
    sim.add_argument(
        "--fault-rate",
        type=float,
        default=0.3,
        help="probability the scheduler prefers a fault task when one is enabled",
    )
    sim.add_argument(
        "--gen-seed",
        type=int,
        default=None,
        help="random-table family: the seed its decision tables are drawn from",
    )
    sim.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="verify a saved replay script bit-for-bit instead of simulating",
    )
    sim.add_argument(
        "-o", "--output", default=None, help="save the run as a replay script"
    )
    sim.add_argument("--json", action="store_true", help="print the result as JSON")
    add_runs_dir_argument(sim)
    sim.set_defaults(handler=cmd_sim)

    fuzzer = subparsers.add_parser(
        "fuzz",
        help="seeded adversary fuzzing with counterexample shrinking "
        "(see docs/simulation.md)",
    )
    fuzzer.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzzer.add_argument(
        "--campaigns", type=int, default=8, help="random candidate specs to draw"
    )
    fuzzer.add_argument(
        "--runs", type=int, default=8, help="seeded schedules per candidate"
    )
    fuzzer.add_argument("--steps", type=int, default=300, help="step bound per run")
    fuzzer.add_argument(
        "--family",
        action="append",
        choices=["exchange", "arbiter", "random-table"],
        default=None,
        help="restrict the families drawn (repeatable)",
    )
    fuzzer.add_argument("-n", type=int, default=2, help="processes for a pinned spec")
    fuzzer.add_argument(
        "-f", "--resilience", type=int, default=0, help="resilience for a pinned spec"
    )
    fuzzer.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="pin ONE spec (requires exactly one --family): fault budget "
        "like drop=1,duplicate=2",
    )
    fuzzer.add_argument(
        "--fault-rate",
        type=float,
        default=0.3,
        help="per-step probability of preferring an enabled fault task",
    )
    fuzzer.add_argument(
        "--crash-budget",
        type=int,
        default=0,
        help="random process crashes injected per schedule",
    )
    fuzzer.add_argument(
        "--stop-after",
        type=int,
        default=1,
        help="stop after this many counterexamples (0 = never)",
    )
    fuzzer.add_argument(
        "--expect-violation",
        action="store_true",
        help="exit 1 if the campaign finds no counterexample (CI mode)",
    )
    fuzzer.add_argument(
        "-o",
        "--output",
        default=None,
        help="save the first counterexample as a replay script",
    )
    fuzzer.add_argument("--json", action="store_true", help="print the report as JSON")
    fuzzer.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL event trace of the campaign to PATH "
        "(fuzz_candidate / sim_run / shrink_step events; feeds "
        "`repro obs summarize` and `repro obs prom`)",
    )
    add_runs_dir_argument(fuzzer)
    fuzzer.set_defaults(handler=cmd_fuzz)

    runs = subparsers.add_parser(
        "runs",
        help="inspect the run ledger: list, show, tail, diff, gc "
        "(see docs/observability.md)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_sub.add_parser("list", help="every run, newest last")
    add_runs_dir_argument(runs_list)
    runs_list.add_argument(
        "--kind",
        default=None,
        help="filter by run kind (refute, trace, stats, serve, sim, "
        "fuzz, bench, ...)",
    )
    runs_list.add_argument(
        "-n",
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="show only the newest N runs",
    )
    runs_list.add_argument("--json", action="store_true")
    runs_list.set_defaults(handler=cmd_runs_list)

    runs_show = runs_sub.add_parser(
        "show", help="one run's full record (unique id prefixes accepted)"
    )
    add_runs_dir_argument(runs_show)
    runs_show.add_argument("run_id")
    runs_show.add_argument("--json", action="store_true")
    runs_show.set_defaults(handler=cmd_runs_show)

    runs_tail = runs_sub.add_parser(
        "tail",
        help="follow a live run's heartbeat from another process; exits "
        "when the run reaches a terminal (or derived-interrupted) status",
    )
    add_runs_dir_argument(runs_tail)
    runs_tail.add_argument("run_id")
    runs_tail.add_argument(
        "--interval", type=float, default=0.5, help="poll interval seconds"
    )
    runs_tail.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after SECONDS even if the run is still live",
    )
    runs_tail.add_argument(
        "--json", action="store_true", help="print raw heartbeat JSON lines"
    )
    runs_tail.set_defaults(handler=cmd_runs_tail)

    runs_diff = runs_sub.add_parser(
        "diff", help="compare two runs' counters and phase breakdowns"
    )
    add_runs_dir_argument(runs_diff)
    runs_diff.add_argument("before")
    runs_diff.add_argument("after")
    runs_diff.add_argument("--json", action="store_true")
    runs_diff.set_defaults(handler=cmd_runs_diff)

    runs_gc = runs_sub.add_parser(
        "gc",
        help="compact the ledger: finalize derived-interrupted runs, "
        "prune stale heartbeats, optionally drop old terminal runs",
    )
    add_runs_dir_argument(runs_gc)
    runs_gc.add_argument(
        "--keep",
        type=int,
        default=None,
        metavar="N",
        help="drop all but the newest N terminal runs",
    )
    runs_gc.set_defaults(handler=cmd_runs_gc)

    lister = subparsers.add_parser("list", help="list built-ins")
    lister.set_defaults(handler=cmd_list)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
