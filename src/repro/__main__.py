"""Command-line entry point: ``python -m repro <command>``.

Exposes the headline reproductions without writing any code:

* ``refute``  — run the full Theorem 2/9 adversary pipeline against a
  built-in candidate and print the witness, stage by stage;
* ``boost-kset`` — run the Section 4 possibility construction;
* ``boost-fd``   — run the Section 6.3 possibility construction;
* ``paxos``      — run the shared-memory Paxos extension;
* ``list``       — list the built-in candidates and constructions.
"""

from __future__ import annotations

import argparse
import sys


CANDIDATES = {
    "delegation": "n processes over one f-resilient consensus object (Thm 2)",
    "tob": "n processes over one f-resilient totally ordered broadcast (Thm 9)",
    "last-writer": "2 processes, registers only, decide-the-last-write (Thm 2, register case)",
}


def _build_candidate(name: str, n: int, resilience: int):
    from .protocols import (
        delegation_consensus_system,
        last_writer_register_system,
        tob_delegation_system,
    )

    if name == "delegation":
        return delegation_consensus_system(n, resilience)
    if name == "tob":
        return tob_delegation_system(n, resilience)
    if name == "last-writer":
        return last_writer_register_system()
    raise SystemExit(f"unknown candidate {name!r}; try: {', '.join(CANDIDATES)}")


def cmd_refute(args: argparse.Namespace) -> int:
    from .analysis import format_verdict, refute_candidate

    system = _build_candidate(args.candidate, args.n, args.resilience)
    print(f"Candidate: {args.candidate} (n={args.n}, f={args.resilience})")
    verdict = refute_candidate(system, max_states=args.max_states)
    print(format_verdict(verdict))
    return 0 if verdict.refuted else 1


def cmd_boost_kset(args: argparse.Namespace) -> int:
    from .analysis import run_consensus_round
    from .protocols import classic_parameters, kset_boost_system
    from .system import upfront_failures

    params = classic_parameters(args.n)
    print(
        f"Section 4: n={params.n}, k={params.k} from "
        f"{params.groups} x {params.n_prime}-process consensus "
        f"(f'={params.inner_resilience} -> f={params.boosted_resilience})"
    )
    proposals = {endpoint: endpoint for endpoint in range(params.n)}
    for failures in range(params.n):
        check = run_consensus_round(
            kset_boost_system(params),
            proposals,
            failure_schedule=upfront_failures(list(range(failures))),
            k=params.k,
            max_steps=200_000,
        )
        distinct = len(set(check.decisions.values()))
        print(f"  {failures} failures: ok={check.ok} distinct={distinct}")
        if not check.ok:
            return 1
    return 0


def cmd_boost_fd(args: argparse.Namespace) -> int:
    from .analysis import run_consensus_round
    from .protocols import consensus_via_pairwise_fds_system
    from .system import upfront_failures

    n = args.n
    print(f"Section 6.3: consensus for any f from 1-resilient pair detectors (n={n})")
    for failures in range(n):
        check = run_consensus_round(
            consensus_via_pairwise_fds_system(n),
            {i: i % 2 for i in range(n)},
            failure_schedule=upfront_failures(list(range(failures))),
            max_steps=300_000,
        )
        print(f"  {failures} failures: ok={check.ok} decisions={check.decisions}")
        if not check.ok:
            return 1
    return 0


def cmd_paxos(args: argparse.Namespace) -> int:
    from .analysis import run_consensus_round
    from .protocols.shared_paxos import shared_paxos_system
    from .system import upfront_failures

    n = args.n
    print(f"Shared-memory Paxos + Omega (n={n})")
    for failures in range(n):
        check = run_consensus_round(
            shared_paxos_system(n),
            {i: i % 2 for i in range(n)},
            failure_schedule=upfront_failures(list(range(failures))),
            max_steps=300_000,
        )
        print(f"  {failures} failures: ok={check.ok} decisions={check.decisions}")
        if not check.ok:
            return 1
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("Candidates for `refute`:")
    for name, blurb in CANDIDATES.items():
        print(f"  {name:12} {blurb}")
    print("\nConstructions: boost-kset (Section 4), boost-fd (Section 6.3), paxos")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of 'The Impossibility of "
        "Boosting Distributed Service Resilience'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    refute = subparsers.add_parser("refute", help="run the adversary pipeline")
    refute.add_argument("candidate", choices=sorted(CANDIDATES))
    refute.add_argument("-n", type=int, default=3, help="number of processes")
    refute.add_argument(
        "-f", "--resilience", type=int, default=1, help="service resilience f"
    )
    refute.add_argument("--max-states", type=int, default=600_000)
    refute.set_defaults(handler=cmd_refute)

    kset = subparsers.add_parser("boost-kset", help="Section 4 construction")
    kset.add_argument("-n", type=int, default=4, help="number of processes (even)")
    kset.set_defaults(handler=cmd_boost_kset)

    fd = subparsers.add_parser("boost-fd", help="Section 6.3 construction")
    fd.add_argument("-n", type=int, default=3)
    fd.set_defaults(handler=cmd_boost_fd)

    paxos = subparsers.add_parser("paxos", help="shared-memory Paxos extension")
    paxos.add_argument("-n", type=int, default=3)
    paxos.set_defaults(handler=cmd_paxos)

    lister = subparsers.add_parser("list", help="list built-ins")
    lister.set_defaults(handler=cmd_list)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
