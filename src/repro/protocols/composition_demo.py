"""Composition of implementations: 2-set consensus from test&set.

Section 2.1.4's closing remark: "an implemented service can be seen as a
canonical service in a higher-level implementation."  This module stacks
two constructions from this library to exercise exactly that:

* bottom layer — the consensus-number-2 construction of
  :mod:`repro.protocols.tas_consensus`: 2-process binary consensus from
  one test&set object plus proposal registers;
* top layer — the Section 4 boosting construction with ``n' = 2``,
  ``k' = 1``: partition ``n = 4`` processes into two pairs, give each
  pair a consensus "service", decide what the pair-consensus returns.

Because processes interact only with services, composing implementations
means inlining the bottom protocol into the top layer's processes: each
process runs the test&set sub-protocol within its own pair and treats
the outcome as the response of a pair-consensus service.  The result is
**wait-free 4-process 2-set consensus built from test&set objects and
registers** — services of consensus number 2 — which is consistent with
the Herlihy hierarchy (2-set consensus for 4 processes splits into
2-process agreements) and is a strict resilience boost in the Section 4
sense (each bottom object serves 2 processes wait-free, i.e. f' = 1,
while the composed system tolerates f = 3).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..ioa.actions import Action, decide, invoke
from ..services.atomic import wait_free_atomic_object
from ..services.register import CanonicalRegister, read, write
from ..system.process import Process
from ..system.system import DistributedSystem
from ..types.registry import test_and_set_type

#: Register sentinel for "no proposal written yet".
UNWRITTEN = "unwritten"


def pair_of(endpoint: int) -> int:
    """Group index of an endpoint (pairs are {0,1}, {2,3}, ...)."""
    return endpoint // 2


def peer_of(endpoint: int) -> int:
    """The other member of an endpoint's pair."""
    return endpoint ^ 1


def pair_tas_id(group: int) -> tuple:
    """The test&set object of a pair."""
    return ("pair-tas", group)


def pair_proposal_id(endpoint: int) -> tuple:
    """The proposal register of one endpoint within its pair."""
    return ("pair-proposal", endpoint)


class PairedTASProcess(Process):
    """Runs the test&set consensus protocol inside its pair, then decides.

    The inlined bottom layer is phase-for-phase the protocol of
    :class:`repro.protocols.tas_consensus.TASConsensusProcess`; the top
    layer is plain Section 4 delegation (decide whatever the pair
    agreement produced).
    """

    def __init__(self, endpoint: int, proposals: Sequence[Hashable]) -> None:
        group = pair_of(endpoint)
        connections = (
            pair_tas_id(group),
            pair_proposal_id(endpoint),
            pair_proposal_id(peer_of(endpoint)),
        )
        super().__init__(endpoint, connections=connections, input_values=proposals)
        self.group = group

    def initial_locals(self):
        return ("idle", None)

    def handle_input(self, locals_value, action: Action):
        phase, proposal = locals_value
        if action.kind == "init" and phase == "idle":
            return ("publish", action.args[1])
        if action.kind != "respond":
            return locals_value
        service, _, response = action.args
        if phase == "await-write" and service == pair_proposal_id(self.endpoint):
            return ("contend", proposal)
        if phase == "await-tas" and service == pair_tas_id(self.group):
            if isinstance(response, tuple) and response[0] == "old":
                if response[1] == 0:
                    return ("resolve", proposal)
                return ("fetch-peer", proposal)
        if phase == "await-peer" and service == pair_proposal_id(
            peer_of(self.endpoint)
        ):
            if isinstance(response, tuple) and response[0] == "value":
                return ("resolve", response[1])
        return locals_value

    def next_action(self, locals_value):
        phase, proposal = locals_value
        if phase == "publish":
            return (
                invoke(
                    pair_proposal_id(self.endpoint), self.endpoint, write(proposal)
                ),
                ("await-write", proposal),
            )
        if phase == "contend":
            return (
                invoke(pair_tas_id(self.group), self.endpoint, ("test_and_set",)),
                ("await-tas", proposal),
            )
        if phase == "fetch-peer":
            return (
                invoke(
                    pair_proposal_id(peer_of(self.endpoint)), self.endpoint, read()
                ),
                ("await-peer", proposal),
            )
        if phase == "resolve":
            return decide(self.endpoint, proposal), ("done", proposal)
        return None, locals_value


def kset_from_tas_system(
    n: int = 4, proposals: Sequence[Hashable] | None = None
) -> DistributedSystem:
    """Wait-free n-process (n/2)-set consensus from test&set + registers.

    For ``n = 4`` this is 2-set consensus: each pair agrees internally
    through its own test&set object, so at most ``n/2`` distinct values
    are decided overall, under any number of crashes.
    """
    if n % 2 != 0:
        raise ValueError("n must be even (pairs)")
    if proposals is None:
        proposals = tuple(range(n))
    endpoints = tuple(range(n))
    services = [
        wait_free_atomic_object(
            test_and_set_type(), (2 * g, 2 * g + 1), service_id=pair_tas_id(g)
        )
        for g in range(n // 2)
    ]
    registers = [
        CanonicalRegister(
            pair_proposal_id(endpoint),
            endpoints=(endpoint, peer_of(endpoint)),
            values=(UNWRITTEN,) + tuple(proposals),
            initial=UNWRITTEN,
        )
        for endpoint in endpoints
    ]
    processes = [PairedTASProcess(endpoint, proposals) for endpoint in endpoints]
    return DistributedSystem(processes, services=services, registers=registers)
