"""Herlihy's universal construction from consensus objects.

The paper motivates its focus on consensus by universality: "an atomic
object of any sequential type can be implemented in a wait-free manner
... using wait-free consensus objects" [Herlihy 1991], which is what
makes the impossibility of boosting consensus resilience the central
question.  This module implements the construction, so the claim is part
of the reproduction rather than background lore:

* a sequence of **wait-free multivalued consensus objects**
  ``cons[0], cons[1], ...`` decides, slot by slot, a single global order
  of operation descriptors;
* each process keeps a **local replica** of the implemented object's
  value; to apply an operation it proposes its descriptor to the next
  undecided slot, folds whatever descriptor *wins* into its replica, and
  moves on, until its own descriptor wins a slot — at which point the
  replica yields its response;
* every process folds every decided slot in the same order, so replicas
  agree and responses are consistent with ONE sequential execution of
  the implemented type: the emitted history is linearizable, which the
  tests verify with the independent Herlihy-Wing checker.

Wait-freedom is inherited from the inner objects: a process never waits
for any other process, only for its own (wait-free) consensus responses.

Descriptors are ``(endpoint, operation_index, invocation)`` triples —
globally unique, so "my descriptor won" is unambiguous.  The construction
uses one consensus object per operation (the finite-instance analogue of
the paper's "infinite number of wait-free consensus objects").
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from ..ioa.actions import Action, invoke
from ..services.atomic import wait_free_atomic_object
from ..system.process import Process
from ..system.system import DistributedSystem
from ..types.registry import consensus_type
from ..types.sequential import SequentialType

#: Virtual service id under which the implemented object's external
#: events (invocations and responses) are emitted, so the whole system's
#: trace can be checked against the implemented sequential type.
UNIVERSAL_ID = "universal"


def slot_id(slot: int) -> tuple:
    """The id of the consensus object deciding linearization slot ``slot``."""
    return ("slot", slot)


def descriptor(endpoint: Hashable, operation_index: int, invocation) -> tuple:
    """The globally unique descriptor of one operation."""
    return (endpoint, operation_index, invocation)


class UniversalProcess(Process):
    """One participant of the universal construction.

    ``script`` is the sequence of invocations this process will apply to
    the implemented object.  The process announces each operation with a
    virtual ``invoke(UNIVERSAL_ID, i, a)`` output, races it through the
    slot consensus objects, and announces the computed response with a
    virtual ``respond(UNIVERSAL_ID, i, b)`` output.
    """

    def __init__(
        self,
        endpoint: Hashable,
        script: Sequence,
        implemented_type: SequentialType,
        total_slots: int,
    ) -> None:
        self.script = tuple(script)
        self.implemented_type = implemented_type
        self.total_slots = total_slots
        connections = [slot_id(slot) for slot in range(total_slots)]
        super().__init__(endpoint, connections=connections, input_values=())

    # Virtual external events of the implemented object.
    def is_output(self, action: Action) -> bool:
        if action.kind in ("invoke", "respond") and action.args[0] == UNIVERSAL_ID:
            return action.args[1] == self.endpoint
        return super().is_output(action)

    # locals = (phase, op_index, slot, replica_value, response?)
    #   phase in {"announce", "propose", "await", "emit", "done"}
    def initial_locals(self):
        initial_value = self.implemented_type.initial_values[0]
        if not self.script:
            return ("done", 0, 0, initial_value, None)
        return ("announce", 0, 0, initial_value, None)

    def handle_input(self, locals_value, action: Action):
        phase, op_index, slot, replica, response = locals_value
        if action.kind != "respond" or phase != "await":
            return locals_value
        service, _, payload = action.args
        if service != slot_id(slot):
            return locals_value
        if not (isinstance(payload, tuple) and payload[0] == "decide"):
            return locals_value
        winner = payload[1]
        # Fold the winning operation into the local replica.
        winner_endpoint, winner_index, winner_invocation = winner
        outcome_response, new_replica = self.implemented_type.apply_deterministic(
            winner_invocation, replica
        )
        own = descriptor(self.endpoint, op_index, self.script[op_index])
        if winner == own:
            # Our operation took effect at this slot: its response is
            # the replica's answer here.
            return ("emit", op_index, slot + 1, new_replica, outcome_response)
        # Someone else's operation occupied the slot: keep racing.
        return ("propose", op_index, slot + 1, new_replica, None)

    def next_action(self, locals_value):
        phase, op_index, slot, replica, response = locals_value
        if phase == "announce":
            invocation = self.script[op_index]
            return (
                Action("invoke", (UNIVERSAL_ID, self.endpoint, invocation)),
                ("propose", op_index, slot, replica, None),
            )
        if phase == "propose":
            if slot >= self.total_slots:
                # Out of slots (cannot happen when total_slots >= total
                # operations, since each slot is won by exactly one op).
                return None, ("done", op_index, slot, replica, None)
            own = descriptor(self.endpoint, op_index, self.script[op_index])
            return (
                invoke(slot_id(slot), self.endpoint, ("init", own)),
                ("await", op_index, slot, replica, None),
            )
        if phase == "emit":
            next_phase = (
                ("announce", op_index + 1, slot, replica, None)
                if op_index + 1 < len(self.script)
                else ("done", op_index + 1, slot, replica, None)
            )
            return (
                Action("respond", (UNIVERSAL_ID, self.endpoint, response)),
                next_phase,
            )
        return None, locals_value

    @staticmethod
    def replica_value(locals_value):
        """The process's current replica of the implemented object."""
        return locals_value[3]


def universal_object_system(
    implemented_type: SequentialType,
    scripts: Mapping[Hashable, Sequence],
) -> DistributedSystem:
    """Build the universal construction for the given per-process scripts.

    ``implemented_type`` must be deterministic (replicas fold decided
    operations independently and must agree).  One wait-free multivalued
    consensus object is created per operation; its proposal universe is
    the set of all descriptors.
    """
    endpoints = tuple(scripts)
    total_slots = sum(len(script) for script in scripts.values())
    descriptors = tuple(
        descriptor(endpoint, index, invocation)
        for endpoint in endpoints
        for index, invocation in enumerate(scripts[endpoint])
    )
    services = [
        wait_free_atomic_object(
            consensus_type(descriptors), endpoints, service_id=slot_id(slot)
        )
        for slot in range(total_slots)
    ]
    processes = [
        UniversalProcess(endpoint, scripts[endpoint], implemented_type, total_slots)
        for endpoint in endpoints
    ]
    return DistributedSystem(processes, services=services)


def implemented_trace(execution) -> list[Action]:
    """The implemented object's external events along an execution."""
    return [
        step.action
        for step in execution.steps
        if step.action.kind in ("invoke", "respond")
        and step.action.args[0] == UNIVERSAL_ID
    ]
