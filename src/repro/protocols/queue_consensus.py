"""Two-process consensus from a shared queue (Herlihy 1991).

A companion to :mod:`repro.protocols.tas_consensus`: FIFO queues also
have consensus number 2.  The classic construction — a queue initialized
with a *winner* token followed by a *loser* token; each process writes
its proposal to its register and dequeues once; whoever draws the winner
token decides its own proposal, the other adopts the winner's.

Together with the test&set variant this exercises two distinct rungs of
the Herlihy hierarchy inside the framework, both verified against the
canonical consensus object via the implementation relation.
"""

from __future__ import annotations

from typing import Hashable

from ..ioa.actions import Action, decide, invoke
from ..services.atomic import CanonicalAtomicObject, wait_free_atomic_object
from ..services.register import CanonicalRegister, read, write
from ..system.process import Process
from ..system.system import DistributedSystem
from ..types.registry import queue_type

#: Virtual id for the implemented consensus object's external events.
IMPLEMENTED_ID = "consensus-from-queue"

WINNER = "winner"
LOSER = "loser"
UNWRITTEN = "unwritten"


def proposal_register_id(endpoint: Hashable) -> tuple:
    """The register holding ``endpoint``'s proposal."""
    return ("qc-proposal", endpoint)


class PreloadedQueue(CanonicalAtomicObject):
    """A wait-free queue whose initial content is [winner, loser]."""

    def __init__(self, endpoints) -> None:
        base_type = queue_type(items=(WINNER, LOSER), capacity=2)
        preloaded = type(base_type)(
            name=base_type.name,
            initial_values=((WINNER, LOSER),),
            invocations=base_type.invocations,
            responses=base_type.responses,
            delta=base_type.delta,
            contains_invocation=base_type.contains_invocation,
        )
        super().__init__(
            sequential_type=preloaded,
            endpoints=endpoints,
            resilience=len(tuple(endpoints)) - 1,
            service_id="queue",
        )


class QueueConsensusProcess(Process):
    """Write proposal, dequeue once, decide by the drawn token."""

    def __init__(self, endpoint: int, peer: int) -> None:
        self.peer = peer
        super().__init__(
            endpoint,
            connections=(
                "queue",
                proposal_register_id(endpoint),
                proposal_register_id(peer),
            ),
            input_values=(0, 1),
        )

    def is_output(self, action: Action) -> bool:
        if action.kind in ("invoke", "respond") and action.args[0] == IMPLEMENTED_ID:
            return action.args[1] == self.endpoint
        return super().is_output(action)

    def initial_locals(self):
        return ("idle", None)

    def handle_input(self, locals_value, action: Action):
        phase, proposal = locals_value
        if action.kind == "init" and phase == "idle":
            return ("announce", action.args[1])
        if action.kind != "respond":
            return locals_value
        service, _, response = action.args
        if phase == "await-write" and service == proposal_register_id(self.endpoint):
            return ("draw", proposal)
        if phase == "await-draw" and service == "queue":
            if isinstance(response, tuple) and response[0] == "item":
                if response[1] == WINNER:
                    return ("resolve", proposal)
                return ("fetch-peer", proposal)
        if phase == "await-peer" and service == proposal_register_id(self.peer):
            if isinstance(response, tuple) and response[0] == "value":
                return ("resolve", response[1])
        return locals_value

    def next_action(self, locals_value):
        phase, proposal = locals_value
        if phase == "announce":
            return (
                Action("invoke", (IMPLEMENTED_ID, self.endpoint, ("init", proposal))),
                ("publish", proposal),
            )
        if phase == "publish":
            return (
                invoke(
                    proposal_register_id(self.endpoint), self.endpoint, write(proposal)
                ),
                ("await-write", proposal),
            )
        if phase == "draw":
            return (
                invoke("queue", self.endpoint, ("deq",)),
                ("await-draw", proposal),
            )
        if phase == "fetch-peer":
            return (
                invoke(proposal_register_id(self.peer), self.endpoint, read()),
                ("await-peer", proposal),
            )
        if phase == "resolve":
            return (
                Action(
                    "respond",
                    (IMPLEMENTED_ID, self.endpoint, ("decide", proposal)),
                ),
                ("conclude", proposal),
            )
        if phase == "conclude":
            return decide(self.endpoint, proposal), ("done", proposal)
        return None, locals_value


def queue_consensus_system() -> DistributedSystem:
    """The full construction: preloaded queue + proposal registers."""
    queue = PreloadedQueue((0, 1))
    registers = [
        CanonicalRegister(
            proposal_register_id(i),
            endpoints=(0, 1),
            values=(UNWRITTEN, 0, 1),
            initial=UNWRITTEN,
        )
        for i in (0, 1)
    ]
    processes = [QueueConsensusProcess(0, 1), QueueConsensusProcess(1, 0)]
    return DistributedSystem(processes, services=[queue], registers=registers)
