"""Two-process consensus from one test&set object and registers.

The paper's Section 2.1.4 notes that the notion of an f-resilient atomic
object "enables composition of implementations: an implemented service
can be seen as a canonical service in a higher-level implementation."
This module exercises that remark with the classic consensus-number-2
construction [Herlihy 1991]: a wait-free test&set object plus two
wait-free registers implement wait-free binary consensus for two
processes —

* process ``i`` writes its proposal into its register, then invokes
  ``test_and_set``;
* the winner (who saw the old value 0) decides its own proposal;
* the loser reads the winner's register and decides what it finds.

The tests verify the construction three ways: the consensus axioms under
exhaustive and randomized schedules with crashes, linearizability of the
emitted history, and the paper's own implementation relation — the
system's external trace is a trace of the canonical wait-free 2-process
consensus object.

Like the boosted failure detector, the implemented object's external
events are emitted under a virtual service id so the whole system has
exactly the canonical object's interface.
"""

from __future__ import annotations

from typing import Hashable

from ..ioa.actions import Action, decide, invoke
from ..services.atomic import wait_free_atomic_object
from ..services.register import CanonicalRegister, read, write
from ..system.process import Process
from ..system.system import DistributedSystem
from ..types.registry import test_and_set_type

#: Virtual id for the implemented consensus object's external events.
IMPLEMENTED_ID = "consensus-from-tas"

#: Register sentinel for "no proposal written yet".
UNWRITTEN = "unwritten"


def proposal_register_id(endpoint: Hashable) -> tuple:
    """The register holding ``endpoint``'s proposal."""
    return ("proposal", endpoint)


class TASConsensusProcess(Process):
    """One of the two participants of the test&set construction."""

    def __init__(self, endpoint: int, peer: int) -> None:
        self.peer = peer
        super().__init__(
            endpoint,
            connections=(
                "tas",
                proposal_register_id(endpoint),
                proposal_register_id(peer),
            ),
            input_values=(0, 1),
        )

    # The implemented object's events are additional outputs.
    def is_output(self, action: Action) -> bool:
        if action.kind in ("invoke", "respond") and action.args[0] == IMPLEMENTED_ID:
            return action.args[1] == self.endpoint
        return super().is_output(action)

    # locals = (phase, proposal)
    def initial_locals(self):
        return ("idle", None)

    def handle_input(self, locals_value, action: Action):
        phase, proposal = locals_value
        if action.kind == "init" and phase == "idle":
            return ("announce", action.args[1])
        if action.kind != "respond":
            return locals_value
        service, _, response = action.args
        if phase == "await-write" and service == proposal_register_id(self.endpoint):
            return ("contend", proposal)
        if phase == "await-tas" and service == "tas":
            if isinstance(response, tuple) and response[0] == "old":
                if response[1] == 0:
                    return ("win", proposal)  # first to the object
                return ("fetch-peer", proposal)
        if phase == "await-peer" and service == proposal_register_id(self.peer):
            if isinstance(response, tuple) and response[0] == "value":
                return ("lose", response[1])
        return locals_value

    def next_action(self, locals_value):
        phase, proposal = locals_value
        if phase == "announce":
            return (
                Action("invoke", (IMPLEMENTED_ID, self.endpoint, ("init", proposal))),
                ("publish", proposal),
            )
        if phase == "publish":
            return (
                invoke(
                    proposal_register_id(self.endpoint),
                    self.endpoint,
                    write(proposal),
                ),
                ("await-write", proposal),
            )
        if phase == "contend":
            return (
                invoke("tas", self.endpoint, ("test_and_set",)),
                ("await-tas", proposal),
            )
        if phase == "fetch-peer":
            return (
                invoke(proposal_register_id(self.peer), self.endpoint, read()),
                ("await-peer", proposal),
            )
        if phase in ("win", "lose"):
            return (
                Action(
                    "respond",
                    (IMPLEMENTED_ID, self.endpoint, ("decide", proposal)),
                ),
                ("conclude", proposal),
            )
        if phase == "conclude":
            return decide(self.endpoint, proposal), ("done", proposal)
        return None, locals_value


def tas_consensus_system() -> DistributedSystem:
    """The full construction: test&set + two proposal registers."""
    tas = wait_free_atomic_object(test_and_set_type(), (0, 1), service_id="tas")
    registers = [
        CanonicalRegister(
            proposal_register_id(i),
            endpoints=(0, 1),
            values=(UNWRITTEN, 0, 1),
            initial=UNWRITTEN,
        )
        for i in (0, 1)
    ]
    processes = [TASConsensusProcess(0, 1), TASConsensusProcess(1, 0)]
    return DistributedSystem(processes, services=[tas], registers=registers)


def implemented_consensus_trace(execution) -> list[Action]:
    """The implemented object's external events along an execution."""
    return [
        step.action
        for step in execution.steps
        if step.action.kind in ("invoke", "respond")
        and step.action.args[0] == IMPLEMENTED_ID
    ]
