"""Wait-free atomic snapshot from registers (Afek et al. 1993).

The complement to the impossibility results: registers alone cannot give
consensus (the FLP instance of Theorem 2), but they CAN give an atomic
*snapshot* — an object whose ``scan`` returns an instantaneous view of
all per-process segments.  Implementing the classic construction inside
the framework demonstrates the positive side of the register frontier,
and gives the linearizability checker a nontrivial workout.

Construction (the unbounded-sequence-number version):

* each process owns one register holding ``(value, seq, embedded_view)``;
* ``update(v)``: perform an (internal) scan, then write
  ``(v, seq + 1, that_view)``;
* ``scan()``: repeat double collects (read every register twice):

  * if the two collects are identical, return the collected values — a
    linearization point lies between the collects;
  * else, any process whose ``seq`` advanced *twice* since the scan
    began performed a complete ``update`` inside this scan, so its
    embedded view is a valid snapshot taken inside the interval: borrow
    it.

Wait-freedom: after at most ``n + 1`` double collects some process has
moved twice, so every operation finishes in a bounded number of its own
steps regardless of crashes.

The implemented object's events are emitted under ``SNAPSHOT_ID`` and
checked against the snapshot sequential type by the Herlihy-Wing
linearizability checker.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Mapping, Sequence

from ..ioa.actions import Action, invoke
from ..services.register import CanonicalRegister, read, write
from ..system.process import Process
from ..system.system import DistributedSystem
from ..types.sequential import SequentialType

#: Virtual service id for the implemented snapshot object's events.
SNAPSHOT_ID = "snapshot"


def segment_register_id(endpoint: Hashable) -> tuple:
    """The register holding ``endpoint``'s snapshot segment."""
    return ("segment", endpoint)


def snapshot_type(
    endpoints: Sequence, values: Sequence, initial: Hashable = 0
) -> SequentialType:
    """The atomic snapshot sequential type.

    The object's value is the vector of per-endpoint segments; ``update``
    at endpoint ``i`` sets component ``i`` (by construction, only ``i``
    invokes its own update); ``scan`` returns the whole vector.
    """
    endpoints = tuple(endpoints)
    index_of = {endpoint: position for position, endpoint in enumerate(endpoints)}

    def delta(invocation, value):
        if isinstance(invocation, tuple) and invocation[0] == "update":
            _, endpoint, new_segment = invocation
            vector = list(value)
            vector[index_of[endpoint]] = new_segment
            return ((("ack",), tuple(vector)),)
        if invocation == ("scan",):
            return ((("view", value), value),)
        raise ValueError(f"snapshot: unknown invocation {invocation!r}")

    return SequentialType(
        name="atomic-snapshot",
        initial_values=(tuple(initial for _ in endpoints),),
        invocations=tuple(
            ("update", endpoint, value)
            for endpoint in endpoints
            for value in values
        )
        + (("scan",),),
        responses=(("ack",),)
        + tuple(
            ("view", vector)
            for vector in _vectors(len(endpoints), tuple(values) + (initial,))
        ),
        delta=delta,
    )


def _vectors(length: int, values: Sequence) -> list[tuple]:
    values = tuple(dict.fromkeys(values))
    if length == 0:
        return [()]
    shorter = _vectors(length - 1, values)
    return [vector + (value,) for vector in shorter for value in values]


@dataclass(frozen=True, slots=True)
class SnapshotLocals:
    """Immutable local state of a snapshot participant."""

    phase: str
    op_index: int
    seq: int
    pending_value: Hashable | None  # value of an in-flight update
    first_collect: tuple | None  # previous collect, or None
    current_collect: tuple  # records gathered this pass
    cursor: int
    baseline: tuple | None  # seqs at scan start (for moved-twice)
    result: tuple | None


#: A collect entry: (value, seq, embedded_view) per endpoint.
INITIAL_RECORD = (0, 0, None)


class SnapshotProcess(Process):
    """One participant running scripted ``update``/``scan`` operations."""

    def __init__(
        self,
        endpoint: Hashable,
        all_endpoints: Sequence[Hashable],
        script: Sequence,
    ) -> None:
        self.all_endpoints = tuple(all_endpoints)
        self.script = tuple(script)
        connections = [segment_register_id(q) for q in self.all_endpoints]
        super().__init__(endpoint, connections=connections, input_values=())

    def is_output(self, action: Action) -> bool:
        if action.kind in ("invoke", "respond") and action.args[0] == SNAPSHOT_ID:
            return action.args[1] == self.endpoint
        return super().is_output(action)

    def initial_locals(self):
        phase = "announce" if self.script else "done"
        return SnapshotLocals(
            phase=phase,
            op_index=0,
            seq=0,
            pending_value=None,
            first_collect=None,
            current_collect=(),
            cursor=0,
            baseline=None,
            result=None,
        )

    # -- scan machinery ----------------------------------------------------------

    def _start_collect(self, locals_value: SnapshotLocals) -> SnapshotLocals:
        return replace(
            locals_value, phase="collect", current_collect=(), cursor=0
        )

    def _finish_double_collect(self, locals_value: SnapshotLocals) -> SnapshotLocals:
        first = locals_value.first_collect
        second = locals_value.current_collect
        if first is not None:
            if tuple(r[1] for r in first) == tuple(r[1] for r in second):
                # Clean double collect: the values are a snapshot.
                return replace(
                    locals_value,
                    phase="scan-done",
                    result=tuple(r[0] for r in second),
                )
            baseline = locals_value.baseline
            for position, record in enumerate(second):
                if record[1] >= baseline[position] + 2 and record[2] is not None:
                    # Moved twice: borrow the embedded view.
                    return replace(
                        locals_value, phase="scan-done", result=record[2]
                    )
        new_baseline = locals_value.baseline
        if new_baseline is None:
            new_baseline = tuple(r[1] for r in second)
        return self._start_collect(
            replace(
                locals_value, first_collect=second, baseline=new_baseline
            )
        )

    # -- inputs --------------------------------------------------------------------

    def handle_input(self, locals_value: SnapshotLocals, action: Action):
        if action.kind != "respond" or locals_value.phase != "await-read":
            if (
                action.kind == "respond"
                and locals_value.phase == "await-write"
                and action.args[0] == segment_register_id(self.endpoint)
            ):
                return replace(locals_value, phase="update-done")
            return locals_value
        expected = segment_register_id(self.all_endpoints[locals_value.cursor])
        service, _, response = action.args
        if service != expected:
            return locals_value
        if not (isinstance(response, tuple) and response[0] == "value"):
            return locals_value
        record = response[1]
        collected = locals_value.current_collect + (record,)
        advanced = replace(
            locals_value,
            phase="collect",
            current_collect=collected,
            cursor=locals_value.cursor + 1,
        )
        if advanced.cursor == len(self.all_endpoints):
            return self._finish_double_collect(advanced)
        return advanced

    # -- locally controlled steps ------------------------------------------------------

    def next_action(self, locals_value: SnapshotLocals):
        phase = locals_value.phase
        if phase == "announce":
            operation = self.script[locals_value.op_index]
            if operation[0] == "update":
                external = ("update", self.endpoint, operation[1])
                pending = operation[1]
            else:
                external = ("scan",)
                pending = None
            return (
                Action("invoke", (SNAPSHOT_ID, self.endpoint, external)),
                self._start_collect(
                    replace(
                        locals_value,
                        pending_value=pending,
                        first_collect=None,
                        baseline=None,
                    )
                ),
            )
        if phase == "collect":
            target = segment_register_id(self.all_endpoints[locals_value.cursor])
            return (
                invoke(target, self.endpoint, read()),
                replace(locals_value, phase="await-read"),
            )
        if phase == "scan-done":
            if locals_value.pending_value is not None:
                # The embedded scan of an update finished: write the record.
                record = (
                    locals_value.pending_value,
                    locals_value.seq + 1,
                    locals_value.result,
                )
                return (
                    invoke(
                        segment_register_id(self.endpoint),
                        self.endpoint,
                        write(record),
                    ),
                    replace(
                        locals_value, phase="await-write", seq=locals_value.seq + 1
                    ),
                )
            return (
                Action(
                    "respond",
                    (SNAPSHOT_ID, self.endpoint, ("view", locals_value.result)),
                ),
                self._next_operation(locals_value),
            )
        if phase == "update-done":
            return (
                Action("respond", (SNAPSHOT_ID, self.endpoint, ("ack",))),
                self._next_operation(locals_value),
            )
        return None, locals_value

    def _next_operation(self, locals_value: SnapshotLocals) -> SnapshotLocals:
        next_index = locals_value.op_index + 1
        return replace(
            locals_value,
            phase="announce" if next_index < len(self.script) else "done",
            op_index=next_index,
            pending_value=None,
            first_collect=None,
            current_collect=(),
            cursor=0,
            baseline=None,
            result=None,
        )


def snapshot_system(
    scripts: Mapping[Hashable, Sequence], values: Sequence = (1, 2, 3)
) -> DistributedSystem:
    """Build the snapshot construction for the given per-process scripts.

    Script entries are ``("update", v)`` or ``("scan",)``.
    """
    endpoints = tuple(scripts)
    registers = [
        CanonicalRegister(
            segment_register_id(endpoint),
            endpoints=endpoints,
            values=(INITIAL_RECORD,),
            initial=INITIAL_RECORD,
            open_domain=True,
        )
        for endpoint in endpoints
    ]
    processes = [
        SnapshotProcess(endpoint, endpoints, scripts[endpoint])
        for endpoint in endpoints
    ]
    return DistributedSystem(processes, registers=registers)


def snapshot_trace(execution) -> list[Action]:
    """The implemented snapshot object's external events."""
    return [
        step.action
        for step in execution.steps
        if step.action.kind in ("invoke", "respond")
        and step.action.args[0] == SNAPSHOT_ID
    ]
