"""Doomed boosting candidates (the targets of Theorems 2 and 9).

The impossibility theorems are universally quantified ("no distributed
system ..."), which no finite amount of computation can enumerate; what
*can* be done — and what this module supplies — is a family of natural
candidate protocols for the adversary pipeline to refute, each failing
in exactly the way the proofs predict:

* :func:`delegation_consensus_system` — every process forwards its input
  to one shared ``f``-resilient consensus object and echoes the answer.
  Perfectly safe; the Fig. 3 construction finds a hook whose Lemma 8
  analysis lands in the shared-service case (Claim 4.1), and the Lemma 7
  attack (fail ``f + 1`` of the object's endpoints) silences the object
  and with it the whole system.
* :func:`tob_delegation_system` — the Theorem 9 analogue: processes
  broadcast their input on an ``f``-resilient totally ordered broadcast
  service and decide on the first delivered value.  Safe by total order;
  killed the same way.
* :func:`min_register_consensus_system` — a registers-only protocol
  (both processes write, then read the other and decide the minimum).
  Solves 0-resilient consensus; one crash before the victim's write
  blocks the survivor forever — the ``f = 0`` (FLP) instance of
  Theorem 2.
* :func:`race_register_consensus_system` — the classic broken
  read-then-write race; included as a *safety*-violating candidate so
  the exhaustive safety checker has a true positive.
* :func:`grouped_delegation_system` — processes split across independent
  wait-free consensus objects; each group agrees internally but groups
  diverge, violating global agreement.  Shows why Section 4's
  construction works for 2-**set**-consensus and cannot give consensus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..ioa.actions import Action, decide, invoke
from ..services.atomic import CanonicalAtomicObject, wait_free_atomic_object
from ..services.broadcast import TotallyOrderedBroadcast, bcast
from ..services.register import CanonicalRegister, read, write
from ..system.process import Process
from ..system.system import DistributedSystem
from ..types.registry import binary_consensus_type

#: Register sentinel for "not yet written".
EMPTY = "empty"


class DelegationProcess(Process):
    """Forward the consensus input to one service; echo its decision.

    The process automaton has four phases: ``idle`` (awaiting input),
    ``propose`` (ready to invoke), ``wait`` (invocation outstanding),
    ``deliver`` (response in hand, ready to decide), ``done``.
    """

    def __init__(self, endpoint: Hashable, service_id: Hashable) -> None:
        super().__init__(
            endpoint, connections=(service_id,), input_values=(0, 1)
        )
        self.target_service = service_id

    def symmetry_key(self):
        # Locals hold only phase/value tuples — never the endpoint — so
        # any two delegates of the same service are interchangeable.
        return ("delegation", self.target_service)

    def initial_locals(self):
        return ("idle",)

    def handle_input(self, locals_value, action: Action):
        phase = locals_value[0]
        if action.kind == "init" and phase == "idle":
            return ("propose", action.args[1])
        if action.kind == "respond" and phase == "wait":
            response = action.args[2]
            if isinstance(response, tuple) and response[0] == "decide":
                return ("deliver", response[1])
        return locals_value

    def next_action(self, locals_value):
        phase = locals_value[0]
        if phase == "propose":
            value = locals_value[1]
            return (
                invoke(self.target_service, self.endpoint, ("init", value)),
                ("wait",),
            )
        if phase == "deliver":
            value = locals_value[1]
            return decide(self.endpoint, value), ("done",)
        return None, locals_value


def delegation_consensus_system(n: int, resilience: int) -> DistributedSystem:
    """The canonical doomed candidate for Theorem 2.

    ``n`` processes, one ``resilience``-resilient binary consensus atomic
    object connected to all of them.  Claims to solve
    ``(resilience + 1)``-resilient consensus; the adversary pipeline
    refutes the claim.
    """
    endpoints = tuple(range(n))
    service = CanonicalAtomicObject(
        sequential_type=binary_consensus_type(),
        endpoints=endpoints,
        resilience=resilience,
        service_id="cons",
    )
    processes = [DelegationProcess(endpoint, "cons") for endpoint in endpoints]
    return DistributedSystem(processes, services=[service])


class TOBDelegationProcess(Process):
    """Broadcast the input; decide on the first delivered message."""

    def __init__(self, endpoint: Hashable, service_id: Hashable) -> None:
        super().__init__(
            endpoint, connections=(service_id,), input_values=(0, 1)
        )
        self.target_service = service_id

    def symmetry_key(self):
        return ("tob-delegation", self.target_service)

    def initial_locals(self):
        return ("idle",)

    def handle_input(self, locals_value, action: Action):
        phase = locals_value[0]
        if action.kind == "init" and phase == "idle":
            return ("propose", action.args[1])
        if action.kind == "respond" and phase in ("wait", "propose"):
            response = action.args[2]
            if isinstance(response, tuple) and response[0] == "rcv":
                return ("deliver", response[1])
        return locals_value

    def next_action(self, locals_value):
        phase = locals_value[0]
        if phase == "propose":
            value = locals_value[1]
            return (
                invoke(self.target_service, self.endpoint, bcast(value)),
                ("wait",),
            )
        if phase == "deliver":
            return decide(self.endpoint, locals_value[1]), ("done",)
        return None, locals_value


def tob_delegation_system(n: int, resilience: int) -> DistributedSystem:
    """The doomed candidate for Theorem 9 (failure-oblivious services).

    ``n`` processes over one ``resilience``-resilient totally ordered
    broadcast service: broadcast your input, decide the first delivery.
    Total order makes it safe; ``resilience + 1`` failures silence the
    broadcast service.
    """
    endpoints = tuple(range(n))
    service = TotallyOrderedBroadcast(
        service_id="tob",
        endpoints=endpoints,
        messages=(0, 1),
        resilience=resilience,
    )
    processes = [TOBDelegationProcess(endpoint, "tob") for endpoint in endpoints]
    return DistributedSystem(processes, services=[service])


class MinRegisterProcess(Process):
    """Write own value, then poll the peer's register; decide the minimum.

    Solves consensus when nobody fails (both values become visible and
    the minimum is schedule-independent); loops forever if the peer
    crashes before writing — the ``f = 0`` instance of the theorem.
    """

    def __init__(
        self, endpoint: Hashable, own_register: Hashable, peer_register: Hashable
    ) -> None:
        super().__init__(
            endpoint,
            connections=(own_register, peer_register),
            input_values=(0, 1),
        )
        self.own_register = own_register
        self.peer_register = peer_register

    def symmetry_key(self):
        # The crossed own/peer wiring makes the two processes of
        # min_register_consensus_system asymmetric: their keys differ,
        # so the orbit computation (correctly) finds no permutation.
        return ("min-register", self.own_register, self.peer_register)

    def initial_locals(self):
        return ("idle",)

    def handle_input(self, locals_value, action: Action):
        phase = locals_value[0]
        if action.kind == "init" and phase == "idle":
            return ("write", action.args[1])
        if action.kind != "respond":
            return locals_value
        service, _, response = action.args
        if phase == "await-ack" and service == self.own_register:
            return ("poll", locals_value[1])
        if phase == "await-read" and service == self.peer_register:
            if isinstance(response, tuple) and response[0] == "value":
                peer_value = response[1]
                if peer_value == EMPTY:
                    return ("poll", locals_value[1])
                return ("resolve", min(locals_value[1], peer_value))
        return locals_value

    def next_action(self, locals_value):
        phase = locals_value[0]
        if phase == "write":
            value = locals_value[1]
            return (
                invoke(self.own_register, self.endpoint, write(value)),
                ("await-ack", value),
            )
        if phase == "poll":
            return (
                invoke(self.peer_register, self.endpoint, read()),
                ("await-read", locals_value[1]),
            )
        if phase == "resolve":
            return decide(self.endpoint, locals_value[1]), ("done",)
        return None, locals_value


def min_register_consensus_system() -> DistributedSystem:
    """Two processes, two registers, decide-the-minimum (FLP instance)."""
    values = (EMPTY, 0, 1)
    registers = [
        CanonicalRegister("reg0", endpoints=(0, 1), values=values, initial=EMPTY),
        CanonicalRegister("reg1", endpoints=(0, 1), values=values, initial=EMPTY),
    ]
    processes = [
        MinRegisterProcess(0, "reg0", "reg1"),
        MinRegisterProcess(1, "reg1", "reg0"),
    ]
    return DistributedSystem(processes, registers=registers)


class RaceRegisterProcess(Process):
    """Read; write-and-decide-own if empty, else decide what was read.

    The classic broken protocol: both processes can read "empty" before
    either write lands, then decide their own distinct values.
    """

    def __init__(self, endpoint: Hashable, register: Hashable) -> None:
        super().__init__(endpoint, connections=(register,), input_values=(0, 1))
        self.register = register

    def symmetry_key(self):
        return ("race", self.register)

    def initial_locals(self):
        return ("idle",)

    def handle_input(self, locals_value, action: Action):
        phase = locals_value[0]
        if action.kind == "init" and phase == "idle":
            return ("probe", action.args[1])
        if action.kind != "respond":
            return locals_value
        response = action.args[2]
        if phase == "await-read" and isinstance(response, tuple):
            if response[0] == "value":
                if response[1] == EMPTY:
                    return ("claim", locals_value[1])
                return ("resolve", response[1])
        if phase == "await-ack":
            return ("resolve", locals_value[1])
        return locals_value

    def next_action(self, locals_value):
        phase = locals_value[0]
        if phase == "probe":
            return (
                invoke(self.register, self.endpoint, read()),
                ("await-read", locals_value[1]),
            )
        if phase == "claim":
            return (
                invoke(self.register, self.endpoint, write(locals_value[1])),
                ("await-ack", locals_value[1]),
            )
        if phase == "resolve":
            return decide(self.endpoint, locals_value[1]), ("done",)
        return None, locals_value


def race_register_consensus_system(n: int = 2) -> DistributedSystem:
    """``n`` processes racing on one register — violates agreement."""
    endpoints = tuple(range(n))
    register = CanonicalRegister(
        "reg", endpoints=endpoints, values=(EMPTY, 0, 1), initial=EMPTY
    )
    processes = [RaceRegisterProcess(endpoint, "reg") for endpoint in endpoints]
    return DistributedSystem(processes, registers=[register])


def grouped_delegation_system(
    group_sizes: Sequence[int],
) -> DistributedSystem:
    """Independent wait-free consensus objects per group of processes.

    Each group of processes shares its own *wait-free* binary consensus
    object and runs delegation within the group.  Inside a group all
    decisions agree; across groups they need not — the system solves
    2-set-consensus (for two groups) but **not** consensus, which is
    exactly the Section 4 phenomenon.
    """
    processes = []
    services = []
    next_endpoint = 0
    for group_index, size in enumerate(group_sizes):
        endpoints = tuple(range(next_endpoint, next_endpoint + size))
        next_endpoint += size
        service_id = f"cons{group_index}"
        services.append(
            wait_free_atomic_object(
                binary_consensus_type(), endpoints, service_id=service_id
            )
        )
        processes.extend(
            DelegationProcess(endpoint, service_id) for endpoint in endpoints
        )
    return DistributedSystem(processes, services=services)


class LastWriterProcess(Process):
    """Write own value to the shared register, raise a flag, wait for the
    peer's flag, then decide the register's (final) content.

    The decision is the LAST write performed — schedule-dependent, which
    makes initializations bivalent and drives the Fig. 3 search into
    hooks whose two tasks are both perform tasks of the shared register:
    the register cases (Claim 5) of Lemma 8.  The protocol solves
    0-resilient consensus (failure-free, both flags rise and both read
    the same settled value) and fails 1-resilient consensus (a crash
    before the victim's flag write leaves the survivor polling forever).
    """

    def __init__(
        self,
        endpoint: Hashable,
        value_register: Hashable,
        own_flag: Hashable,
        peer_flag: Hashable,
    ) -> None:
        super().__init__(
            endpoint,
            connections=(value_register, own_flag, peer_flag),
            input_values=(0, 1),
        )
        self.value_register = value_register
        self.own_flag = own_flag
        self.peer_flag = peer_flag

    def symmetry_key(self):
        # Crossed flag wiring — like MinRegisterProcess, deliberately
        # asymmetric keys, so the symmetry group is trivial.
        return ("last-writer", self.value_register, self.own_flag, self.peer_flag)

    def initial_locals(self):
        return ("idle",)

    def handle_input(self, locals_value, action: Action):
        phase = locals_value[0]
        if action.kind == "init" and phase == "idle":
            return ("write-value", action.args[1])
        if action.kind != "respond":
            return locals_value
        service, _, response = action.args
        if phase == "await-value-ack" and service == self.value_register:
            return ("raise-flag", locals_value[1])
        if phase == "await-flag-ack" and service == self.own_flag:
            return ("poll-peer", locals_value[1])
        if phase == "await-peer-flag" and service == self.peer_flag:
            if isinstance(response, tuple) and response[0] == "value":
                if response[1] == 1:
                    return ("read-value", locals_value[1])
                return ("poll-peer", locals_value[1])
        if phase == "await-final-read" and service == self.value_register:
            if isinstance(response, tuple) and response[0] == "value":
                return ("resolve", response[1])
        return locals_value

    def next_action(self, locals_value):
        phase = locals_value[0]
        if phase == "write-value":
            return (
                invoke(self.value_register, self.endpoint, write(locals_value[1])),
                ("await-value-ack", locals_value[1]),
            )
        if phase == "raise-flag":
            return (
                invoke(self.own_flag, self.endpoint, write(1)),
                ("await-flag-ack", locals_value[1]),
            )
        if phase == "poll-peer":
            return (
                invoke(self.peer_flag, self.endpoint, read()),
                ("await-peer-flag", locals_value[1]),
            )
        if phase == "read-value":
            return (
                invoke(self.value_register, self.endpoint, read()),
                ("await-final-read", locals_value[1]),
            )
        if phase == "resolve":
            return decide(self.endpoint, locals_value[1]), ("done",)
        return None, locals_value


def last_writer_register_system() -> DistributedSystem:
    """Two processes, three registers, decide-the-last-write.

    The register-heavy doomed candidate: safe, schedule-dependent, and
    its hooks land in Lemma 8's Claim 5 (shared register) cases.
    """
    value_register = CanonicalRegister(
        "val", endpoints=(0, 1), values=(EMPTY, 0, 1), initial=EMPTY
    )
    flags = [
        CanonicalRegister(f"flag{i}", endpoints=(0, 1), values=(0, 1), initial=0)
        for i in (0, 1)
    ]
    processes = [
        LastWriterProcess(0, "val", "flag0", "flag1"),
        LastWriterProcess(1, "val", "flag1", "flag0"),
    ]
    return DistributedSystem(processes, registers=[value_register] + flags)
