"""Message-passing consensus candidates (the 2002 TR setting).

Doomed candidates for the message-passing instantiation of the boosting
impossibility: processes communicate only through an ``f``-resilient
asynchronous network (a failure-oblivious service), so Theorem 9 applies
and the adversary pipeline refutes any claimed ``(f+1)``-resilience.

Two candidates with complementary failure shapes:

* :func:`arbiter_consensus_system` — proposers send their values to a
  distinguished *arbiter*, which decides the first value it receives and
  broadcasts the decision.  Schedule-dependent (the network's perform
  order races the proposals), hence bivalent initializations, hooks, and
  the full pipeline; killing the arbiter plus silencing the network
  blocks the survivors.
* :func:`exchange_consensus_system` — two processes swap values and
  decide the minimum.  Schedule-independent (univalent everywhere) and
  correct failure-free; one crash before the victim's send leaves the
  peer waiting forever — the direct-attack shape.
"""

from __future__ import annotations

from typing import Hashable

from ..ioa.actions import Action, decide, invoke
from ..services.network import AsynchronousNetwork, send
from ..system.process import Process
from ..system.system import DistributedSystem

NETWORK_ID = "net"


class ArbiterProposer(Process):
    """Send the proposal to the arbiter; decide on the announced value."""

    def __init__(self, endpoint: Hashable, arbiter: Hashable) -> None:
        self.arbiter = arbiter
        super().__init__(endpoint, connections=(NETWORK_ID,), input_values=(0, 1))

    def initial_locals(self):
        return ("idle",)

    def handle_input(self, locals_value, action: Action):
        phase = locals_value[0]
        if action.kind == "init" and phase == "idle":
            return ("submit", action.args[1])
        if action.kind == "respond" and action.args[0] == NETWORK_ID:
            response = action.args[2]
            if isinstance(response, tuple) and response[0] == "deliver":
                sender, message = response[1], response[2]
                if sender == self.arbiter and phase in ("submit", "sent"):
                    return ("announce", message)
        return locals_value

    def next_action(self, locals_value):
        phase = locals_value[0]
        if phase == "submit":
            return (
                invoke(NETWORK_ID, self.endpoint, send(self.arbiter, locals_value[1])),
                ("sent",),
            )
        if phase == "announce":
            return decide(self.endpoint, locals_value[1]), ("done",)
        return None, locals_value


class ArbiterProcess(Process):
    """Decide the first proposal received; broadcast the decision.

    The arbiter is a pure referee: its own ``init`` input is ignored as
    a proposal (it merely registers participation), so the decision is
    genuinely a race between the proposers' messages through the network
    — the schedule dependence that makes initializations bivalent.
    """

    def __init__(self, endpoint: Hashable, proposers: tuple) -> None:
        self.proposers = tuple(proposers)
        super().__init__(endpoint, connections=(NETWORK_ID,), input_values=(0, 1))

    # locals = (phase, own_proposal, winner, broadcast_cursor)
    def initial_locals(self):
        return ("await", None, None, 0)

    def handle_input(self, locals_value, action: Action):
        phase, own, winner, cursor = locals_value
        if action.kind == "init":
            return (phase, action.args[1], winner, cursor)
        if action.kind == "respond" and action.args[0] == NETWORK_ID:
            response = action.args[2]
            if isinstance(response, tuple) and response[0] == "deliver":
                if winner is None:
                    return ("broadcast", own, response[2], 0)
        return locals_value

    def next_action(self, locals_value):
        phase, own, winner, cursor = locals_value
        if phase == "broadcast":
            if cursor >= len(self.proposers):
                return decide(self.endpoint, winner), ("done", own, winner, cursor)
            target = self.proposers[cursor]
            return (
                invoke(NETWORK_ID, self.endpoint, send(target, winner)),
                ("broadcast", own, winner, cursor + 1),
            )
        return None, locals_value


def _build_network(endpoints: tuple, resilience: int, faults):
    """The network service: benign, or faulty under a nonzero budget.

    ``faults`` is a :class:`repro.sim.faults.FaultBudget` (or ``None``
    for the benign network).  A zero budget still instantiates the
    faulty wrapper — whose automaton is state-for-state identical to
    the benign one, the conservativity guarantee the sim test suite
    asserts.
    """
    if faults is None:
        return AsynchronousNetwork(
            NETWORK_ID, endpoints=endpoints, messages=(0, 1), resilience=resilience
        )
    # Imported lazily: repro.sim builds on repro.protocols at load time.
    from ..sim.faults import FaultyNetwork

    return FaultyNetwork(
        NETWORK_ID,
        endpoints=endpoints,
        messages=(0, 1),
        resilience=resilience,
        budget=faults,
    )


def arbiter_consensus_system(
    n: int = 3, resilience: int = 0, faults=None
) -> DistributedSystem:
    """``n-1`` proposers and one arbiter over an f-resilient network.

    The first proposal to *reach* the arbiter wins, so the decision is
    schedule-dependent and the valence machinery engages fully.  With a
    ``faults`` budget the network is a
    :class:`~repro.sim.faults.FaultyNetwork` and the budgeted message
    adversary joins the schedule adversary.
    """
    endpoints = tuple(range(n))
    arbiter = n - 1
    proposers = endpoints[:-1]
    network = _build_network(endpoints, resilience, faults)
    processes: list[Process] = [
        ArbiterProposer(endpoint, arbiter) for endpoint in proposers
    ]
    processes.append(ArbiterProcess(arbiter, proposers))
    return DistributedSystem(processes, services=[network])


class ExchangeProcess(Process):
    """Send own value to the peer; decide min(own, received)."""

    def __init__(self, endpoint: Hashable, peer: Hashable) -> None:
        self.peer = peer
        super().__init__(endpoint, connections=(NETWORK_ID,), input_values=(0, 1))

    def initial_locals(self):
        return ("idle", None)

    def handle_input(self, locals_value, action: Action):
        phase, own = locals_value
        if action.kind == "init" and phase == "idle":
            return ("send", action.args[1])
        if action.kind == "respond" and action.args[0] == NETWORK_ID:
            response = action.args[2]
            if isinstance(response, tuple) and response[0] == "deliver":
                if phase in ("send", "sent") and response[1] == self.peer:
                    if own is None:
                        return locals_value
                    decision = min(own, response[2])
                    if phase == "send":
                        # The peer's value overtook our own send step: we
                        # still owe the peer our value, or it waits
                        # forever (a liveness bug the sim fuzzer found).
                        return ("send-resolve", (own, decision))
                    return ("resolve", decision)
        return locals_value

    def next_action(self, locals_value):
        phase, value = locals_value
        if phase == "send":
            return (
                invoke(NETWORK_ID, self.endpoint, send(self.peer, value)),
                ("sent", value),
            )
        if phase == "send-resolve":
            own, decision = value
            return (
                invoke(NETWORK_ID, self.endpoint, send(self.peer, own)),
                ("resolve", decision),
            )
        if phase == "resolve":
            return decide(self.endpoint, value), ("done", value)
        return None, locals_value


def exchange_consensus_system(resilience: int = 0, faults=None) -> DistributedSystem:
    """Two processes swap values over an f-resilient network; decide min.

    With a ``faults`` budget the network is a
    :class:`~repro.sim.faults.FaultyNetwork`: one dropped message
    leaves a peer waiting forever, the canonical stuck-undecided
    counterexample the fuzzer finds and shrinks.
    """
    network = _build_network((0, 1), resilience, faults)
    processes = [ExchangeProcess(0, 1), ExchangeProcess(1, 0)]
    return DistributedSystem(processes, services=[network])
