"""Shared-memory Paxos driven by an Omega leader oracle.

A framework extension beyond the paper's own constructions: the
Gafni-Lamport *Disk Paxos* algorithm specialized to one reliable "disk"
(an array of per-process wait-free registers), with leader election by
the Omega oracle of :mod:`repro.services.failure_detectors`.  It
demonstrates that the paper's service model comfortably expresses a
realistic, eventually-live consensus protocol built from the library's
own canonical parts — and it exhibits the classical trade-off the paper
frames: with an *eventual* failure-aware service, safety is absolute and
liveness holds from stabilization onward.

Algorithm (per process ``p``; ballots of ``p`` are ``round * n + p``):

* each process owns one register block ``(mbal, bal, inp)``: the highest
  ballot it has *started*, the highest ballot at which it *committed* a
  value, and that value;
* a process that believes itself leader runs attempts; everyone else
  polls the ``decided`` register:

  * **phase 1** — write own block with ``mbal = b``; read every other
    block; abort to a higher ballot if any ``mbal > b``; adopt the value
    of the highest ``bal`` seen (or fall back to the own proposal);
  * **phase 2** — write own block with ``bal = b, inp = chosen``; read
    every other block; abort if any ``mbal > b``; otherwise the value is
    committed: publish it to the ``decided`` register and decide;

* learning — every poll of the ``decided`` register that returns a value
  decides it.

Safety is Disk Paxos safety (values committed at comparable ballots
agree), independent of Omega's lies.  Liveness: once Omega stabilizes
(its fair mode switch) exactly one correct process keeps proposing, its
ballot eventually exceeds every stale ``mbal``, and the attempt goes
through.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Sequence

from ..ioa.actions import Action, decide, invoke
from ..services.failure_detectors import LEADER, OmegaFailureDetector
from ..services.register import CanonicalRegister, read, write
from ..system.process import Process
from ..system.system import DistributedSystem

#: Sentinel for "no value yet" in blocks and the decided register.
NONE_VALUE = "none"


def block_register_id(endpoint: Hashable) -> tuple:
    """The register holding ``endpoint``'s Paxos block."""
    return ("block", endpoint)


DECIDED_REGISTER = ("decided",)


@dataclass(frozen=True, slots=True)
class PaxosLocals:
    """Immutable local state of a Paxos participant."""

    phase: str
    proposal: Hashable | None
    leader: Hashable | None
    round: int
    ballot: int
    own_block: tuple  # (mbal, bal, inp)
    best: tuple  # (bal, inp) best committed value seen this attempt
    cursor: int
    chosen: Hashable | None
    decision: Hashable | None


INITIAL_BLOCK = (0, 0, NONE_VALUE)


class PaxosProcess(Process):
    """One participant: proposer when leader, learner always."""

    def __init__(
        self,
        endpoint: int,
        n: int,
        max_rounds: int,
        proposals: Sequence[Hashable] = (0, 1),
    ) -> None:
        self.n = n
        self.max_rounds = max_rounds
        connections = (
            ["omega", DECIDED_REGISTER]
            + [block_register_id(q) for q in range(n)]
        )
        super().__init__(endpoint, connections=connections, input_values=proposals)

    def initial_locals(self):
        return PaxosLocals(
            phase="idle",
            proposal=None,
            leader=None,
            round=0,
            ballot=0,
            own_block=INITIAL_BLOCK,
            best=(0, NONE_VALUE),
            cursor=0,
            chosen=None,
            decision=None,
        )

    # -- inputs -----------------------------------------------------------------

    def handle_input(self, locals_value: PaxosLocals, action: Action):
        if action.kind == "init":
            if locals_value.phase == "idle":
                return replace(
                    locals_value, phase="learn", proposal=action.args[1]
                )
            return locals_value
        if action.kind != "respond":
            return locals_value
        service, _, response = action.args
        if isinstance(response, tuple) and response[0] == LEADER:
            return replace(locals_value, leader=response[1])
        if locals_value.phase == "await-decided" and service == DECIDED_REGISTER:
            if isinstance(response, tuple) and response[0] == "value":
                if response[1] != NONE_VALUE:
                    return replace(
                        locals_value, phase="conclude", decision=response[1]
                    )
                return replace(locals_value, phase="learn")
        if locals_value.phase == "await-p1-write" and service == block_register_id(
            self.endpoint
        ):
            return replace(
                locals_value,
                phase="p1-read",
                cursor=0,
                best=(locals_value.own_block[1], locals_value.own_block[2]),
            )
        if locals_value.phase == "await-p1-read":
            expected = block_register_id(locals_value.cursor)
            if service == expected and isinstance(response, tuple):
                mbal_q, bal_q, inp_q = response[1]
                if mbal_q > locals_value.ballot:
                    return self._abort(locals_value)
                best = locals_value.best
                if bal_q > best[0]:
                    best = (bal_q, inp_q)
                return replace(
                    locals_value,
                    phase="p1-read",
                    cursor=locals_value.cursor + 1,
                    best=best,
                )
        if locals_value.phase == "await-p2-write" and service == block_register_id(
            self.endpoint
        ):
            return replace(locals_value, phase="p2-read", cursor=0)
        if locals_value.phase == "await-p2-read":
            expected = block_register_id(locals_value.cursor)
            if service == expected and isinstance(response, tuple):
                mbal_q, _, _ = response[1]
                if mbal_q > locals_value.ballot:
                    return self._abort(locals_value)
                return replace(
                    locals_value, phase="p2-read", cursor=locals_value.cursor + 1
                )
        if locals_value.phase == "await-publish" and service == DECIDED_REGISTER:
            return replace(
                locals_value, phase="conclude", decision=locals_value.chosen
            )
        return locals_value

    def _abort(self, locals_value: PaxosLocals) -> PaxosLocals:
        """Abandon the attempt; retry at the next of our ballots."""
        return replace(locals_value, phase="learn", round=locals_value.round + 1)

    # -- locally controlled steps -------------------------------------------------

    def next_action(self, locals_value: PaxosLocals):
        phase = locals_value.phase
        if phase == "learn":
            return (
                invoke(DECIDED_REGISTER, self.endpoint, read()),
                replace(locals_value, phase="await-decided"),
            )
        if phase == "await-decided":
            # While waiting, check whether we should start proposing:
            # handled on response; nothing to do now.
            return None, locals_value
        if phase == "conclude":
            return (
                decide(self.endpoint, locals_value.decision),
                replace(locals_value, phase="done"),
            )
        return self._proposer_action(locals_value)

    def _proposer_action(self, locals_value: PaxosLocals):
        phase = locals_value.phase
        if phase == "propose":
            ballot = locals_value.round * self.n + self.endpoint + 1
            own_block = (
                ballot,
                locals_value.own_block[1],
                locals_value.own_block[2],
            )
            return (
                invoke(
                    block_register_id(self.endpoint), self.endpoint, write(own_block)
                ),
                replace(
                    locals_value,
                    phase="await-p1-write",
                    ballot=ballot,
                    own_block=own_block,
                ),
            )
        if phase == "p1-read":
            if locals_value.cursor == self.endpoint:
                return None, replace(locals_value, cursor=locals_value.cursor + 1)
            if locals_value.cursor >= self.n:
                chosen = (
                    locals_value.best[1]
                    if locals_value.best[0] > 0
                    else locals_value.proposal
                )
                return None, replace(locals_value, phase="p2-write", chosen=chosen)
            return (
                invoke(
                    block_register_id(locals_value.cursor), self.endpoint, read()
                ),
                replace(locals_value, phase="await-p1-read"),
            )
        if phase == "p2-write":
            own_block = (
                locals_value.ballot,
                locals_value.ballot,
                locals_value.chosen,
            )
            return (
                invoke(
                    block_register_id(self.endpoint), self.endpoint, write(own_block)
                ),
                replace(
                    locals_value, phase="await-p2-write", own_block=own_block
                ),
            )
        if phase == "p2-read":
            if locals_value.cursor == self.endpoint:
                return None, replace(locals_value, cursor=locals_value.cursor + 1)
            if locals_value.cursor >= self.n:
                return (
                    invoke(
                        DECIDED_REGISTER,
                        self.endpoint,
                        write(locals_value.chosen),
                    ),
                    replace(locals_value, phase="await-publish"),
                )
            return (
                invoke(
                    block_register_id(locals_value.cursor), self.endpoint, read()
                ),
                replace(locals_value, phase="await-p2-read"),
            )
        return None, locals_value

    # Override: entering proposer mode happens from the decided-poll
    # response path; translate "learn + I am leader" into an attempt.
    def handle_learn_or_propose(self, locals_value: PaxosLocals) -> PaxosLocals:
        return locals_value


class LeaderGatedPaxosProcess(PaxosProcess):
    """Paxos participant that proposes only while Omega names it leader."""

    def handle_input(self, locals_value: PaxosLocals, action: Action):
        updated = super().handle_input(locals_value, action)
        # After an unsuccessful decided-poll, escalate to proposing when
        # we are the current leader and have attempts left.
        if (
            updated.phase == "learn"
            and updated.proposal is not None
            and updated.leader == self.endpoint
            and updated.round < self.max_rounds
        ):
            return replace(updated, phase="propose")
        return updated


def paxos_ballot_bound(n: int, max_rounds: int) -> int:
    """Largest ballot any process can use."""
    return (max_rounds - 1) * n + n


def _block_values(n: int, max_rounds: int, proposals: Sequence[Hashable]):
    """The register value domain: all reachable blocks."""
    bound = paxos_ballot_bound(n, max_rounds)
    values = [INITIAL_BLOCK]
    candidates = (NONE_VALUE,) + tuple(proposals)
    for mbal in range(0, bound + 1):
        for bal in range(0, bound + 1):
            if bal > mbal:
                continue
            for inp in candidates:
                values.append((mbal, bal, inp))
    return tuple(dict.fromkeys(values))


def shared_paxos_system(
    n: int,
    max_rounds: int = 4,
    proposals: Sequence[Hashable] = (0, 1),
    omega_arbitrary_leaders: Sequence | None = None,
) -> DistributedSystem:
    """Build the full Paxos + Omega system.

    ``max_rounds`` bounds each process's retry attempts (keeping register
    value domains finite); liveness needs Omega to stabilize within the
    bound, which its fair mode switch guarantees in practice.
    """
    endpoints = tuple(range(n))
    omega = OmegaFailureDetector(
        "omega",
        endpoints=endpoints,
        resilience=n - 1,
        arbitrary_leaders=omega_arbitrary_leaders,
    )
    block_values = _block_values(n, max_rounds, proposals)
    registers = [
        CanonicalRegister(
            block_register_id(q),
            endpoints=endpoints,
            values=block_values,
            initial=INITIAL_BLOCK,
        )
        for q in endpoints
    ] + [
        CanonicalRegister(
            DECIDED_REGISTER,
            endpoints=endpoints,
            values=(NONE_VALUE,) + tuple(proposals),
            initial=NONE_VALUE,
        )
    ]
    processes = [
        LeaderGatedPaxosProcess(p, n, max_rounds, proposals) for p in endpoints
    ]
    return DistributedSystem(processes, services=[omega], registers=registers)


class EvPGatedPaxosProcess(PaxosProcess):
    """Paxos participant whose leadership comes from <>P suspicions.

    The leader rule is "least endpoint I do not currently suspect".
    While <>P is imperfect, suspicions may be arbitrary — several
    processes may consider themselves leader and contend (ballots
    abort); safety is unaffected (Disk Paxos).  Once the fair mode
    switch makes reports exact, everyone's unsuspected-minimum converges
    to the least correct process, and its attempts stop aborting.
    """

    def __init__(
        self,
        endpoint: int,
        n: int,
        max_rounds: int,
        proposals=(0, 1),
    ) -> None:
        super().__init__(endpoint, n, max_rounds, proposals)
        # Replace the omega connection with the <>P detector's id.
        self.connections = (self.connections - {"omega"}) | {"evP"}

    def handle_input(self, locals_value: PaxosLocals, action: Action):
        if action.kind == "respond":
            service, _, response = action.args
            if isinstance(response, tuple) and response[0] == "suspect":
                alive = [
                    q for q in range(self.n) if q not in response[1]
                ]
                leader = min(alive) if alive else None
                locals_value = replace(locals_value, leader=leader)
                if (
                    locals_value.phase == "learn"
                    and locals_value.proposal is not None
                    and leader == self.endpoint
                    and locals_value.round < self.max_rounds
                ):
                    return replace(locals_value, phase="propose")
                return locals_value
        updated = super().handle_input(locals_value, action)
        if (
            updated.phase == "learn"
            and updated.proposal is not None
            and updated.leader == self.endpoint
            and updated.round < self.max_rounds
        ):
            return replace(updated, phase="propose")
        return updated


def shared_paxos_with_evp_system(
    n: int,
    max_rounds: int = 5,
    proposals=(0, 1),
    arbitrary_suspicions=None,
) -> DistributedSystem:
    """Shared-memory Paxos with <>P-derived leadership.

    Identical register fabric to :func:`shared_paxos_system`, but the
    failure-aware service is the paper's eventually perfect detector of
    Figs. 10-11 rather than Omega — demonstrating that ANY detector
    whose reports eventually become exact suffices for liveness here.
    """
    from ..services.failure_detectors import EventuallyPerfectFailureDetector

    endpoints = tuple(range(n))
    detector = EventuallyPerfectFailureDetector(
        "evP",
        endpoints=endpoints,
        resilience=n - 1,
        arbitrary_suspicions=arbitrary_suspicions,
    )
    block_values = _block_values(n, max_rounds, proposals)
    registers = [
        CanonicalRegister(
            block_register_id(q),
            endpoints=endpoints,
            values=block_values,
            initial=INITIAL_BLOCK,
        )
        for q in endpoints
    ] + [
        CanonicalRegister(
            DECIDED_REGISTER,
            endpoints=endpoints,
            values=(NONE_VALUE,) + tuple(proposals),
            initial=NONE_VALUE,
        )
    ]
    processes = [
        EvPGatedPaxosProcess(p, n, max_rounds, proposals) for p in endpoints
    ]
    return DistributedSystem(
        processes, services=[detector], registers=registers
    )
