"""Boosting IS possible for k-set-consensus (Section 4).

The paper's counterpoint to Theorem 2: wait-free ``k``-set-consensus for
``n`` processes is solvable from wait-free ``k'``-set-consensus services
with ``n'`` endpoints apiece, whenever ``k'n = kn'`` — a strict boost of
resilience (``f' = n' - 1 < f = n - 1``).

Construction (verbatim from the paper): divide the ``n`` endpoints into
``g = k/k'`` disjoint groups of exactly ``n'``; give each group one
wait-free ``k'``-set-consensus service on exactly its endpoints.  Each
process forwards its ``init(v)`` to its group's service and echoes the
response as its decision.  Since only ``g`` services exist and each
contributes at most ``k'`` distinct values, at most ``k = g k'``
distinct values are decided; validity and wait-freedom are inherited
from the services.

The concrete headline instance: ``n`` even, ``n' = n/2``, ``k = 2``,
``k' = 1`` — wait-free ``n``-process 2-set-consensus from wait-free
``n/2``-process consensus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..services.atomic import CanonicalAtomicObject
from ..system.system import DistributedSystem
from ..types.registry import consensus_type, k_set_consensus_type
from .candidates import DelegationProcess


@dataclass(frozen=True)
class KSetBoostParameters:
    """The parameters ``(n, k, n', k')`` of the Section 4 construction.

    Validity requires ``k' n = k n'`` with all quantities positive,
    ``k' <= k``, and ``n'`` dividing ``n`` into ``g = k/k'`` groups.
    """

    n: int
    k: int
    n_prime: int
    k_prime: int

    def __post_init__(self) -> None:
        if min(self.n, self.k, self.n_prime, self.k_prime) < 1:
            raise ValueError("all parameters must be positive")
        if self.k_prime * self.n != self.k * self.n_prime:
            raise ValueError(
                f"the paper requires k'n = kn': "
                f"{self.k_prime}*{self.n} != {self.k}*{self.n_prime}"
            )
        if self.k % self.k_prime != 0:
            raise ValueError("k/k' must be an integral number of groups")
        if self.groups * self.n_prime != self.n:
            raise ValueError("groups must exactly partition the endpoints")

    @property
    def groups(self) -> int:
        """``g = k / k'``, the number of disjoint groups."""
        return self.k // self.k_prime

    @property
    def inner_resilience(self) -> int:
        """``f' = n' - 1``: the services are wait-free for their endpoints."""
        return self.n_prime - 1

    @property
    def boosted_resilience(self) -> int:
        """``f = n - 1``: the constructed system is wait-free."""
        return self.n - 1


def classic_parameters(n: int) -> KSetBoostParameters:
    """The paper's concrete instance: 2-set-consensus from consensus.

    ``n`` even; ``n' = n/2``, ``k = 2``, ``k' = 1``, ``f = n - 1``,
    ``f' = n/2 - 1``.
    """
    if n % 2 != 0:
        raise ValueError("the classic instance needs an even n")
    return KSetBoostParameters(n=n, k=2, n_prime=n // 2, k_prime=1)


def group_of(parameters: KSetBoostParameters, endpoint: int) -> int:
    """Which group an endpoint belongs to (contiguous partition)."""
    return endpoint // parameters.n_prime


def kset_boost_system(parameters: KSetBoostParameters) -> DistributedSystem:
    """Build the Section 4 construction as a distributed system.

    Proposals range over ``{0, ..., n-1}`` (each process may propose its
    own index, the hardest case for set consensus).  For ``k' = 1`` the
    inner services use the deterministic multivalued consensus type; for
    ``k' > 1`` they use the (nondeterministic) ``k'``-set-consensus type.
    """
    proposals = tuple(range(parameters.n))
    services = []
    processes = []
    for group_index in range(parameters.groups):
        low = group_index * parameters.n_prime
        endpoints = tuple(range(low, low + parameters.n_prime))
        if parameters.k_prime == 1:
            inner_type = consensus_type(proposals)
        else:
            inner_type = k_set_consensus_type(parameters.k_prime, proposals)
        service_id = f"group{group_index}"
        services.append(
            CanonicalAtomicObject(
                sequential_type=inner_type,
                endpoints=endpoints,
                resilience=parameters.inner_resilience,
                service_id=service_id,
            )
        )
        processes.extend(
            KSetDelegationProcess(endpoint, service_id, proposals)
            for endpoint in endpoints
        )
    return DistributedSystem(processes, services=services)


class KSetDelegationProcess(DelegationProcess):
    """Delegation with multivalued proposals (the Section 4 processes)."""

    def __init__(
        self, endpoint: Hashable, service_id: Hashable, proposals: Sequence
    ) -> None:
        super().__init__(endpoint, service_id)
        # Widen the accepted external inputs to the full proposal set.
        self.input_values = frozenset(proposals)
