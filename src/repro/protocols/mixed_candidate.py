"""A mixed-service candidate for Theorem 10's full generality.

Theorem 10 allows the system to contain **both** f-resilient
failure-oblivious services (any connection pattern) and f-resilient
general services (each connected to all processes).  This candidate uses
one of each:

* an ``f``-resilient totally ordered broadcast (failure-oblivious) — the
  main decision path: broadcast your input, decide the first delivery;
* an ``f``-resilient perfect failure detector connected to all processes
  (failure-aware) — the escape hatch: a process that learns every other
  process has failed decides its own value immediately (safe, because
  perfect accuracy means nobody else will ever decide).

Within its resilience budget the candidate works — and the FD path makes
it live in cases pure TOB delegation is not (sole survivor decides even
if its broadcast was never ordered).  Beyond the budget, ``f + 1``
failures silence *both* services at once (the FD because it is connected
to all processes — exactly why Theorem 10 needs that hypothesis), and
the survivors block forever.
"""

from __future__ import annotations

from typing import Hashable

from ..ioa.actions import Action, decide, invoke
from ..services.broadcast import TotallyOrderedBroadcast, bcast
from ..services.failure_detectors import PerfectFailureDetector
from ..system.process import Process
from ..system.system import DistributedSystem

TOB_ID = "tob"
FD_ID = "P"


class MixedProcess(Process):
    """Decide the first TOB delivery — or own value if everyone else died."""

    def __init__(self, endpoint: Hashable, all_endpoints: tuple) -> None:
        self.others = frozenset(all_endpoints) - {endpoint}
        super().__init__(
            endpoint, connections=(TOB_ID, FD_ID), input_values=(0, 1)
        )

    # locals = (phase, proposal, suspected)
    def initial_locals(self):
        return ("idle", None, frozenset())

    def handle_input(self, locals_value, action: Action):
        phase, proposal, suspected = locals_value
        if action.kind == "init" and phase == "idle":
            return ("propose", action.args[1], suspected)
        if action.kind != "respond":
            return locals_value
        service, _, response = action.args
        if isinstance(response, tuple) and response[0] == "suspect":
            suspected = suspected | response[1]
            if (
                phase in ("propose", "wait")
                and self.others <= suspected
            ):
                # Perfect accuracy: everyone else really failed; nobody
                # else can ever decide, so deciding our own value is safe.
                return ("deliver", proposal, suspected)
            return (phase, proposal, suspected)
        if service == TOB_ID and phase in ("propose", "wait"):
            # Deliveries may arrive even before our own broadcast went
            # out; the FIRST delivered message is the decision either way
            # (skipping it would break agreement with faster processes).
            if isinstance(response, tuple) and response[0] == "rcv":
                return ("deliver", response[1], suspected)
        return locals_value

    def next_action(self, locals_value):
        phase, proposal, suspected = locals_value
        if phase == "propose":
            return (
                invoke(TOB_ID, self.endpoint, bcast(proposal)),
                ("wait", proposal, suspected),
            )
        if phase == "deliver":
            return decide(self.endpoint, proposal), ("done", proposal, suspected)
        return None, locals_value


def mixed_service_system(n: int, resilience: int) -> DistributedSystem:
    """TOB (failure-oblivious) + all-connected P (failure-aware), both
    ``resilience``-resilient: the Theorem 10 shape with K1 and K2 both
    nonempty."""
    endpoints = tuple(range(n))
    tob = TotallyOrderedBroadcast(
        service_id=TOB_ID, endpoints=endpoints, messages=(0, 1),
        resilience=resilience,
    )
    detector = PerfectFailureDetector(
        service_id=FD_ID, endpoints=endpoints, resilience=resilience
    )
    processes = [MixedProcess(endpoint, endpoints) for endpoint in endpoints]
    return DistributedSystem(processes, services=[tob, detector])
