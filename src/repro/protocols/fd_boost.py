"""Boosting failure detectors via connectivity (Section 6.3, possibility).

Theorem 10's all-processes connectivity assumption is *necessary*: with
arbitrary connection patterns, failure-aware services **can** be
boosted.  The paper's construction: give every pair of processes a
1-resilient 2-process perfect failure detector (1-resilient on 2
endpoints = wait-free, so no set of failures silences a pair detector
whose surviving member still listens).  Each process accumulates the
suspicions reported by its ``n - 1`` pair detectors in a dedicated
register, periodically reads all the dedicated registers, and outputs
the union — implementing a wait-free ``n``-process perfect failure
detector, with which consensus is solvable for any number of failures
(see :mod:`repro.protocols.consensus_with_fd`).

Fidelity note (recorded in DESIGN.md): the canonical wait-free
``n``-process P emits exact snapshots of the global failed set, while
this construction emits unions of *pairwise* knowledge.  The union is
always **accurate** (every suspected process has really failed) and
**complete** (every failure is eventually reported by its pair detectors
and then permanently included), which is what the paper means by
"accurate failure information about all n processes"; the tests verify
exactly these two properties, plus canonical-trace inclusion in the
single-failure runs where snapshot-exactness does hold.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Hashable, Sequence

from ..ioa.actions import Action, invoke
from ..services.failure_detectors import PerfectFailureDetector, suspect
from ..services.register import CanonicalRegister, read, write
from ..system.process import Process
from ..system.system import DistributedSystem

#: The virtual service id under which boosted suspicions are emitted;
#: gives the implemented detector the same external action shape as a
#: canonical ``PerfectFailureDetector("boostedP", I, n-1)``.
BOOSTED_FD_ID = "boostedP"


def pair_detector_id(i: Hashable, j: Hashable) -> tuple:
    """The id of the pair detector shared by processes ``i`` and ``j``."""
    low, high = sorted((i, j), key=str)
    return ("pfd", low, high)


def suspicion_register_id(i: Hashable) -> tuple:
    """The id of process ``i``'s dedicated suspicion register."""
    return ("suspicions", i)


def all_subsets(endpoints: Sequence) -> tuple[frozenset, ...]:
    """All subsets of the endpoint set (register value domain)."""
    items = tuple(endpoints)
    return tuple(
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(items, size) for size in range(len(items) + 1)
        )
    )


class BoostedFDProcess(Process):
    """One process of the boosted-failure-detector construction.

    Continually: (a) fold incoming pair-detector reports into a local
    suspicion set, (b) publish the local set in the dedicated register,
    (c) read every dedicated register, (d) emit the union as a
    ``suspect`` report at this endpoint — then start over.  The emitted
    action is ``respond(BOOSTED_FD_ID, i, suspect(S))`` so that the
    implemented detector has exactly the canonical interface.
    """

    def __init__(
        self,
        endpoint: Hashable,
        all_endpoints: Sequence[Hashable],
    ) -> None:
        self.all_endpoints = tuple(all_endpoints)
        peers = [peer for peer in self.all_endpoints if peer != endpoint]
        connections = [pair_detector_id(endpoint, peer) for peer in peers] + [
            suspicion_register_id(other) for other in self.all_endpoints
        ]
        super().__init__(endpoint, connections=connections, input_values=())
        self.own_register = suspicion_register_id(endpoint)

    # The emitted suspect reports make this process's outputs a superset
    # of the Process base signature.
    def is_output(self, action: Action) -> bool:
        if action.kind == "respond":
            service, endpoint, response = action.args
            return (
                service == BOOSTED_FD_ID
                and endpoint == self.endpoint
                and isinstance(response, tuple)
                and response[0] == "suspect"
            )
        return super().is_output(action)

    # locals = (phase, local_suspects, gathered_union, read_cursor)
    def initial_locals(self):
        return ("publish", frozenset(), frozenset(), 0)

    def handle_input(self, locals_value, action: Action):
        phase, local_suspects, gathered, cursor = locals_value
        if action.kind != "respond":
            return locals_value
        service, _, response = action.args
        if isinstance(response, tuple) and response[0] == "suspect":
            # A pair detector reported: fold into the local set.
            return (phase, local_suspects | response[1], gathered, cursor)
        if phase == "await-ack" and service == self.own_register:
            return ("gather", local_suspects, frozenset(), 0)
        if phase == "await-read":
            expected = suspicion_register_id(self.all_endpoints[cursor])
            if service == expected and isinstance(response, tuple):
                if response[0] == "value":
                    merged = gathered | response[1]
                    return ("gather", local_suspects, merged, cursor + 1)
        return locals_value

    def next_action(self, locals_value):
        phase, local_suspects, gathered, cursor = locals_value
        if phase == "publish":
            return (
                invoke(self.own_register, self.endpoint, write(local_suspects)),
                ("await-ack", local_suspects, gathered, cursor),
            )
        if phase == "gather":
            if cursor >= len(self.all_endpoints):
                return (
                    Action(
                        "respond",
                        (BOOSTED_FD_ID, self.endpoint, suspect(gathered)),
                    ),
                    ("publish", local_suspects, frozenset(), 0),
                )
            target = suspicion_register_id(self.all_endpoints[cursor])
            return (
                invoke(target, self.endpoint, read()),
                ("await-read", local_suspects, gathered, cursor),
            )
        return None, locals_value

    @staticmethod
    def local_suspicions(locals_value) -> frozenset:
        """The process's current pairwise-derived suspicion set."""
        return locals_value[1]


def boosted_fd_system(n: int) -> DistributedSystem:
    """The full Section 6.3 construction for ``n`` processes.

    Components: one 1-resilient 2-process perfect failure detector per
    unordered pair, one wait-free suspicion register per process (value
    domain: subsets of the endpoint set), and the ``n`` accumulating
    processes.
    """
    endpoints = tuple(range(n))
    detectors = [
        PerfectFailureDetector(
            service_id=pair_detector_id(i, j),
            endpoints=(i, j),
            resilience=1,
        )
        for i, j in combinations(endpoints, 2)
    ]
    subsets = all_subsets(endpoints)
    registers = [
        CanonicalRegister(
            suspicion_register_id(i),
            endpoints=endpoints,
            values=subsets,
            initial=frozenset(),
        )
        for i in endpoints
    ]
    processes = [BoostedFDProcess(i, endpoints) for i in endpoints]
    return DistributedSystem(processes, services=detectors, registers=registers)


def boosted_reports(execution, endpoint) -> list[frozenset]:
    """The suspicion sets emitted at ``endpoint`` along an execution."""
    reports = []
    for step in execution.steps:
        action = step.action
        if action.kind != "respond":
            continue
        service, target, response = action.args
        if service == BOOSTED_FD_ID and target == endpoint:
            reports.append(response[1])
    return reports
