"""Consensus from perfect failure detection (rotating coordinator).

Completes the Section 6.3 possibility claim: "consensus is solvable for
any number of failures using only 1-resilient 2-process perfect failure
detectors."  The classical rotating-coordinator algorithm over reliable
registers and a perfect failure detector:

* rounds ``r = 0 .. n-1``, coordinator of round ``r`` is process ``r``;
* the coordinator writes its current estimate into the round's register
  and moves on;
* every other process polls the round register until it either reads a
  value (and adopts it) or suspects the coordinator (and keeps its
  estimate);
* after round ``n - 1`` every live process decides its estimate.

With perfect accuracy, nobody abandons a live coordinator, so the first
round whose coordinator is correct imposes a common estimate, which all
later coordinators merely re-write; with strong completeness, nobody
waits forever on a crashed one.  Hence agreement, validity, and
wait-free termination.

Two instantiations, built by the two factory functions:

* :func:`consensus_via_pairwise_fds_system` — suspicion information
  comes from the 1-resilient **2-process** pair detectors of the
  Section 6.3 construction (arbitrary connectivity): each process
  directly unions its pair detectors' reports.  This is the boosting
  *possibility*: consensus tolerating ``n - 1`` failures out of
  1-resilient services.
* :func:`consensus_with_shared_fd_system` — one ``f``-resilient
  ``n``-process detector connected to **all** processes (Theorem 10's
  mandated shape).  With ``f < n - 1`` this is a doomed candidate: any
  ``f + 1`` failures silence the detector, and the liveness attack of
  :mod:`repro.analysis.refutation` blocks the survivors forever.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Sequence

from ..ioa.actions import Action, decide, invoke
from ..services.failure_detectors import PerfectFailureDetector
from ..services.register import CanonicalRegister, read, write
from ..system.process import Process
from ..system.system import DistributedSystem
from .fd_boost import pair_detector_id

#: Sentinel for a round register that has not been written yet.
UNSET = "unset"


def round_register_id(round_index: int) -> tuple:
    """The id of the register used by round ``round_index``."""
    return ("round", round_index)


class RotatingCoordinatorProcess(Process):
    """One participant of the rotating-coordinator consensus protocol.

    Failure-detector reports (``suspect(S)`` responses from any connected
    detector) are folded into a monotone local ``suspected`` set; with
    perfect detectors every report is accurate, so the union is too.
    """

    def __init__(
        self,
        endpoint: int,
        n: int,
        detector_ids: Sequence[Hashable],
        proposals: Sequence[Hashable] = (0, 1),
    ) -> None:
        self.n = n
        self.detector_ids = tuple(detector_ids)
        connections = list(self.detector_ids) + [
            round_register_id(r) for r in range(n)
        ]
        super().__init__(endpoint, connections=connections, input_values=proposals)

    # locals = (phase, est, round, suspected)
    def initial_locals(self):
        return ("idle", None, 0, frozenset())

    def handle_input(self, locals_value, action: Action):
        phase, est, round_index, suspected = locals_value
        if action.kind == "init":
            if phase == "idle":
                return ("run", action.args[1], 0, suspected)
            return locals_value
        if action.kind != "respond":
            return locals_value
        service, _, response = action.args
        if isinstance(response, tuple) and response[0] == "suspect":
            return (phase, est, round_index, suspected | response[1])
        if phase == "await-ack" and service == round_register_id(round_index):
            # Coordinator's write landed: advance to the next round.
            return ("run", est, round_index + 1, suspected)
        if phase == "await-read" and service == round_register_id(round_index):
            if isinstance(response, tuple) and response[0] == "value":
                if response[1] != UNSET:
                    return ("run", response[1], round_index + 1, suspected)
                # Nothing written yet: re-enter the poll loop.
                return ("run", est, round_index, suspected)
        return locals_value

    def next_action(self, locals_value):
        phase, est, round_index, suspected = locals_value
        if phase != "run":
            return None, locals_value
        if round_index >= self.n:
            return decide(self.endpoint, est), ("done", est, round_index, suspected)
        coordinator = round_index
        if coordinator == self.endpoint:
            return (
                invoke(round_register_id(round_index), self.endpoint, write(est)),
                ("await-ack", est, round_index, suspected),
            )
        if coordinator in suspected:
            # Perfect accuracy: the coordinator really failed; skip it.
            return None, ("run", est, round_index + 1, suspected)
        return (
            invoke(round_register_id(round_index), self.endpoint, read()),
            ("await-read", est, round_index, suspected),
        )


def _round_registers(n: int, proposals: Sequence[Hashable]) -> list[CanonicalRegister]:
    values = (UNSET,) + tuple(proposals)
    endpoints = tuple(range(n))
    return [
        CanonicalRegister(
            round_register_id(r), endpoints=endpoints, values=values, initial=UNSET
        )
        for r in range(n)
    ]


def consensus_via_pairwise_fds_system(
    n: int, proposals: Sequence[Hashable] = (0, 1)
) -> DistributedSystem:
    """Consensus for any number of failures from 1-resilient 2-process FDs.

    The Section 6.3 headline: every pair shares a 1-resilient (hence
    wait-free) 2-process perfect detector; no failure pattern silences
    the detectors a live process relies on, so the rotating coordinator
    terminates under up to ``n - 1`` failures.
    """
    endpoints = tuple(range(n))
    detectors = [
        PerfectFailureDetector(
            service_id=pair_detector_id(i, j), endpoints=(i, j), resilience=1
        )
        for i, j in combinations(endpoints, 2)
    ]
    processes = [
        RotatingCoordinatorProcess(
            i,
            n,
            detector_ids=[pair_detector_id(i, j) for j in endpoints if j != i],
            proposals=proposals,
        )
        for i in endpoints
    ]
    return DistributedSystem(
        processes, services=detectors, registers=_round_registers(n, proposals)
    )


def consensus_with_shared_fd_system(
    n: int,
    fd_resilience: int,
    proposals: Sequence[Hashable] = (0, 1),
) -> DistributedSystem:
    """Rotating coordinator over ONE n-process detector (Theorem 10 shape).

    With ``fd_resilience = n - 1`` the detector is wait-free and the
    protocol solves consensus for any number of failures.  With
    ``fd_resilience = f < n - 1`` this is the Theorem 10 doomed
    candidate: ``f + 1`` failures may silence the (all-connected)
    detector, leaving pollers of a crashed coordinator stuck forever.
    """
    endpoints = tuple(range(n))
    detector = PerfectFailureDetector(
        service_id="P", endpoints=endpoints, resilience=fd_resilience
    )
    processes = [
        RotatingCoordinatorProcess(i, n, detector_ids=["P"], proposals=proposals)
        for i in endpoints
    ]
    return DistributedSystem(
        processes, services=[detector], registers=_round_registers(n, proposals)
    )
