"""Job execution: the bridge from a queued job to the analysis pipeline.

:func:`execute_job` runs synchronously inside a fleet worker thread and
reuses the repo's machinery end to end rather than duplicating any of
it: the candidate is built from the registry, the exploration runs
through :class:`~repro.engine.ExplorationEngine` (gaining the PR-4
crash-recovery worker pool, chaos plans from ``REPRO_CHAOS``, and
checkpoint/resume), progress flows through the PR-5
:class:`~repro.obs.progress.ProgressReporter` plumbing via
:class:`JobProgressReporter`, and the verdict comes from
:func:`repro.analysis.refute_candidate` — byte-for-byte the JSON the
CLI's ``refute --json`` path emits.

Checkpoints land in a per-cache-key directory under the server's data
dir.  The engine names checkpoint files by each exploration's root
digest, so a restarted server re-running the job with ``resume=True``
continues the interrupted stage instead of starting over; the directory
is removed once the job reaches a terminal verdict.

Jobs requesting a disk-backed state store (``"store": "sqlite"`` or
``"mmap"`` in the spec — backend names only, never client paths) get a
per-cache-key store directory next to the checkpoints; it is likewise
removed at a terminal verdict, and a restarted server resumes from the
store's delta segments.  A spec's ``rss_limit_mb`` is clamped to the
server's ``max_rss_limit_mb`` and recorded in the engine report — the
server does *not* setrlimit (jobs share the server process); enforcement
is the operator's, via ``repro refute --rss-limit-mb`` or the service
manager.
"""

from __future__ import annotations

import shutil
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..analysis.explorer import ExplorationBudget
from ..engine import ExplorationEngine, ReductionConfig, StoreConfig
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.progress import ProgressReporter
from ..obs.sinks import NULL_TRACER, Tracer
from .jobs import CANCELLED, COMPLETED, EXHAUSTED, FAILED, Job
from .wire import error_document


class JobProgressReporter(ProgressReporter):
    """Progress reporting into a job's event stream instead of stderr.

    The engine drives this exactly like the TTY reporter (per round in
    parallel runs, every few hundred expansions sequentially); instead
    of rendering a line it publishes a structured snapshot through the
    supplied callback, which the fleet routes onto the job's event
    buffer for ``GET /jobs/{id}/events`` streaming.
    """

    def __init__(self, publish: Callable[[dict], None], interval_seconds: float = 0.2) -> None:
        super().__init__(stream=_NullStream(), interval_seconds=interval_seconds)
        self._publish = publish

    def update(
        self,
        *,
        states,
        frontier,
        workers,
        elapsed,
        budget=None,
        force=False,
        spilled=None,
        flush_ms=None,
    ):
        now = self._clock()
        if not force and now - self._last_render < self.interval_seconds:
            return False
        self._last_render = now
        self.renders += 1
        snapshot = {
            "kind": "progress",
            "states": states,
            "frontier": frontier,
            "workers": workers,
            "elapsed": round(elapsed, 3),
        }
        if spilled is not None:
            snapshot["spilled"] = spilled
        if flush_ms is not None:
            snapshot["flush_ms"] = round(flush_ms, 3)
        self._publish(snapshot)
        return True

    def finish(self) -> None:
        pass


class _NullStream:
    def write(self, text: str) -> None:  # pragma: no cover - never driven
        pass

    def flush(self) -> None:  # pragma: no cover - never driven
        pass


@dataclass
class JobOutcome:
    """What a worker thread hands back to the fleet."""

    state: str
    verdict: dict | None = None
    error: dict | None = None
    engine_report: dict | None = None


def job_checkpoint_dir(data_dir: str | Path, key: bytes) -> Path:
    """Where a job's engine checkpoints live (per cache key)."""
    return Path(data_dir) / "checkpoints" / key.hex()


def job_store_dir(data_dir: str | Path, key: bytes) -> Path:
    """Where a job's disk-backed state store lives (per cache key)."""
    return Path(data_dir) / "stores" / key.hex()


def _job_store(spec, data_dir, key: bytes, flush_interval: int):
    """The engine ``store=`` argument for a job, or ``None``.

    Backend name comes from the validated spec (:data:`~.wire.STORES`
    members only); the path is always server-chosen.  Without a data dir
    the store gets ``path=None`` — a scratch directory the store deletes
    on close — so disk-bounded RSS still works, just without resume.
    """
    if spec.store is None or spec.store == "memory":
        return spec.store
    return StoreConfig(
        backend=spec.store,
        path=None if data_dir is None else job_store_dir(data_dir, key),
        flush_interval=flush_interval,
    )


def execute_job(
    job: Job,
    *,
    data_dir: str | Path | None,
    publish: Callable[[dict], None],
    metrics: MetricsRegistry = NULL_METRICS,
    tracer: Tracer = NULL_TRACER,
    max_engine_workers: int = 1,
    checkpoint_interval: int = 50_000,
    max_rss_limit_mb: int | None = None,
    run=None,
) -> JobOutcome:
    """Run one job to a terminal outcome (worker-thread entry point).

    Every exception is folded into the outcome: the fleet must never die
    because a candidate was malformed or a budget ran out.  Budget
    exhaustion and cancellation surface as their own states with the
    standard error document (checkpoint path and resume command
    included), so a client can grow the budget and resubmit — the rerun
    resumes from the checkpoint.

    ``run`` is the job's :class:`~repro.obs.ledger.RunHandle` (or run-id
    string) when the server keeps a run ledger; the engine heartbeats it
    from this worker thread (heartbeats are plain throttled file writes,
    safe off the event loop) and stamps the id into checkpoint metadata.
    """
    spec = job.spec
    checkpoint_dir = (
        None if data_dir is None else job_checkpoint_dir(data_dir, job.key)
    )
    try:
        from ..analysis import refute_candidate

        system = spec.build()
        reduction = ReductionConfig.from_name(spec.reduction)
        rss_limit_mb = spec.rss_limit_mb
        if rss_limit_mb is not None and max_rss_limit_mb is not None:
            rss_limit_mb = min(rss_limit_mb, max_rss_limit_mb)
        engine = ExplorationEngine(
            workers=min(spec.workers, max_engine_workers),
            budget=spec.budget,
            store=_job_store(spec, data_dir, job.key, checkpoint_interval),
            checkpoint_dir=checkpoint_dir,
            flush_interval=checkpoint_interval,
            resume=checkpoint_dir is not None,
            rss_limit_mb=rss_limit_mb,
            progress=JobProgressReporter(publish),
            cancel=job.cancel_event,
            tracer=tracer,
            metrics=metrics,
            run=run,
        )
        verdict = refute_candidate(
            system,
            tracer=tracer,
            metrics=metrics,
            engine=engine,
            reduction=reduction if reduction.enabled else None,
        )
    except ExplorationBudget as budget:
        report = _last_report(locals())
        payload = budget.to_json() if hasattr(budget, "to_json") else {}
        extra = {
            name: value
            for name, value in payload.items()
            if name not in ("error", "detail", "status", "version")
        }
        if getattr(budget, "resource", None) == "cancelled" or job.cancel_event.is_set():
            return JobOutcome(
                state=CANCELLED,
                error=error_document(499, "cancelled", str(budget), **extra),
                engine_report=report,
            )
        return JobOutcome(
            state=EXHAUSTED,
            error=error_document(200, "budget_exhausted", str(budget), **extra),
            engine_report=report,
        )
    except Exception as error:  # noqa: BLE001 - the fleet must survive anything
        return JobOutcome(
            state=FAILED,
            error=error_document(
                500,
                "job_failed",
                f"{type(error).__name__}: {error}",
                traceback=traceback.format_exc(limit=8),
            ),
        )
    if checkpoint_dir is not None:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    if data_dir is not None and spec.store not in (None, "memory"):
        shutil.rmtree(job_store_dir(data_dir, job.key), ignore_errors=True)
    return JobOutcome(
        state=COMPLETED,
        verdict=verdict.to_json(),
        engine_report=(
            None if engine.last_report is None else engine.last_report.to_json()
        ),
    )


def _last_report(frame_locals: dict) -> dict | None:
    engine = frame_locals.get("engine")
    if engine is None or engine.last_report is None:
        return None
    return engine.last_report.to_json()
