"""Job records, their event streams, and the restart journal.

A :class:`Job` is the unit the scheduler queues and the fleet runs.  Its
lifecycle::

    queued -> running -> completed | exhausted | failed | cancelled
         \\--------------------------------------^ (cancel while queued)

Each job carries an append-only **event buffer** (state transitions plus
engine progress snapshots) with future-based wakeups, which is what
``GET /jobs/{id}/events`` streams; events are published from worker
threads via ``loop.call_soon_threadsafe``, so buffer mutation stays on
the event loop.

The :class:`JobStore` persists a JSONL **journal** (``submit`` and
``done`` records).  On restart, submitted-but-not-done jobs are
recreated and re-enqueued with ``resume=True``; together with the
engine's root-digest checkpoints under the job's work directory this is
the resume-on-restart guarantee — a server killed mid-exploration picks
the work back up instead of orphaning it.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import secrets
import threading
import time
from pathlib import Path

from .wire import JobSpec

#: Lifecycle states a job can report.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
EXHAUSTED = "exhausted"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL = frozenset({COMPLETED, EXHAUSTED, FAILED, CANCELLED})


class Job:
    """One submitted analysis: spec, cache key, lifecycle, event stream."""

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        key: bytes,
        *,
        resume: bool = False,
        clock=time.time,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.key = key
        self.resume = resume
        self.state = QUEUED
        self.submitted_at = clock()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.verdict: dict | None = None
        self.error: dict | None = None
        self.engine_report: dict | None = None
        self.cached = False
        #: Run-ledger identity minted when the fleet dispatches this job
        #: (``None`` for cache hits and ledger-less servers); links the
        #: job document to ``repro runs show <run_id>``.
        self.run_id: str | None = None
        self.cancel_event = threading.Event()
        self._clock = clock
        self.events: list[dict] = []
        self._waiters: list[asyncio.Future] = []
        self.publish({"kind": "state", "state": QUEUED})

    # -- events ---------------------------------------------------------------

    def publish(self, event: dict) -> None:
        """Append an event and wake streamers (event-loop thread only)."""
        event = dict(event)
        event.setdefault("t", round(self._clock(), 3))
        event["job"] = self.id
        self.events.append(event)
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)
        self._waiters.clear()

    async def wait_events(self, index: int) -> tuple[list[dict], bool]:
        """Events from ``index`` on (blocking until some exist), plus done."""
        while index >= len(self.events) and self.state not in TERMINAL:
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            await waiter
        return self.events[index:], self.state in TERMINAL

    # -- lifecycle ------------------------------------------------------------

    def mark_running(self) -> None:
        self.state = RUNNING
        self.started_at = self._clock()
        self.publish({"kind": "state", "state": RUNNING, "resume": self.resume})

    def finish(
        self,
        state: str,
        *,
        verdict: dict | None = None,
        error: dict | None = None,
        engine_report: dict | None = None,
    ) -> None:
        assert state in TERMINAL, state
        self.state = state
        self.finished_at = self._clock()
        self.verdict = verdict
        self.error = error
        self.engine_report = engine_report
        self.publish({"kind": "state", "state": state})

    @property
    def wall_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_json(self) -> dict:
        """The job document ``GET /jobs/{id}`` serves."""
        return {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_json(),
            "key": self.key.hex(),
            "cached": self.cached,
            "resumed": self.resume,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "verdict": self.verdict,
            "error": self.error,
            "engine": self.engine_report,
            "run_id": self.run_id,
        }


class JobStore:
    """In-memory job table with an append-only JSONL journal.

    ``journal_path=None`` disables persistence (unit tests, ephemeral
    servers).  The journal holds ``{"op": "submit", ...}`` and
    ``{"op": "done", ...}`` records; :meth:`recover` replays it and
    returns the jobs that were in flight, ready to re-enqueue.
    """

    def __init__(self, journal_path: str | Path | None = None, *, clock=time.time) -> None:
        self.journal_path = None if journal_path is None else Path(journal_path)
        self._clock = clock
        self._jobs: dict[str, Job] = {}
        self._sequence = itertools.count(1)

    def __len__(self) -> int:
        return len(self._jobs)

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def new_job_id(self) -> str:
        return f"job-{next(self._sequence):06d}-{secrets.token_hex(3)}"

    def create(self, spec: JobSpec, key: bytes, *, resume: bool = False) -> Job:
        job = Job(self.new_job_id(), spec, key, resume=resume, clock=self._clock)
        self._jobs[job.id] = job
        self._append(
            {
                "op": "submit",
                "id": job.id,
                "spec": spec.to_json(),
                "key": key.hex(),
                "submitted_at": job.submitted_at,
            }
        )
        return job

    def record_done(self, job: Job) -> None:
        """Journal a terminal transition (idempotent per job)."""
        self._append(
            {
                "op": "done",
                "id": job.id,
                "state": job.state,
                "finished_at": job.finished_at,
                "run_id": job.run_id,
            }
        )

    # -- journal --------------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self.journal_path is None:
            return
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.journal_path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(record, sort_keys=True) + "\n")

    def recover(self) -> list[Job]:
        """Replay the journal; returns in-flight jobs to re-enqueue.

        Recovered jobs keep their original ids (clients polling across
        the restart keep working) and are marked ``resume=True`` so the
        runner picks up any engine checkpoint under the job's work
        directory.  Jobs whose ``done`` record exists are *not*
        recreated: their verdicts live in the verdict cache, which has
        its own persistence.
        """
        if self.journal_path is None or not self.journal_path.exists():
            return []
        submitted: dict[str, dict] = {}
        with open(self.journal_path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn tail from the crash is expected
                if record.get("op") == "submit":
                    submitted[record["id"]] = record
                elif record.get("op") == "done":
                    submitted.pop(record.get("id"), None)
        recovered = []
        for record in submitted.values():
            try:
                spec = JobSpec.from_json(record["spec"])
                key = bytes.fromhex(record["key"])
            except (KeyError, ValueError, TypeError):
                continue
            job = Job(record["id"], spec, key, resume=True, clock=self._clock)
            job.submitted_at = record.get("submitted_at", job.submitted_at)
            self._jobs[job.id] = job
            recovered.append(job)
        if recovered:
            # Keep fresh ids clear of recovered ones.
            highest = 0
            for job_id in self._jobs:
                try:
                    highest = max(highest, int(job_id.split("-")[1]))
                except (IndexError, ValueError):
                    continue
            self._sequence = itertools.count(highest + 1)
        return recovered
