"""Wire schemas: job specs, documents, and error envelopes.

Everything that crosses the HTTP boundary is defined here, so the rest
of the serving layer works with validated dataclasses instead of raw
dicts.  The module is deliberately import-light (no asyncio, no engine)
— the CLI imports it at parser-build time for the candidate registry and
the package version.

A job request is one JSON object::

    {
      "candidate": "tob",          // required: see CANDIDATES
      "n": 3,                      // processes (default 3)
      "f": 1,                      // service resilience (default 1)
      "budget": {"max_states": 200000, "deadline_seconds": 60},
      "workers": 1,                // engine workers (server-clamped)
      "reduction": "none",         // none | symmetry | por | full
      "store": "sqlite",           // memory | sqlite | mmap (backend name only)
      "rss_limit_mb": 1024,        // RSS ceiling hint (server-clamped)
      "proposals": {"0": 0, "1": 1},  // optional: cache-key root inputs
      "tenant": "alice"            // fair-queueing identity
    }

``store`` names a :mod:`repro.engine.store` *backend*, never a path —
clients do not get to choose where the server writes; disk-backed
stores live under the server's own data directory.  ``rss_limit_mb``
is clamped to the server's ``max_rss_limit_mb`` the same way
``workers`` is clamped to ``max_engine_workers``.

``tenant`` may instead arrive as an ``X-Repro-Tenant`` header; the body
wins when both are present.  ``proposals`` only influences the cache
key's root state (the refutation pipeline itself explores every
initialization); omitted, the balanced 0/1 assignment is used — the
probe/bench convention.

The job document (``GET /jobs/{id}``) additionally carries ``run_id``:
the run-ledger identity minted when the fleet dispatched the job
(``null`` for cache hits and ledger-less servers).  Feed it to ``repro
runs show <run_id>`` — pointed at the server's ``<data_dir>/runs`` —
to reconstruct the engine run behind the job, including after a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..engine.budget import DEFAULT_BUDGET, Budget

#: The candidates a job may name, with the blurbs ``repro list`` prints.
#: Populated by :func:`register_candidate`; kept as a plain name->blurb
#: dict because the CLI and server treat it as the authoritative menu.
CANDIDATES: dict = {}

#: name -> builder(n, resilience) -> DistributedSystem.
_BUILDERS: dict = {}


def register_candidate(name: str, blurb: str, builder) -> None:
    """Register a candidate system in the serving/CLI registry.

    ``builder(n, resilience)`` must return a
    :class:`~repro.system.DistributedSystem`; it should import its
    protocol lazily so this module stays import-light.  Registering an
    existing name replaces it (last registration wins), so downstream
    code can shadow a built-in with a variant.
    """
    if not name or not isinstance(name, str):
        raise WireError(f"candidate name must be a nonempty string, got {name!r}")
    CANDIDATES[name] = blurb
    _BUILDERS[name] = builder


def _delegation(n: int, resilience: int):
    from ..protocols import delegation_consensus_system

    return delegation_consensus_system(n, resilience)


def _tob(n: int, resilience: int):
    from ..protocols import tob_delegation_system

    return tob_delegation_system(n, resilience)


def _last_writer(n: int, resilience: int):
    from ..protocols import last_writer_register_system

    return last_writer_register_system()


def _arbiter(n: int, resilience: int):
    from ..protocols.message_passing import arbiter_consensus_system

    return arbiter_consensus_system(max(n, 3), resilience)


def _exchange(n: int, resilience: int):
    from ..protocols.message_passing import exchange_consensus_system

    return exchange_consensus_system(resilience)


def _lossy_budget():
    from ..sim.faults import FaultBudget

    return FaultBudget(drop=1)


def _arbiter_lossy(n: int, resilience: int):
    from ..protocols.message_passing import arbiter_consensus_system

    return arbiter_consensus_system(max(n, 3), resilience, faults=_lossy_budget())


def _exchange_lossy(n: int, resilience: int):
    from ..protocols.message_passing import exchange_consensus_system

    return exchange_consensus_system(resilience, faults=_lossy_budget())

REDUCTIONS = ("none", "symmetry", "por", "full")

#: Backend names a job's ``store`` field may carry.  Bare names only —
#: a path in the request would let clients choose server filesystem
#: locations, so URIs are rejected at validation time.
STORES = ("memory", "sqlite", "mmap")

#: Submitted request bodies larger than this are refused with 413.
MAX_BODY_BYTES = 1 << 20

DEFAULT_TENANT = "anonymous"


class WireError(ValueError):
    """A request document failed validation; ``detail`` is client-safe."""

    def __init__(self, detail: str, status: int = 400) -> None:
        super().__init__(detail)
        self.detail = detail
        self.status = status


def package_version() -> str:
    """The installed package version, falling back to ``__version__``.

    Reads importlib metadata first so an installed wheel reports its
    true version even if the source tree drifts; source-tree runs (the
    common test path) fall back to :data:`repro.__version__`.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except Exception:  # pragma: no cover - metadata backend quirks
        pass
    from .. import __version__

    return __version__


register_candidate(
    "delegation",
    "n processes over one f-resilient consensus object (Thm 2)",
    _delegation,
)
register_candidate(
    "tob",
    "n processes over one f-resilient totally ordered broadcast (Thm 9)",
    _tob,
)
register_candidate(
    "last-writer",
    "2 processes, registers only, decide-the-last-write (Thm 2, register case)",
    _last_writer,
)
register_candidate(
    "arbiter",
    "n-1 proposers and an arbiter over an f-resilient network (2002 TR setting)",
    _arbiter,
)
register_candidate(
    "exchange",
    "2 processes swap values over an f-resilient network, decide min",
    _exchange,
)
register_candidate(
    "arbiter-lossy",
    "the arbiter candidate over a FaultyNetwork with a drop=1 budget",
    _arbiter_lossy,
)
register_candidate(
    "exchange-lossy",
    "the exchange candidate over a FaultyNetwork with a drop=1 budget",
    _exchange_lossy,
)


def build_system(name: str, n: int, resilience: int):
    """Instantiate the named candidate system (the CLI's registry too)."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise WireError(
            f"unknown candidate {name!r}; try: {', '.join(sorted(CANDIDATES))}"
        )
    return builder(n, resilience)


@dataclass(frozen=True)
class JobSpec:
    """A validated analysis request: what to refute, under which limits."""

    candidate: str
    n: int = 3
    resilience: int = 1
    budget: Budget = DEFAULT_BUDGET
    workers: int = 1
    reduction: str = "none"
    store: str | None = None  # backend name from STORES; None = engine default
    rss_limit_mb: int | None = None  # server-clamped ceiling hint
    proposals: tuple = ()  # sorted ((endpoint, value), ...) or () = balanced
    tenant: str = DEFAULT_TENANT

    def build(self):
        """The candidate :class:`~repro.system.DistributedSystem`."""
        return build_system(self.candidate, self.n, self.resilience)

    def root_proposals(self, system) -> dict:
        """The initialization assignment keying this job's cache root."""
        if self.proposals:
            return dict(self.proposals)
        return {
            endpoint: index % 2
            for index, endpoint in enumerate(system.process_ids)
        }

    @property
    def cost(self) -> int:
        """Deficit-round-robin cost, in kilostates of budgeted work."""
        states = self.budget.max_states
        if states is None:
            states = 1_000_000
        return max(1, -(-states // 1000))

    def to_json(self) -> dict:
        return {
            "candidate": self.candidate,
            "n": self.n,
            "f": self.resilience,
            "budget": self.budget.to_json(),
            "workers": self.workers,
            "reduction": self.reduction,
            "store": self.store,
            "rss_limit_mb": self.rss_limit_mb,
            "proposals": (
                {str(endpoint): value for endpoint, value in self.proposals}
                if self.proposals
                else None
            ),
            "tenant": self.tenant,
        }

    @classmethod
    def from_json(cls, document: object, *, default_tenant: str | None = None) -> "JobSpec":
        """Validate a request body into a spec; raises :class:`WireError`."""
        if not isinstance(document, Mapping):
            raise WireError("request body must be a JSON object")
        unknown = set(document) - {
            "candidate",
            "n",
            "f",
            "resilience",
            "budget",
            "workers",
            "reduction",
            "store",
            "rss_limit_mb",
            "proposals",
            "tenant",
        }
        if unknown:
            raise WireError(f"unknown field(s): {', '.join(sorted(unknown))}")
        candidate = document.get("candidate")
        if candidate not in CANDIDATES:
            raise WireError(
                f"candidate must be one of {', '.join(sorted(CANDIDATES))}; "
                f"got {candidate!r}"
            )
        if "f" in document and "resilience" in document:
            raise WireError("pass f or resilience, not both")
        n = _int_field(document, "n", default=3, minimum=1)
        resilience = _int_field(
            document,
            "f" if "f" in document else "resilience",
            default=1,
            minimum=0,
        )
        workers = _int_field(document, "workers", default=1, minimum=1)
        reduction = document.get("reduction", "none")
        if reduction not in REDUCTIONS:
            raise WireError(
                f"reduction must be one of {', '.join(REDUCTIONS)}; "
                f"got {reduction!r}"
            )
        store = document.get("store")
        if store is not None and store not in STORES:
            raise WireError(
                f"store must be one of {', '.join(STORES)} (a backend name, "
                f"not a path); got {store!r}"
            )
        rss_limit_mb = (
            None
            if document.get("rss_limit_mb") is None
            else _int_field(document, "rss_limit_mb", default=1, minimum=1)
        )
        try:
            budget = (
                DEFAULT_BUDGET
                if document.get("budget") is None
                else Budget.from_json(document["budget"])
            )
        except (TypeError, ValueError) as error:
            raise WireError(f"bad budget: {error}") from None
        proposals: tuple = ()
        raw = document.get("proposals")
        if raw is not None:
            if not isinstance(raw, Mapping):
                raise WireError("proposals must be a JSON object")
            try:
                proposals = tuple(
                    sorted((int(endpoint), value) for endpoint, value in raw.items())
                )
            except (TypeError, ValueError):
                raise WireError("proposal endpoints must be integers") from None
        tenant = document.get("tenant", default_tenant) or DEFAULT_TENANT
        if not isinstance(tenant, str) or len(tenant) > 128:
            raise WireError("tenant must be a string of at most 128 characters")
        return cls(
            candidate=candidate,
            n=n,
            resilience=resilience,
            budget=budget,
            workers=workers,
            reduction=reduction,
            store=store,
            rss_limit_mb=rss_limit_mb,
            proposals=proposals,
            tenant=tenant,
        )


def _int_field(document: Mapping, name: str, *, default: int, minimum: int) -> int:
    value = document.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise WireError(f"{name} must be >= {minimum}, got {value}")
    return value


def error_document(status: int, error: str, detail: str, **extra) -> dict:
    """The uniform JSON error envelope (always carries the version)."""
    document = {
        "error": error,
        "detail": detail,
        "status": status,
        "version": package_version(),
    }
    document.update(extra)
    return document
