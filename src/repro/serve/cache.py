"""The verdict cache: canonical root fingerprints, budget dominance.

The millions-of-users path is a cache hit: the paper's artifact is a
*decision* about a candidate protocol, so identical questions must be
answered without re-exploration.  Two design points make the cache
sound rather than merely fast:

**Keying** — :func:`job_key` fingerprints the orbit-minimal
representative of the job's root state under the candidate's *full*
declared symmetry group (every permutation from
:func:`repro.engine.reduction._symmetry_permutations`, not just the
root's stabilizer as the PR-3 :class:`~repro.engine.reduction.Canonicalizer`
uses during exploration).  Symmetry-equivalent submissions — e.g. the
same candidate with relabeled proposals — therefore collapse onto one
entry, while the blake2b fingerprint from
:mod:`repro.engine.fingerprint` keeps the key canonical across
processes and restarts.  Candidate shape (name, ``n``, ``f``) and the
reduction mode are mixed into the key too: the root state alone cannot
distinguish analysis modes that explore different graphs.

**Budget dominance** — a verdict is only as strong as the budget it ran
under, so an entry satisfies a request only when the *cached* budget
dominates the *requested* one componentwise (``None`` = unlimited
dominates everything; otherwise cached >= requested).  A verdict
computed under ``max_states=10_000`` never answers a
``max_states=1_000_000`` request: the larger budget could explore
states the cached run never saw.

Entries persist as JSONL (append-only, replayed at startup), so a
restarted server keeps answering from cache.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..engine.budget import Budget
from ..engine.fingerprint import canonical_bytes, fingerprint
from ..engine.reduction import _symmetry_permutations
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from .wire import JobSpec


def canonical_root(system, root):
    """The orbit-minimal representative of ``root`` under the full group.

    Unlike the exploration canonicalizer (stabilizer of the root — it
    must keep ``canon(root) == root``), cache keying wants the whole
    declared group: permuting the *inputs* of symmetric processes yields
    a different root whose analysis is nonetheless identical, and the
    orbit minimum is the same for every member.
    """
    permuters, _, _ = _symmetry_permutations(system)
    best, best_key = root, tuple(canonical_bytes(part) for part in root)
    for permuter in permuters:
        image = permuter.apply(root)
        key = tuple(canonical_bytes(part) for part in image)
        if key < best_key:
            best, best_key = image, key
    return best


def job_key(spec: JobSpec, system=None) -> bytes:
    """The cache/checkpoint key of a job: candidate shape + canonical root."""
    if system is None:
        system = spec.build()
    root = system.initialization(spec.root_proposals(system)).final_state
    return fingerprint(
        (
            spec.candidate,
            spec.n,
            spec.resilience,
            spec.reduction,
            canonical_root(system, root),
        )
    )


def budget_dominates(cached: Budget, requested: Budget) -> bool:
    """True iff a verdict computed under ``cached`` answers ``requested``."""
    for name in ("max_states", "max_transitions", "deadline_seconds"):
        have = getattr(cached, name)
        want = getattr(requested, name)
        if have is None:
            continue
        if want is None or have < want:
            return False
    return True


@dataclass(frozen=True)
class CacheEntry:
    """One cached verdict and the budget that produced it."""

    key: bytes
    budget: Budget
    verdict: dict
    job_id: str
    stored_at: float

    def to_json(self) -> dict:
        return {
            "key": self.key.hex(),
            "budget": self.budget.to_json(),
            "verdict": self.verdict,
            "job_id": self.job_id,
            "stored_at": self.stored_at,
        }

    @classmethod
    def from_json(cls, document: dict) -> "CacheEntry":
        return cls(
            key=bytes.fromhex(document["key"]),
            budget=Budget.from_json(document["budget"]),
            verdict=document["verdict"],
            job_id=document["job_id"],
            stored_at=float(document["stored_at"]),
        )


class VerdictCache:
    """LRU verdict cache with budget-dominance lookup and JSONL persistence.

    Per key the cache holds the *frontier* of incomparable entries: a
    new entry evicts every stored entry whose budget it dominates, and
    is dropped if a stored entry already dominates it.  Lookup returns
    any entry dominating the requested budget.  ``capacity`` bounds the
    number of keys (LRU eviction, surfaced via ``serve.cache.evictions``).
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        path: str | Path | None = None,
        metrics: MetricsRegistry = NULL_METRICS,
        clock=time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = None if path is None else Path(path)
        self.metrics = metrics
        self._clock = clock
        self._entries: OrderedDict[bytes, list[CacheEntry]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if self.path is not None and self.path.exists():
            self._load()

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    # -- lookup / store -------------------------------------------------------

    def get(self, key: bytes, budget: Budget) -> CacheEntry | None:
        """An entry whose budget dominates ``budget``, or ``None``."""
        entries = self._entries.get(key)
        hit = None
        if entries is not None:
            self._entries.move_to_end(key)
            for entry in entries:
                if budget_dominates(entry.budget, budget):
                    hit = entry
                    break
        if hit is None:
            self.misses += 1
            self.metrics.counter("serve.cache.misses").inc()
        else:
            self.hits += 1
            self.metrics.counter("serve.cache.hits").inc()
        return hit

    def put(self, key: bytes, budget: Budget, verdict: dict, job_id: str) -> CacheEntry:
        """Store a verdict; maintains the per-key dominance frontier."""
        entry = CacheEntry(
            key=key,
            budget=budget,
            verdict=verdict,
            job_id=job_id,
            stored_at=self._clock(),
        )
        entries = self._entries.get(key)
        if entries is None:
            entries = self._entries[key] = []
        else:
            self._entries.move_to_end(key)
            for existing in entries:
                if budget_dominates(existing.budget, budget):
                    return existing  # already answered at least as strongly
            entries[:] = [
                existing
                for existing in entries
                if not budget_dominates(budget, existing.budget)
            ]
        entries.append(entry)
        self.metrics.gauge("serve.cache.entries").set(len(self))
        self._persist(entry)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.metrics.counter("serve.cache.evictions").inc()
        return entry

    # -- persistence ----------------------------------------------------------

    def _persist(self, entry: CacheEntry) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(entry.to_json(), sort_keys=True) + "\n")

    def _load(self) -> None:
        assert self.path is not None
        with open(self.path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = CacheEntry.from_json(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue  # a torn final line must not poison startup
                self._entries.setdefault(entry.key, []).append(entry)
        self.metrics.gauge("serve.cache.entries").set(len(self))

    def stats(self) -> dict:
        return {
            "entries": len(self),
            "keys": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
