"""``repro.serve`` — exploration-as-a-service.

A long-running asyncio HTTP/JSON server (``repro serve``) that answers
candidate-protocol analysis queries with the same verdicts the CLI
produces, adding the serving-layer concerns the one-shot CLI cannot:
fingerprint-keyed verdict caching with budget dominance, per-tenant
admission control and deficit-round-robin fair queueing, watermark load
shedding, and journal + checkpoint based resume across restarts.

The interesting exports:

* :class:`ServeConfig` / :class:`VerdictServer` — the server itself;
  :func:`serve_forever` runs it in the foreground (the CLI body) and
  :func:`run_in_thread` on a daemon thread (tests, benchmarks).
* :class:`JobSpec` — the wire schema of a submission.
* :func:`job_key` / :class:`VerdictCache` — canonical-root cache keying
  and the dominance-aware cache.
* :class:`FairScheduler` / :class:`TokenBucket` / :class:`LoadShedder` —
  the admission and fairness machinery, usable standalone.
"""

from .app import ServeConfig, ServerHandle, VerdictServer, run_in_thread, serve_forever
from .cache import CacheEntry, VerdictCache, budget_dominates, canonical_root, job_key
from .jobs import (
    CANCELLED,
    COMPLETED,
    EXHAUSTED,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL,
    Job,
    JobStore,
)
from .runner import (
    JobOutcome,
    JobProgressReporter,
    execute_job,
    job_checkpoint_dir,
    job_store_dir,
)
from .scheduler import FairScheduler, LoadShedder, ShedDecision, TokenBucket
from .wire import (
    CANDIDATES,
    DEFAULT_TENANT,
    MAX_BODY_BYTES,
    REDUCTIONS,
    STORES,
    JobSpec,
    WireError,
    build_system,
    error_document,
    package_version,
    register_candidate,
)

__all__ = [
    "CANDIDATES",
    "CANCELLED",
    "COMPLETED",
    "CacheEntry",
    "DEFAULT_TENANT",
    "EXHAUSTED",
    "FAILED",
    "FairScheduler",
    "Job",
    "JobOutcome",
    "JobProgressReporter",
    "JobSpec",
    "JobStore",
    "LoadShedder",
    "MAX_BODY_BYTES",
    "QUEUED",
    "REDUCTIONS",
    "RUNNING",
    "STORES",
    "ServeConfig",
    "ServerHandle",
    "ShedDecision",
    "TERMINAL",
    "TokenBucket",
    "VerdictCache",
    "VerdictServer",
    "WireError",
    "budget_dominates",
    "build_system",
    "canonical_root",
    "error_document",
    "execute_job",
    "job_checkpoint_dir",
    "job_key",
    "job_store_dir",
    "package_version",
    "register_candidate",
    "run_in_thread",
    "serve_forever",
]
