"""The asyncio verdict server: HTTP surface, worker fleet, lifecycle.

``repro serve`` stands up a long-running process answering candidate
analysis queries over HTTP/JSON — stdlib only, one event loop, a
bounded thread fleet running the engine:

==========================  =================================================
``POST /jobs``              submit a job (spec in the body); answers from the
                            verdict cache when a dominating entry exists,
                            coalesces onto an identical in-flight job, sheds
                            with 429 + ``Retry-After`` past the watermarks
``GET /jobs``               id/state/tenant summary of every known job
``GET /jobs/{id}``          full job document (verdict when terminal)
``GET /jobs/{id}/events``   server-sent event stream: state transitions and
                            engine progress snapshots, closed on completion
``DELETE /jobs/{id}``       cancel (queued jobs dequeue; running jobs stop
                            cooperatively through the engine's cancel hook,
                            leaving a resumable checkpoint)
``GET /metrics``            Prometheus text exposition of the live registry
``GET /healthz``            liveness + version + queue/cache/fleet summary
==========================  =================================================

Connections are one-shot (``Connection: close``): every client we care
about — the example script, the CI smoke, curl — issues short
independent requests, and closing per request keeps the server free of
keep-alive state machines.  The event stream writes SSE frames until
the job reaches a terminal state.

Fault tolerance composes with the layers below: worker-pool crashes
inside a job are absorbed by the PR-4 recovery machinery (the job just
reports its ``engine`` summary), a fleet thread can never die of a job
exception (:func:`~repro.serve.runner.execute_job` folds everything
into the outcome), and a killed *server* resumes in-flight jobs on
restart from the journal plus the engine's root-digest checkpoints.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

from ..obs.ledger import RunLedger, resolve_runs_dir
from ..obs.metrics import MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from .cache import VerdictCache, budget_dominates, job_key
from .jobs import CANCELLED, COMPLETED, QUEUED, RUNNING, TERMINAL, Job, JobStore
from .runner import execute_job, job_checkpoint_dir, job_store_dir
from .scheduler import FairScheduler, LoadShedder, TokenBucket
from .wire import (
    MAX_BODY_BYTES,
    JobSpec,
    WireError,
    error_document,
    package_version,
)

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass
class ServeConfig:
    """Everything tunable about one server instance.

    ``fleet=0`` is a valid accept-only mode (jobs queue but never run)
    used by tests and drain scenarios.  ``data_dir=None`` disables all
    persistence: no journal, no cache file, no checkpoints — jobs run
    memory-only and a restart forgets everything.

    ``runs_dir`` names the run-ledger directory (see
    :mod:`repro.obs.ledger`); ``None`` defaults to ``<data_dir>/runs``
    when a data dir is set and disables the ledger otherwise, so an
    ephemeral server stays write-free.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    fleet: int = 2
    max_engine_workers: int = 2
    data_dir: str | Path | None = None
    cache_capacity: int = 1024
    max_queue_depth: int = 64
    max_tenant_depth: int = 16
    quantum: int = 64
    tenant_rate: float = 5.0
    tenant_burst: float = 10.0
    checkpoint_interval: int = 20_000
    max_rss_limit_mb: int | None = None
    progress_interval_seconds: float = 0.2
    runs_dir: str | Path | None = None
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


class VerdictServer:
    """One serving instance: scheduler + cache + fleet behind HTTP."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = config.metrics
        self.tracer = config.tracer
        data_dir = None if config.data_dir is None else Path(config.data_dir)
        self.data_dir = data_dir
        self.cache = VerdictCache(
            config.cache_capacity,
            path=None if data_dir is None else data_dir / "cache.jsonl",
            metrics=self.metrics,
        )
        self.store = JobStore(
            None if data_dir is None else data_dir / "jobs.jsonl"
        )
        runs_dir = config.runs_dir
        if runs_dir is None:
            runs_dir = None if data_dir is None else data_dir / "runs"
        else:
            # An explicit value may also be a disabled spelling ("none",
            # "off") to run ledger-less even with a data dir.
            runs_dir = resolve_runs_dir(runs_dir)
        #: The run ledger every dispatched job registers in (None for
        #: fully ephemeral servers: no data dir, no explicit runs dir).
        self.ledger = None if runs_dir is None else RunLedger(runs_dir)
        self.scheduler = FairScheduler(config.quantum, metrics=self.metrics)
        self.shedder = LoadShedder(config.max_queue_depth, config.max_tenant_depth)
        self._buckets: dict[str, TokenBucket] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._fleet_tasks: list[asyncio.Task] = []
        self._server: asyncio.AbstractServer | None = None
        self._running: set[Job] = set()
        self._stopping = False
        self._started_at = time.time()
        self.port: int | None = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Recover the journal, bind the socket, launch the fleet."""
        recovered = self.store.recover()
        for job in recovered:
            self.scheduler.enqueue(job)
            self.metrics.counter("serve.jobs.recovered").inc()
        if self.config.fleet:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.fleet,
                thread_name_prefix="repro-serve",
            )
            self._fleet_tasks = [
                asyncio.create_task(self._fleet_worker(), name=f"fleet-{slot}")
                for slot in range(self.config.fleet)
            ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Drain gracefully: stop accepting, cancel in-flight work.

        Running jobs are stopped through the engine's cooperative cancel
        hook, which writes checkpoints on the way out; their terminal
        records are *not* journaled, so a subsequent server on the same
        data dir re-enqueues and resumes them — shutdown is
        indistinguishable from a crash as far as the resume guarantee
        is concerned.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for job in list(self._running):
            job.cancel_event.set()
        for task in self._fleet_tasks:
            task.cancel()
        if self._fleet_tasks:
            await asyncio.gather(*self._fleet_tasks, return_exceptions=True)
        if self._executor is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, partial(self._executor.shutdown, wait=True)
            )

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # -- the fleet ------------------------------------------------------------

    async def _fleet_worker(self) -> None:
        while True:
            job = await self.scheduler.next_job()
            if job.state != QUEUED:  # cancelled while queued
                continue
            await self._run_job(job)

    def _open_run(self, job: Job):
        """Mint the job's run-ledger record (``job_id <-> run_id`` link)."""
        if self.ledger is None:
            return None
        spec = job.spec
        artifacts = {}
        if self.data_dir is not None:
            artifacts["checkpoint_dir"] = str(job_checkpoint_dir(self.data_dir, job.key))
            if spec.store not in (None, "memory"):
                artifacts["store_dir"] = str(job_store_dir(self.data_dir, job.key))
        try:
            run = self.ledger.open(
                "serve",
                f"{spec.candidate}(n={spec.n},f={spec.resilience})",
                budget=spec.budget.to_json(),
                store=spec.store,
                workers=min(spec.workers, self.config.max_engine_workers),
                artifacts=artifacts,
                links={"job_id": job.id, "tenant": spec.tenant, "key": job.key.hex()},
                heartbeat_interval=self.config.progress_interval_seconds,
            )
        except OSError:  # pragma: no cover - ledger dir unwritable
            return None
        job.run_id = run.run_id
        job.publish({"kind": "run", "run_id": run.run_id})
        return run

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.mark_running()
        self._running.add(job)
        self.metrics.gauge("serve.inflight").set(len(self._running))
        publish = lambda event: loop.call_soon_threadsafe(job.publish, event)
        run = self._open_run(job)
        try:
            outcome = await loop.run_in_executor(
                self._executor,
                partial(
                    execute_job,
                    job,
                    data_dir=self.data_dir,
                    publish=publish,
                    metrics=self.metrics,
                    tracer=self.tracer,
                    max_engine_workers=self.config.max_engine_workers,
                    checkpoint_interval=self.config.checkpoint_interval,
                    max_rss_limit_mb=self.config.max_rss_limit_mb,
                    run=run,
                ),
            )
        finally:
            self._running.discard(job)
            self.metrics.gauge("serve.inflight").set(len(self._running))
        if self._stopping and outcome.state == CANCELLED:
            # Shutdown drain: leave the journal open for resume.  The
            # run record also stays non-terminal — once this process
            # exits, readers derive status=interrupted, which is what a
            # to-be-resumed run is.
            return
        job.finish(
            outcome.state,
            verdict=outcome.verdict,
            error=outcome.error,
            engine_report=outcome.engine_report,
        )
        if run is not None:
            report = outcome.engine_report or {}
            run.finish(
                outcome.state,
                verdict=outcome.verdict,
                phases=report.get("phase_seconds") or {},
                counters={
                    name: value
                    for name, value in report.items()
                    if isinstance(value, (int, float)) and not isinstance(value, bool)
                },
                peak_rss_kb=report.get("peak_rss_kb", 0) or 0,
                error=(
                    None
                    if outcome.error is None
                    else str(outcome.error.get("detail") or outcome.error.get("error"))
                ),
            )
        self.store.record_done(job)
        self.metrics.counter(f"serve.jobs.{outcome.state}").inc()
        wall = job.wall_seconds
        if wall is not None:
            self.shedder.observe_job_seconds(wall)
            self.metrics.histogram("serve.job_seconds").observe(wall)
        if outcome.state == COMPLETED and outcome.verdict is not None:
            self.cache.put(job.key, job.spec.budget, outcome.verdict, job.id)

    # -- HTTP plumbing --------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                method, path, headers, body = await _read_request(reader)
            except _HttpError as error:
                await _send_json(
                    writer,
                    error.status,
                    error_document(error.status, error.error, error.detail),
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return
            try:
                await self._route(method, path, headers, body, writer)
            except (ConnectionError, asyncio.IncompleteReadError):
                pass  # client went away mid-response
            except Exception as error:  # noqa: BLE001 - must answer something
                await _send_json(
                    writer,
                    500,
                    error_document(
                        500, "internal", f"{type(error).__name__}: {error}"
                    ),
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, method, path, headers, body, writer) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            await _send_json(writer, 200, self.health_document())
            return
        if path == "/metrics" and method == "GET":
            await _send_text(writer, 200, self.metrics_text(), "text/plain; version=0.0.4")
            return
        if path == "/jobs":
            if method == "POST":
                await self._submit(headers, body, writer)
                return
            if method == "GET":
                await _send_json(
                    writer,
                    200,
                    {
                        "jobs": [
                            {
                                "id": job.id,
                                "state": job.state,
                                "tenant": job.spec.tenant,
                                "candidate": job.spec.candidate,
                            }
                            for job in self.store.jobs()
                        ]
                    },
                )
                return
            await _send_json(
                writer, 405, error_document(405, "method_not_allowed", method)
            )
            return
        if path.startswith("/jobs/"):
            parts = path[len("/jobs/") :].split("/")
            job = self.store.get(parts[0])
            if job is None:
                await _send_json(
                    writer,
                    404,
                    error_document(404, "unknown_job", f"no job {parts[0]!r}"),
                )
                return
            if len(parts) == 1:
                if method == "GET":
                    await _send_json(writer, 200, job.to_json())
                    return
                if method == "DELETE":
                    await self._cancel(job, writer)
                    return
            elif len(parts) == 2 and parts[1] == "events" and method == "GET":
                await self._stream_events(job, writer)
                return
            await _send_json(
                writer, 405, error_document(405, "method_not_allowed", method)
            )
            return
        await _send_json(
            writer, 404, error_document(404, "not_found", f"no route {path!r}")
        )

    # -- handlers -------------------------------------------------------------

    async def _submit(self, headers, body, writer) -> None:
        try:
            document = json.loads(body.decode("utf-8")) if body else None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            await _send_json(
                writer, 400, error_document(400, "bad_json", str(error))
            )
            return
        try:
            spec = JobSpec.from_json(
                document, default_tenant=headers.get("x-repro-tenant")
            )
            system = spec.build()
        except WireError as error:
            await _send_json(
                writer,
                error.status,
                error_document(error.status, "bad_request", error.detail),
            )
            return
        key = job_key(spec, system)
        tenant = spec.tenant
        entry = self.cache.get(key, spec.budget)
        if entry is not None:
            await _send_json(
                writer,
                200,
                {
                    "id": entry.job_id,
                    "state": "completed",
                    "cached": True,
                    "key": key.hex(),
                    "stored_at": entry.stored_at,
                    "cache_budget": entry.budget.to_json(),
                    "verdict": entry.verdict,
                },
                extra_headers={"X-Repro-Cache": "hit"},
            )
            return
        for existing in self.store.jobs():
            if (
                existing.key == key
                and existing.state in (QUEUED, RUNNING)
                and budget_dominates(existing.spec.budget, spec.budget)
            ):
                self.metrics.counter("serve.jobs.coalesced").inc()
                await _send_json(
                    writer,
                    202,
                    {**existing.to_json(), "coalesced": True},
                    extra_headers={"Location": f"/jobs/{existing.id}"},
                )
                return
        shed = self.shedder.check(
            self.scheduler.depth,
            self.scheduler.tenant_depth(tenant),
            max(self.config.fleet, 1),
        )
        if shed is not None:
            self.metrics.counter("serve.shed").inc()
            self.metrics.counter(_tenant_metric("serve.rejected", tenant)).inc()
            await _send_json(
                writer,
                429,
                error_document(
                    429, "overloaded", shed.reason, retry_after=shed.retry_after
                ),
                extra_headers={"Retry-After": str(shed.retry_after)},
            )
            return
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.tenant_rate, self.config.tenant_burst
            )
        if not bucket.try_take():
            retry = round(bucket.retry_after(), 2)
            self.metrics.counter(_tenant_metric("serve.rejected", tenant)).inc()
            await _send_json(
                writer,
                429,
                error_document(
                    429, "rate_limited", f"tenant {tenant!r} over budget",
                    retry_after=retry,
                ),
                extra_headers={"Retry-After": str(retry)},
            )
            return
        job = self.store.create(spec, key)
        self.scheduler.enqueue(job)
        self.metrics.counter("serve.jobs.submitted").inc()
        self.metrics.counter(_tenant_metric("serve.admitted", tenant)).inc()
        await _send_json(
            writer,
            202,
            job.to_json(),
            extra_headers={"Location": f"/jobs/{job.id}"},
        )

    async def _cancel(self, job: Job, writer) -> None:
        if job.state in TERMINAL:
            await _send_json(writer, 200, job.to_json())
            return
        if job.state == QUEUED and self.scheduler.remove(job):
            job.finish(
                CANCELLED,
                error=error_document(499, "cancelled", "cancelled while queued"),
            )
            self.store.record_done(job)
            self.metrics.counter("serve.jobs.cancelled").inc()
        else:
            job.cancel_event.set()  # the engine exits at its next poll
        await _send_json(writer, 202, job.to_json())

    async def _stream_events(self, job: Job, writer) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        index = 0
        while True:
            events, done = await job.wait_events(index)
            for event in events:
                frame = f"data: {json.dumps(event, sort_keys=True)}\n\n"
                writer.write(frame.encode("utf-8"))
            await writer.drain()
            index += len(events)
            if done and index >= len(job.events):
                return

    # -- documents ------------------------------------------------------------

    def health_document(self) -> dict:
        states: dict[str, int] = {}
        for job in self.store.jobs():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "status": "ok",
            "version": package_version(),
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "fleet": self.config.fleet,
            "inflight": len(self._running),
            "queue_depth": self.scheduler.depth,
            "watermarks": {
                "max_queue_depth": self.config.max_queue_depth,
                "max_tenant_depth": self.config.max_tenant_depth,
            },
            "cache": self.cache.stats(),
            "jobs": states,
        }

    def metrics_text(self) -> str:
        from ..obs.export import prometheus_textfile

        self.metrics.gauge("serve.queue_depth").set(self.scheduler.depth)
        self.metrics.gauge("serve.inflight").set(len(self._running))
        self.metrics.gauge("serve.uptime_seconds").set(
            round(time.time() - self._started_at, 3)
        )
        return prometheus_textfile(self.metrics.snapshot())


def _tenant_metric(base: str, tenant: str) -> str:
    safe = tenant.replace("\\", "\\\\").replace('"', '\\"')
    return f'{base}{{tenant="{safe}"}}'


# -- HTTP primitives ----------------------------------------------------------


class _HttpError(Exception):
    def __init__(self, status: int, error: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.error = error
        self.detail = detail


async def _read_request(reader) -> tuple[str, str, dict, bytes]:
    request_line = await asyncio.wait_for(reader.readline(), timeout=30)
    if not request_line:
        raise ConnectionError("empty request")
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise _HttpError(400, "bad_request_line", request_line.decode("latin-1", "replace").strip()) from None
    headers: dict[str, str] = {}
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _HttpError(400, "bad_content_length", headers.get("content-length", "")) from None
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, "payload_too_large", f"body of {length} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


async def _send_json(writer, status: int, document: dict, *, extra_headers=None) -> None:
    body = json.dumps(document, sort_keys=True).encode("utf-8")
    await _send_raw(writer, status, body, "application/json", extra_headers)


async def _send_text(writer, status: int, text: str, content_type: str) -> None:
    await _send_raw(writer, status, text.encode("utf-8"), content_type, None)


async def _send_raw(writer, status, body: bytes, content_type, extra_headers) -> None:
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


# -- entry points --------------------------------------------------------------


async def _serve_async(config: ServeConfig, *, ready=None, banner=True) -> None:
    server = VerdictServer(config)
    await server.start()
    if ready is not None:
        ready(server)
    if banner:
        print(
            f"repro serve {package_version()} listening on {server.url} "
            f"(fleet={config.fleet}, data_dir={config.data_dir})",
            flush=True,
        )
    try:
        await asyncio.Event().wait()  # run until cancelled
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def serve_forever(config: ServeConfig) -> int:
    """Run the server until interrupted (the ``repro serve`` CLI body)."""
    try:
        asyncio.run(_serve_async(config))
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    return 0


class ServerHandle:
    """A server running on a background thread (tests, benchmarks).

    ``stop()`` drains it through :meth:`VerdictServer.stop` — in-flight
    jobs are cancelled-with-checkpoint and left un-journaled, exactly
    like a crash, which is what the restart tests rely on.
    """

    def __init__(self, config: ServeConfig) -> None:
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self.server: VerdictServer | None = None
        self._thread = threading.Thread(target=self._main, args=(config,), daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure

    def _main(self, config: ServeConfig) -> None:
        asyncio.set_event_loop(self._loop)
        server = VerdictServer(config)
        try:
            self._loop.run_until_complete(server.start())
        except BaseException as error:  # noqa: BLE001 - surfaced to starter
            self._failure = error
            self._ready.set()
            return
        self.server = server
        self._ready.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    @property
    def port(self) -> int:
        assert self.server is not None
        assert self.server.port is not None
        return self.server.port

    def stop(self) -> None:
        if self.server is not None and self._loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout=60)
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)


def run_in_thread(config: ServeConfig) -> ServerHandle:
    """Start a :class:`VerdictServer` on a daemon thread; returns its handle."""
    return ServerHandle(config)
