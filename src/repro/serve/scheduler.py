"""Admission control and fair scheduling for the verdict server.

Three cooperating mechanisms, applied in order at submission time and
dispatch time:

* **Load shedding** (:class:`LoadShedder`) — the upstream-resiliency
  move: once total queue depth crosses the watermark the server refuses
  new work with 429 + ``Retry-After`` instead of letting latency grow
  without bound and degrading the jobs already admitted.  The retry
  hint is estimated from the fleet's recent job durations (EWMA).

* **Per-tenant token buckets** (:class:`TokenBucket`) — each tenant may
  burst up to ``burst`` submissions and refills at ``rate`` per second;
  beyond that its submissions are rejected (429, per-tenant
  ``serve.rejected{tenant=...}`` counter) without affecting anyone
  else's admission.

* **Deficit round-robin** (:class:`FairScheduler`) — admitted jobs are
  queued per tenant and dispatched by DRR: each visit grants a tenant
  ``quantum`` credits; a job dispatches when the tenant's deficit
  covers its cost (:attr:`~repro.serve.wire.JobSpec.cost`, kilostates
  of budgeted work).  A tenant submitting huge explorations therefore
  cannot starve one submitting small ones — fairness is by *work*, not
  by job count.

The scheduler is asyncio-native and single-loop: mutation happens only
on the event loop; worker tasks block in :meth:`FairScheduler.next_job`.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

from ..obs.metrics import NULL_METRICS, MetricsRegistry


class TokenBucket:
    """A classic token bucket: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "tokens", "_clock", "_last")

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self, tokens: float = 1.0) -> bool:
        self._refill()
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 if already are)."""
        self._refill()
        missing = tokens - self.tokens
        return max(0.0, missing / self.rate)


@dataclass(frozen=True)
class ShedDecision:
    """Why a submission was refused, and when to come back."""

    reason: str
    retry_after: float


class LoadShedder:
    """Watermark-based admission control with a duration-aware retry hint."""

    def __init__(
        self,
        max_queue_depth: int = 64,
        max_tenant_depth: int = 16,
        *,
        default_job_seconds: float = 1.0,
    ) -> None:
        if max_queue_depth < 1 or max_tenant_depth < 1:
            raise ValueError("watermarks must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.max_tenant_depth = max_tenant_depth
        self._job_seconds = default_job_seconds

    def observe_job_seconds(self, seconds: float) -> None:
        """Fold one completed job's duration into the EWMA."""
        self._job_seconds = 0.8 * self._job_seconds + 0.2 * max(seconds, 0.001)

    @property
    def job_seconds(self) -> float:
        return self._job_seconds

    def check(self, queue_depth: int, tenant_depth: int, fleet: int) -> ShedDecision | None:
        """A :class:`ShedDecision` when the request must be shed, else None."""
        if queue_depth >= self.max_queue_depth:
            return ShedDecision("queue_full", self._eta(queue_depth, fleet))
        if tenant_depth >= self.max_tenant_depth:
            return ShedDecision("tenant_queue_full", self._eta(tenant_depth, fleet))
        return None

    def _eta(self, depth: int, fleet: int) -> float:
        drain = depth * self._job_seconds / max(fleet, 1)
        return min(300.0, max(1.0, round(drain, 1)))


class FairScheduler:
    """Deficit-round-robin dispatch over per-tenant FIFO queues.

    ``enqueue`` and ``next_job`` must run on the same event loop.  The
    DRR scan keeps its cursor on a tenant while that tenant's deficit
    still covers its queue head (so cheap jobs drain in bursts), adds
    ``quantum`` and moves on when it does not, and resets the deficit of
    empty queues (an idle tenant does not bank credit).
    """

    def __init__(
        self,
        quantum: int = 64,
        *,
        metrics: MetricsRegistry = NULL_METRICS,
    ) -> None:
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        self.quantum = quantum
        self.metrics = metrics
        self._queues: dict[str, deque] = {}
        self._deficit: dict[str, float] = {}
        self._ring: list[str] = []
        self._cursor = 0
        self._wakeups: list[asyncio.Future] = []

    # -- introspection --------------------------------------------------------

    @property
    def depth(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def tenant_depth(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return 0 if queue is None else len(queue)

    def queued_jobs(self) -> list:
        return [job for queue in self._queues.values() for job in queue]

    # -- producing ------------------------------------------------------------

    def enqueue(self, job) -> None:
        """Queue an admitted job for its tenant (loop thread only)."""
        tenant = job.spec.tenant
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._deficit[tenant] = 0.0
            self._ring.append(tenant)
        queue.append(job)
        self.metrics.gauge("serve.queue_depth").set(self.depth)
        for waiter in self._wakeups:
            if not waiter.done():
                waiter.set_result(None)
        self._wakeups.clear()

    def remove(self, job) -> bool:
        """Drop a still-queued job (cancellation); True when found."""
        queue = self._queues.get(job.spec.tenant)
        if queue is None:
            return False
        try:
            queue.remove(job)
        except ValueError:
            return False
        self.metrics.gauge("serve.queue_depth").set(self.depth)
        return True

    # -- consuming ------------------------------------------------------------

    def poll(self):
        """The next job by DRR, or ``None`` when every queue is empty."""
        if self.depth == 0:
            return None
        for _ in range(2 * len(self._ring)):
            tenant = self._ring[self._cursor % len(self._ring)]
            queue = self._queues[tenant]
            if not queue:
                self._deficit[tenant] = 0.0
                self._cursor += 1
                continue
            head = queue[0]
            if self._deficit[tenant] >= head.spec.cost:
                self._deficit[tenant] -= head.spec.cost
                queue.popleft()
                self.metrics.gauge("serve.queue_depth").set(self.depth)
                return head
            self._deficit[tenant] += self.quantum
            self._cursor += 1
        # Two full rotations always accumulate enough deficit for some
        # head unless costs dwarf the quantum; grant the cheapest head
        # directly rather than spinning.
        tenant = min(
            (t for t in self._ring if self._queues[t]),
            key=lambda t: self._queues[t][0].spec.cost,
        )
        self._deficit[tenant] = 0.0
        job = self._queues[tenant].popleft()
        self.metrics.gauge("serve.queue_depth").set(self.depth)
        return job

    async def next_job(self):
        """Await the next dispatchable job (worker tasks block here)."""
        while True:
            job = self.poll()
            if job is not None:
                return job
            waiter = asyncio.get_running_loop().create_future()
            self._wakeups.append(waiter)
            await waiter
